//! The cluster facade: configuration, DDL, data loading and SQL execution
//! (Figure 6's end-to-end flow).

use crate::governor::{Governor, GovernorConfig};
use crate::rebalance::{RebalanceController, RepairReport};
use crate::result::{DmlResult, QueryResult};
use ic_common::obs::{MetricsRegistry, SpanId, Trace, TraceSink};
use ic_common::{IcError, IcResult, Row, Schema};
use ic_exec::{execute_plan, ExecOptions};
use ic_net::{FaultInjector, FaultPlan, Network, NetworkConfig, SiteId, Topology};
use ic_opt::optimize_query;
use ic_plan::PlannerFlags;
use ic_sql::ast::Statement;
use ic_sql::{bind_statement, data_type_of, parse_sql};
use ic_storage::{Catalog, TableDistribution, TableId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The three system configurations evaluated in §6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemVariant {
    /// Baseline: stock Apache Ignite 2.16 + Calcite.
    IC,
    /// Query-planner changes + join optimizations (§4, §5.1, §5.2).
    ICPlus,
    /// IC+ with multithreaded execution plans (§5.3).
    ICPlusM,
}

impl SystemVariant {
    pub fn flags(&self) -> PlannerFlags {
        match self {
            SystemVariant::IC => PlannerFlags::ic(),
            SystemVariant::ICPlus => PlannerFlags::ic_plus(),
            SystemVariant::ICPlusM => PlannerFlags::ic_plus_m(),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            SystemVariant::IC => "IC",
            SystemVariant::ICPlus => "IC+",
            SystemVariant::ICPlusM => "IC+M",
        }
    }

    pub fn all() -> [SystemVariant; 3] {
        [SystemVariant::IC, SystemVariant::ICPlus, SystemVariant::ICPlusM]
    }
}

/// Cluster configuration (the paper's §6.1 methodology knobs).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of processing sites (the paper uses 4 and 8).
    pub sites: usize,
    pub variant: SystemVariant,
    /// Simulated network parameters.
    pub network: NetworkConfig,
    /// Per-query execution wall-clock limit (the paper's 4-hour cap,
    /// scaled down).
    pub exec_timeout: Option<Duration>,
    /// Override the Volcano exploration budget (None = variant default).
    pub planner_budget: Option<u64>,
    /// Per-query buffered-row memory budget (Ignite's resource limit).
    pub memory_limit_rows: u64,
    /// Replica copies per hash partition (Ignite's `backups=N`; the paper
    /// benchmarks 0). With `backups >= 1`, queries survive up to that many
    /// site deaths via failover to backup owners.
    pub backups: usize,
    /// Retry budget of the failover loop: how many times a query failing
    /// with a retryable [`IcError::SiteUnavailable`] is replanned against
    /// the surviving topology before [`IcError::RetriesExhausted`].
    pub max_retries: u32,
    /// Base backoff between failover retries (doubles per attempt).
    pub retry_backoff: Duration,
    /// Resource-governor sizing: admission slots, wait-queue bound, and
    /// the shared memory-pool budget all queries lease from.
    pub governor: GovernorConfig,
    /// Morsel-pool workers per site (intra-fragment parallelism degree);
    /// 0 disables pooled execution (pre-morsel sequential runtime).
    pub worker_threads: usize,
    /// Rows per morsel (work-stealing granule).
    pub morsel_rows: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            sites: 4,
            variant: SystemVariant::ICPlus,
            network: NetworkConfig::default(),
            exec_timeout: Some(Duration::from_secs(30)),
            planner_budget: None,
            memory_limit_rows: 60_000_000,
            backups: 0,
            max_retries: 2,
            retry_backoff: Duration::from_millis(10),
            governor: GovernorConfig::default(),
            worker_threads: std::thread::available_parallelism().map_or(1, |n| n.get()).min(4),
            morsel_rows: ic_exec::DEFAULT_MORSEL_ROWS,
        }
    }
}

impl ClusterConfig {
    /// Fast configuration for unit tests: no simulated network delay. One
    /// pool worker per site keeps the morsel-parallel code path active
    /// while lane order — and therefore unordered result order — stays
    /// deterministic for golden-output comparisons.
    pub fn test_default() -> ClusterConfig {
        ClusterConfig {
            sites: 2,
            variant: SystemVariant::ICPlus,
            network: NetworkConfig::instant(),
            exec_timeout: Some(Duration::from_secs(10)),
            planner_budget: None,
            memory_limit_rows: 60_000_000,
            backups: 0,
            max_retries: 2,
            retry_backoff: Duration::from_millis(1),
            governor: GovernorConfig::test_default(),
            worker_threads: 1,
            morsel_rows: ic_exec::DEFAULT_MORSEL_ROWS,
        }
    }
}

/// A simulated Ignite+Calcite cluster. All methods take `&self`; a cluster
/// can serve concurrent clients from multiple threads (the §6.3 AQL
/// terminals).
pub struct Cluster {
    config: ClusterConfig,
    flags: PlannerFlags,
    catalog: Arc<Catalog>,
    network: Arc<Network>,
    governor: Arc<Governor>,
    controller: Arc<RebalanceController>,
}

impl Cluster {
    pub fn new(config: ClusterConfig) -> Cluster {
        let mut flags = config.variant.flags();
        if let Some(b) = config.planner_budget {
            flags.planner_budget = b;
        }
        let catalog = Catalog::new(Topology::with_backups(config.sites, config.backups));
        let network = Network::new(config.network.clone());
        let governor = Governor::new(config.governor.clone());
        let controller = Arc::new(RebalanceController::new(catalog.clone(), network.clone()));
        Cluster { config, flags, catalog, network, governor, controller }
    }

    /// A cluster sharing this one's data but running as a different system
    /// variant — how the harness compares IC / IC+ / IC+M on identical
    /// data without reloading. The new cluster gets a *fresh* network:
    /// fault schedules and liveness state do not carry over. The resource
    /// governor *is* shared: all variants are sessions against the same
    /// simulated hardware, so they contend for the same slots and pool.
    pub fn with_variant(&self, variant: SystemVariant) -> Cluster {
        let mut config = self.config.clone();
        config.variant = variant;
        let mut flags = variant.flags();
        if let Some(b) = config.planner_budget {
            flags.planner_budget = b;
        }
        let network = Network::new(self.config.network.clone());
        let controller =
            Arc::new(RebalanceController::new(self.catalog.clone(), network.clone()));
        Cluster {
            config,
            flags,
            catalog: self.catalog.clone(),
            network,
            governor: self.governor.clone(),
            controller,
        }
    }

    /// A cluster sharing this one's catalog (and loaded data) but with a
    /// different morsel-pool sizing — the scaling sweep's axis: same data,
    /// same plans, only the intra-fragment parallelism degree changes.
    pub fn with_worker_threads(&self, worker_threads: usize, morsel_rows: usize) -> Cluster {
        let mut config = self.config.clone();
        config.worker_threads = worker_threads;
        config.morsel_rows = morsel_rows;
        let network = Network::new(self.config.network.clone());
        let controller =
            Arc::new(RebalanceController::new(self.catalog.clone(), network.clone()));
        Cluster {
            config,
            flags: self.flags.clone(),
            catalog: self.catalog.clone(),
            network,
            governor: self.governor.clone(),
            controller,
        }
    }

    /// The cluster's resource governor (admission control + memory pool).
    pub fn governor(&self) -> &Arc<Governor> {
        &self.governor
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    pub fn network(&self) -> &Arc<Network> {
        &self.network
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    pub fn variant(&self) -> SystemVariant {
        self.config.variant
    }

    /// Install a seeded, deterministic fault schedule on this cluster's
    /// network (replacing any previous one). Returns the injector so
    /// callers can read its logical clock and fault log.
    pub fn install_faults(&self, plan: FaultPlan) -> Arc<FaultInjector> {
        self.network.install_faults(plan)
    }

    /// Remove any fault schedule and return every site to `Alive`,
    /// resyncing replicas that went stale while their site was faulted so
    /// the now-live copies cannot serve stale reads.
    pub fn clear_faults(&self) {
        self.network.clear_faults();
        self.controller.repair();
    }

    /// Mark a site permanently dead (operator-style, without a fault
    /// plan). Subsequent queries replan around it; with `backups = 0` its
    /// partitions are lost and partitioned queries fail.
    pub fn kill_site(&self, site: usize) {
        self.network.liveness().mark_dead(SiteId(site));
    }

    /// Bring a killed site back (the inverse of [`Cluster::kill_site`]).
    /// The revived site's replicas missed every write committed while it
    /// was down; a synchronous repair pass resyncs (or demotes) them
    /// before any read can route to a stale copy.
    pub fn revive_site(&self, site: usize) {
        self.network.liveness().mark_alive(SiteId(site));
        self.controller.repair();
    }

    /// Execute a DDL statement (CREATE TABLE / CREATE INDEX).
    pub fn run(&self, sql: &str) -> IcResult<()> {
        match parse_sql(sql)? {
            Statement::CreateTable(ct) => {
                let fields: Vec<ic_common::Field> = ct
                    .columns
                    .iter()
                    .map(|(n, t)| Ok(ic_common::Field::new(n.clone(), data_type_of(t)?)))
                    .collect::<IcResult<_>>()?;
                let schema = Schema::new(fields);
                let col_pos = |name: &str| {
                    schema.index_of(name).ok_or_else(|| {
                        IcError::Catalog(format!("unknown column '{name}' in '{}'", ct.name))
                    })
                };
                let pk: Vec<usize> =
                    ct.primary_key.iter().map(|c| col_pos(c)).collect::<IcResult<_>>()?;
                let distribution = if ct.replicated {
                    TableDistribution::Replicated
                } else {
                    let key_cols = match &ct.partition_by {
                        Some(cols) => cols.iter().map(|c| col_pos(c)).collect::<IcResult<_>>()?,
                        // Ignite's default affinity: partition by primary key.
                        None => pk.clone(),
                    };
                    if key_cols.is_empty() {
                        return Err(IcError::Catalog(format!(
                            "table '{}' needs a primary key or PARTITION BY",
                            ct.name
                        )));
                    }
                    TableDistribution::HashPartitioned { key_cols }
                };
                self.catalog.create_table(&ct.name, schema, pk, distribution)?;
                Ok(())
            }
            Statement::CreateIndex(ci) => {
                let table = self
                    .catalog
                    .table_by_name(&ci.table)
                    .ok_or_else(|| IcError::Catalog(format!("unknown table '{}'", ci.table)))?;
                let def = self.catalog.table_def(table).ok_or_else(|| {
                    IcError::Internal(format!("table '{}' resolved but has no definition", ci.table))
                })?;
                let cols: Vec<usize> = ci
                    .columns
                    .iter()
                    .map(|c| {
                        def.schema.index_of(c).ok_or_else(|| {
                            IcError::Catalog(format!("unknown column '{c}' in '{}'", ci.table))
                        })
                    })
                    .collect::<IcResult<_>>()?;
                self.catalog.create_index(&ci.name, table, cols)?;
                Ok(())
            }
            stmt @ (Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_)) => {
                self.dml_stmt(&stmt)?;
                Ok(())
            }
            Statement::Query(_) | Statement::Explain(_) | Statement::ExplainAnalyze(_) => Err(
                IcError::Exec("use query() for SELECT statements".into()),
            ),
        }
    }

    /// Execute a DML statement (INSERT/UPDATE/DELETE) end-to-end: bind,
    /// route by the table's partitioning trait, and commit with synchronous
    /// primary→backup replication. An acknowledged statement is applied on
    /// the primary *and* every live backup of each touched partition, so no
    /// single site death can lose it.
    ///
    /// Failover-retryable failures (dead primary, ownership moved mid-write,
    /// version conflict) trigger a [`RebalanceController::repair`] pass —
    /// promoting live backups over dead primaries — and the statement is
    /// re-routed against the fresh replica map, up to `max_retries` times
    /// with the same seeded backoff the query path uses.
    ///
    /// Atomicity is per partition batch: a multi-partition statement that
    /// fails mid-way has committed some partitions and not others (each
    /// committed batch is fully replicated and durable); the retry
    /// re-applies the op, which is idempotent for upserts and predicate
    /// ops, and `rows_affected` reports the final attempt's count.
    pub fn dml(&self, sql: &str) -> IcResult<DmlResult> {
        let stmt = parse_sql(sql)?;
        match stmt {
            Statement::Insert(_) | Statement::Update(_) | Statement::Delete(_) => {
                self.dml_stmt(&stmt)
            }
            _ => Err(IcError::Exec("use query()/run() for non-DML statements".into())),
        }
    }

    fn dml_stmt(&self, stmt: &Statement) -> IcResult<DmlResult> {
        let bound = ic_sql::bind_dml(stmt, &self.catalog)?;
        let mut chain: Vec<String> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            // Replan every attempt: partition pinning and routing must see
            // the replica map as repaired after the previous failure.
            let result = ic_opt::plan_dml(&self.catalog, bound.clone()).and_then(|plan| {
                ic_storage::execute_dml(
                    &self.catalog,
                    &self.network,
                    plan.table,
                    &plan.op,
                    plan.pinned_partition(),
                )
            });
            match result {
                Ok(out) => {
                    if attempt > 0 {
                        MetricsRegistry::global().counter("core.query.retries").add(attempt.into());
                    }
                    if out.degraded {
                        // The ack skipped a dead backup: re-replicate now so
                        // one more failure cannot make the surviving copies
                        // of this write the last ones.
                        self.controller.repair();
                    }
                    return Ok(DmlResult {
                        rows_affected: out.rows_affected,
                        batches: out.batches,
                        retries: attempt,
                    });
                }
                Err(e) if e.is_failover_retryable() => {
                    chain.push(e.to_string());
                    if attempt >= self.config.max_retries {
                        return Err(IcError::RetriesExhausted { attempts: attempt + 1, chain });
                    }
                    attempt += 1;
                    let backoff = self.retry_backoff(0, attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    self.network.refresh_liveness();
                    // Promote live backups over whatever just died so the
                    // retry has a live primary to write to.
                    self.controller.repair();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The membership/rebalance controller (promotion, re-replication,
    /// chunked migration).
    pub fn controller(&self) -> &Arc<RebalanceController> {
        &self.controller
    }

    /// Run one repair pass: promote live backups over dead primaries, catch
    /// up stale revived replicas, re-replicate under-replicated partitions.
    pub fn repair(&self) -> RepairReport {
        self.controller.repair()
    }

    /// Admit a new site into the cluster and rebalance partition replicas
    /// onto it (chunked migration, concurrent with queries and writes).
    /// Returns the number of replicas migrated.
    pub fn join_site(&self, site: usize) -> usize {
        self.controller.join_site(SiteId(site))
    }

    /// Gracefully retire a site: its primaries are promoted away, its
    /// copies re-replicated, then it is removed from membership.
    pub fn leave_site(&self, site: usize) -> usize {
        self.controller.leave_site(SiteId(site))
    }

    /// Bulk-insert rows (the benchmark loaders use this instead of
    /// generating INSERT statements).
    pub fn insert(&self, table: &str, rows: Vec<Row>) -> IcResult<usize> {
        let id = self
            .catalog
            .table_by_name(table)
            .ok_or_else(|| IcError::Catalog(format!("unknown table '{table}'")))?;
        self.catalog.insert(id, rows)
    }

    /// Recompute statistics and rebuild indexes for every table (run after
    /// bulk loading, like Ignite with statistics enabled).
    pub fn analyze_all(&self) -> IcResult<()> {
        for name in self.catalog.table_names() {
            let id = self.catalog.table_by_name(&name).ok_or_else(|| {
                IcError::Internal(format!("table '{name}' listed but not resolvable"))
            })?;
            self.catalog.analyze(id)?;
        }
        Ok(())
    }

    fn table_id(&self, name: &str) -> IcResult<TableId> {
        self.catalog
            .table_by_name(name)
            .ok_or_else(|| IcError::Catalog(format!("unknown table '{name}'")))
    }

    /// Row count of a table.
    pub fn table_rows(&self, name: &str) -> IcResult<usize> {
        let id = self.table_id(name)?;
        let data = self
            .catalog
            .table_data(id)
            .ok_or_else(|| IcError::Catalog(format!("no data handle for table '{name}'")))?;
        Ok(data.total_rows())
    }

    /// Execute a SELECT query end-to-end. `EXPLAIN SELECT …` returns the
    /// optimized physical plan as a single-column result.
    ///
    /// The query first passes admission control (see [`Cluster::query_as`]
    /// for the per-client form); it may be shed with the client-retryable
    /// [`IcError::Overloaded`], and its memory lease may be revoked under
    /// pool pressure ([`IcError::ResourcesRevoked`]).
    ///
    /// Failover-retryable failures ([`IcError::SiteUnavailable`]: a site
    /// crashed or a link dropped an exchange message mid-run) are retried
    /// up to `max_retries` times with exponential backoff; each retry
    /// replans the query against the surviving topology, substituting
    /// backup partition owners for dead sites. When every attempt fails
    /// retryably, the whole failure chain surfaces as
    /// [`IcError::RetriesExhausted`].
    pub fn query(&self, sql: &str) -> IcResult<QueryResult> {
        self.query_as(0, sql)
    }

    /// [`Cluster::query`] on behalf of a specific client (the governor's
    /// fair-share unit — one id per AQL terminal/session).
    pub fn query_as(&self, client: u64, sql: &str) -> IcResult<QueryResult> {
        self.query_inner(client, sql, None)
    }

    /// [`Cluster::query_as`] with a per-query [`Trace`]: every phase
    /// (admission, plan, per-attempt execution down to individual
    /// operators and transfers) is recorded as spans, and governor
    /// shed/revoke decisions and network faults as instant events.
    ///
    /// The trace is returned even when the query fails, so failed and
    /// failed-over attempts stay inspectable (render it with
    /// [`TraceSink`]).
    pub fn query_traced(&self, client: u64, sql: &str) -> (IcResult<QueryResult>, Arc<Trace>) {
        let trace = Trace::new();
        let result = self.query_inner(client, sql, Some(&trace));
        (result, trace)
    }

    fn query_inner(
        &self,
        client: u64,
        sql: &str,
        trace: Option<&Arc<Trace>>,
    ) -> IcResult<QueryResult> {
        let query_span = trace.map(|t| t.span("query", "query", None, Trace::COORD_LANE));
        let qid = query_span.as_ref().map(|g| g.id());
        // Admission deadline = this query's wall-clock budget; a query
        // whose budget would elapse in the queue is shed, not started.
        let deadline = self.config.exec_timeout.map(|t| Instant::now() + t);
        // The admission slot is held across the *whole* failover loop:
        // replans are the same query, not new work, so they never
        // re-enter the queue — and each attempt opens a fresh pool lease,
        // so buffer budget is never double-counted across replans.
        let adm_start = trace.map(|t| t.now_ns());
        let admission = match self.governor.admit(client, deadline) {
            Ok(a) => {
                if let (Some(t), Some(t0)) = (trace, adm_start) {
                    t.record_span(
                        "admission",
                        "query",
                        qid,
                        Trace::COORD_LANE,
                        t0,
                        t.now_ns(),
                        vec![("queue_wait_us", a.queue_wait().as_micros() as u64)],
                    );
                }
                a
            }
            Err(e) => {
                if let Some(t) = trace {
                    t.event("governor.shed", "query", Trace::COORD_LANE, e.to_string());
                }
                return Err(e);
            }
        };
        let mut chain: Vec<String> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            let attempt_span = trace.map(|t| {
                t.span(format!("attempt {attempt}"), "attempt", qid, Trace::COORD_LANE)
            });
            let tctx = match (trace, &attempt_span) {
                (Some(t), Some(g)) => Some((t, g.id())),
                _ => None,
            };
            match self.query_attempt(sql, tctx) {
                Ok(mut result) => {
                    if attempt > 0 {
                        MetricsRegistry::global().counter("core.query.retries").add(attempt.into());
                    }
                    result.retries = attempt;
                    result.stats.retries = attempt;
                    result.stats.queue_wait = admission.queue_wait();
                    return Ok(result);
                }
                // Only site faults re-enter the loop. Shed/revoked queries
                // must exit immediately and release their slot — retrying
                // them here would defeat the governor's back-pressure.
                Err(e) if e.is_failover_retryable() => {
                    if let Some(t) = trace {
                        t.event("attempt.failed", "attempt", Trace::COORD_LANE, e.to_string());
                    }
                    drop(attempt_span);
                    chain.push(e.to_string());
                    if attempt >= self.config.max_retries {
                        return Err(IcError::RetriesExhausted { attempts: attempt + 1, chain });
                    }
                    attempt += 1;
                    let backoff = self.retry_backoff(client, attempt);
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    // Let transiently-crashed sites whose windows have
                    // closed rejoin before replanning — and resync their
                    // stale replicas before the replanned read can route
                    // to one.
                    self.network.refresh_liveness();
                    self.controller.repair();
                }
                Err(e) => {
                    if let Some(t) = trace {
                        if matches!(e, IcError::ResourcesRevoked { .. }) {
                            t.event("governor.revoked", "query", Trace::COORD_LANE, e.to_string());
                        }
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Backoff before failover attempt `attempt` (1-based): exponential
    /// doubling capped at 2^8, scaled by a jitter factor in [0.5, 1.5).
    /// Pure doubling synchronizes retry storms — every client that lost
    /// the same site wakes at the same instant and hammers the failover
    /// target together. The jitter is drawn from the installed fault
    /// plan's seed (fixed constant when no plan is installed) mixed with
    /// the client id and attempt number, so chaos/fuzz runs replay the
    /// exact same sleep schedule from the same seed.
    fn retry_backoff(&self, client: u64, attempt: u32) -> Duration {
        let base = self.config.retry_backoff * 2u32.saturating_pow((attempt - 1).min(8));
        if base.is_zero() {
            return base;
        }
        const NO_PLAN_SEED: u64 = 0x9e37_79b9_7f4a_7c15;
        let seed = self
            .network
            .fault_injector()
            .map(|inj| inj.plan().seed)
            .unwrap_or(NO_PLAN_SEED);
        let mut rng =
            ic_net::SplitMix64::new(seed ^ client.rotate_left(17) ^ (u64::from(attempt) << 32));
        base.mul_f64(0.5 + rng.next_f64())
    }

    /// One planning + execution attempt (no failover). `tctx` carries the
    /// query's trace plus the enclosing attempt span, when tracing.
    fn query_attempt(
        &self,
        sql: &str,
        tctx: Option<(&Arc<Trace>, SpanId)>,
    ) -> IcResult<QueryResult> {
        let plan_start = Instant::now();
        let (ast, analyze) = match parse_sql(sql)? {
            Statement::Query(q) => (q, false),
            // EXPLAIN ANALYZE executes the query (traced) and renders the
            // annotated plan instead of the result rows.
            Statement::ExplainAnalyze(q) => (q, true),
            Statement::Explain(q) => {
                let bound = bind_statement(&q, &self.catalog)?;
                let optimized = optimize_query(bound.plan, &self.catalog, &self.flags)?;
                let text = ic_plan::explain::explain_physical(&optimized.plan);
                return Ok(QueryResult {
                    columns: vec!["plan".into()],
                    rows: text
                        .lines()
                        .map(|l| Row(vec![ic_common::Datum::str(l)]))
                        .collect(),
                    stats: Default::default(),
                    plan_time: plan_start.elapsed(),
                    rule_firings: optimized.rule_firings,
                    reorder_disabled: optimized.reorder_disabled,
                    retries: 0,
                });
            }
            _ => return Err(IcError::Exec("use run() for DDL statements".into())),
        };
        let plan_span =
            tctx.map(|(t, parent)| t.span("plan", "plan", Some(parent), Trace::COORD_LANE));
        let bound = bind_statement(&ast, &self.catalog)?;
        let optimized = optimize_query(bound.plan, &self.catalog, &self.flags)?;
        drop(plan_span);
        let plan_time = plan_start.elapsed();
        // EXPLAIN ANALYZE needs a trace even when the caller didn't ask for
        // one; it then reads the actuals back out of the attempt table.
        let exec_trace: Option<Arc<Trace>> = match (&tctx, analyze) {
            (Some((t, _)), _) => Some(Arc::clone(t)),
            (None, true) => Some(Trace::new()),
            (None, false) => None,
        };
        let opts = ExecOptions {
            variant_fragments: self.flags.variant_fragments,
            timeout: self.config.exec_timeout,
            memory_limit_rows: self.config.memory_limit_rows,
            pool: Some(self.governor.pool().clone()),
            trace: exec_trace.clone(),
            trace_parent: tctx.map(|(_, s)| s),
            worker_threads: self.config.worker_threads,
            morsel_rows: self.config.morsel_rows,
            ..ExecOptions::default()
        };
        let (rows, stats) = execute_plan(&optimized.plan, &self.catalog, &self.network, &opts)?;
        if analyze {
            let trace = exec_trace.ok_or_else(|| {
                IcError::Internal("EXPLAIN ANALYZE executed without a trace".into())
            })?;
            let text = TraceSink::new(trace).explain_analyze().ok_or_else(|| {
                IcError::Internal("EXPLAIN ANALYZE executed without registering an attempt".into())
            })?;
            return Ok(QueryResult {
                columns: vec!["plan".into()],
                rows: text
                    .lines()
                    .map(|l| Row(vec![ic_common::Datum::str(l)]))
                    .collect(),
                stats,
                plan_time,
                rule_firings: optimized.rule_firings,
                reorder_disabled: optimized.reorder_disabled,
                retries: 0,
            });
        }
        Ok(QueryResult {
            columns: bound.output_names,
            rows,
            stats,
            plan_time,
            rule_firings: optimized.rule_firings,
            reorder_disabled: optimized.reorder_disabled,
            retries: 0,
        })
    }

    /// EXPLAIN: the optimized physical plan as text.
    pub fn explain(&self, sql: &str) -> IcResult<String> {
        let ast = match parse_sql(sql)? {
            Statement::Query(q) | Statement::Explain(q) | Statement::ExplainAnalyze(q) => q,
            _ => return Err(IcError::Exec("EXPLAIN requires a SELECT".into())),
        };
        let bound = bind_statement(&ast, &self.catalog)?;
        let optimized = optimize_query(bound.plan, &self.catalog, &self.flags)?;
        Ok(ic_plan::explain::explain_physical(&optimized.plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_common::Datum;

    fn sample_cluster(variant: SystemVariant) -> Cluster {
        let cluster = Cluster::new(ClusterConfig {
            variant,
            ..ClusterConfig::test_default()
        });
        cluster
            .run("CREATE TABLE employee (id BIGINT, name VARCHAR, dept BIGINT, PRIMARY KEY (id))")
            .unwrap();
        cluster
            .run("CREATE TABLE sales (sale_id BIGINT, emp_id BIGINT, amount DOUBLE, PRIMARY KEY (sale_id))")
            .unwrap();
        let employees: Vec<Row> = (0..100)
            .map(|i| Row(vec![Datum::Int(i), Datum::str(format!("emp{i}")), Datum::Int(i % 5)]))
            .collect();
        let sales: Vec<Row> = (0..1000)
            .map(|i| Row(vec![Datum::Int(i), Datum::Int(i % 100), Datum::Double((i % 97) as f64)]))
            .collect();
        cluster.insert("employee", employees).unwrap();
        cluster.insert("sales", sales).unwrap();
        cluster.analyze_all().unwrap();
        cluster
    }

    /// The paper's running example (Figure 1, Query A).
    #[test]
    fn figure1_query_a_all_variants() {
        for variant in SystemVariant::all() {
            let cluster = sample_cluster(variant);
            let result = cluster
                .query("SELECT * FROM employee INNER JOIN sales ON employee.id = sales.emp_id WHERE employee.id = 10")
                .unwrap();
            assert_eq!(result.columns.len(), 6, "{variant:?}");
            assert_eq!(result.rows.len(), 10, "{variant:?}");
            for row in &result.rows {
                assert_eq!(row.0[0], Datum::Int(10));
                assert_eq!(row.0[4], Datum::Int(10));
            }
        }
    }

    #[test]
    fn variants_agree_on_aggregates() {
        let mut baseline: Option<Vec<Row>> = None;
        for variant in SystemVariant::all() {
            let cluster = sample_cluster(variant);
            let result = cluster
                .query(
                    "SELECT dept, count(*) AS c, sum(amount) AS total \
                     FROM employee, sales WHERE id = emp_id \
                     GROUP BY dept ORDER BY dept",
                )
                .unwrap();
            assert_eq!(result.rows.len(), 5);
            match &baseline {
                None => baseline = Some(result.rows),
                Some(b) => assert_eq!(*b, result.rows, "{variant:?} diverged"),
            }
        }
    }

    #[test]
    fn order_by_and_limit() {
        let cluster = sample_cluster(SystemVariant::ICPlusM);
        let result = cluster
            .query("SELECT id, name FROM employee ORDER BY id DESC LIMIT 3")
            .unwrap();
        let ids: Vec<i64> = result.rows.iter().map(|r| r.0[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![99, 98, 97]);
    }

    #[test]
    fn ddl_errors() {
        let cluster = sample_cluster(SystemVariant::ICPlus);
        assert!(cluster.run("CREATE TABLE employee (id BIGINT, PRIMARY KEY (id))").is_err());
        assert!(cluster.run("CREATE INDEX ix ON missing (x)").is_err());
        assert!(cluster.run("SELECT 1 FROM employee").is_err());
        assert!(cluster.query("CREATE TABLE t (id BIGINT, PRIMARY KEY (id))").is_err());
    }

    #[test]
    fn explain_shows_physical_plan() {
        let cluster = sample_cluster(SystemVariant::ICPlus);
        let plan = cluster
            .explain("SELECT count(*) FROM sales WHERE amount > 50")
            .unwrap();
        assert!(plan.contains("TableScan(sales)"), "{plan}");
        assert!(plan.contains("Exchange"), "{plan}");
    }

    #[test]
    fn exec_timeout_enforced() {
        let cluster = Cluster::new(ClusterConfig {
            exec_timeout: Some(Duration::from_millis(1)),
            ..ClusterConfig::test_default()
        });
        cluster
            .run("CREATE TABLE t (a BIGINT, b BIGINT, PRIMARY KEY (a))")
            .unwrap();
        let rows: Vec<Row> = (0..30_000)
            .map(|i| Row(vec![Datum::Int(i), Datum::Int(i % 100)]))
            .collect();
        cluster.insert("t", rows).unwrap();
        cluster.analyze_all().unwrap();
        // A cross-ish join big enough to exceed 1 ms.
        let err = cluster
            .query("SELECT count(*) FROM t x, t y WHERE x.b = y.b")
            .unwrap_err();
        assert!(matches!(err, IcError::ExecTimeout { .. }), "{err}");
    }

    #[test]
    fn concurrent_clients() {
        let cluster = Arc::new(sample_cluster(SystemVariant::ICPlus));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = cluster.clone();
                std::thread::spawn(move || {
                    c.query("SELECT count(*) FROM sales").unwrap().rows[0].0[0]
                        .as_int()
                        .unwrap()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 1000);
        }
    }

    #[test]
    fn explain_statement_via_query() {
        let cluster = sample_cluster(SystemVariant::ICPlus);
        let r = cluster.query("EXPLAIN SELECT count(*) FROM sales WHERE amount > 10").unwrap();
        assert_eq!(r.columns, vec!["plan".to_string()]);
        let text: Vec<String> =
            r.rows.iter().map(|row| row.0[0].as_str().unwrap().to_string()).collect();
        assert!(text.iter().any(|l| l.contains("TableScan(sales)")), "{text:?}");
        assert!(text.iter().any(|l| l.contains("HashAggregate")), "{text:?}");
    }

    #[test]
    fn explain_analyze_annotates_actuals() {
        let cluster = sample_cluster(SystemVariant::ICPlus);
        let r = cluster
            .query(
                "EXPLAIN ANALYZE SELECT * FROM employee INNER JOIN sales ON employee.id = sales.emp_id",
            )
            .unwrap();
        assert_eq!(r.columns, vec!["plan".to_string()]);
        let text: Vec<String> =
            r.rows.iter().map(|row| row.0[0].as_str().unwrap().to_string()).collect();
        // Every line carries est-vs-actual rows, batches and self-time.
        assert!(text.iter().all(|l| l.contains("rows est=") && l.contains(" act=")), "{text:?}");
        assert!(text.iter().all(|l| l.contains("batches=") && l.contains("self=")), "{text:?}");
        // The root's actual row count is the join cardinality (1000 sales
        // rows, each matching one employee).
        assert!(text[0].contains("act=1000"), "{text:?}");
        // A distributed join ships data: some Exchange line reports bytes.
        assert!(
            text.iter().any(|l| l.contains("Exchange") && l.contains("shipped=")),
            "{text:?}"
        );
    }

    #[test]
    fn query_traced_produces_wellformed_trace() {
        let cluster = sample_cluster(SystemVariant::ICPlus);
        let (result, trace) = cluster.query_traced(
            0,
            "SELECT dept, count(*) FROM employee INNER JOIN sales ON employee.id = sales.emp_id GROUP BY dept",
        );
        let result = result.unwrap();
        trace.validate().expect("well-formed span tree");
        let spans = trace.spans();
        for cat in ["query", "plan", "exec", "fragment", "operator"] {
            assert!(spans.iter().any(|s| s.cat == cat), "missing {cat} span");
        }
        // The root operator's traced rows equal the rows the client got.
        let attempts = trace.attempts();
        let attempt = attempts.last().expect("one attempt");
        assert_eq!(attempt.rows(0), result.rows.len() as u64);
        // Chrome export stays structurally sound on a real query.
        let json = ic_common::obs::chrome_trace_json(&trace);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn memory_limit_surfaces_as_error() {
        let mut config = ClusterConfig::test_default();
        config.memory_limit_rows = 500;
        config.exec_timeout = Some(Duration::from_secs(30));
        let cluster = Cluster::new(config);
        cluster.run("CREATE TABLE t (a BIGINT, b BIGINT, PRIMARY KEY (a))").unwrap();
        let rows: Vec<Row> =
            (0..5000).map(|i| Row(vec![Datum::Int(i), Datum::Int(i % 3)])).collect();
        cluster.insert("t", rows).unwrap();
        cluster.analyze_all().unwrap();
        let err = cluster.query("SELECT count(*) FROM t x, t y WHERE x.b = y.b").unwrap_err();
        assert!(
            matches!(err, IcError::MemoryLimit { .. } | IcError::ExecTimeout { .. }),
            "{err}"
        );
    }

    #[test]
    fn with_variant_shares_data() {
        let base = sample_cluster(SystemVariant::IC);
        let plus = base.with_variant(SystemVariant::ICPlus);
        assert_eq!(plus.table_rows("sales").unwrap(), 1000);
        assert_eq!(plus.variant(), SystemVariant::ICPlus);
    }

    fn failover_cluster(sites: usize, backups: usize) -> Cluster {
        let cluster = Cluster::new(ClusterConfig {
            sites,
            backups,
            ..ClusterConfig::test_default()
        });
        cluster
            .run("CREATE TABLE t (a BIGINT, b BIGINT, PRIMARY KEY (a))")
            .unwrap();
        let rows: Vec<Row> =
            (0..2000).map(|i| Row(vec![Datum::Int(i), Datum::Int(i % 7)])).collect();
        cluster.insert("t", rows).unwrap();
        cluster.analyze_all().unwrap();
        cluster
    }

    #[test]
    fn dead_site_failover_with_backups() {
        let cluster = failover_cluster(4, 1);
        let baseline = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(baseline.rows[0].0[0].as_int(), Some(2000));
        cluster.kill_site(2);
        // The dead site's partition is served by its backup owner; the
        // first attempt already plans around it, so no retries are needed.
        let r = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.rows[0].0[0].as_int(), Some(2000));
        cluster.revive_site(2);
        let r = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.rows[0].0[0].as_int(), Some(2000));
    }

    #[test]
    fn dead_site_without_backups_exhausts_retries() {
        let cluster = failover_cluster(4, 0);
        cluster.kill_site(2);
        let err = cluster.query("SELECT count(*) FROM t").unwrap_err();
        match err {
            IcError::RetriesExhausted { attempts, chain } => {
                assert_eq!(attempts, cluster.config().max_retries + 1);
                assert_eq!(chain.len() as u32, attempts);
                assert!(chain[0].contains("partition"), "{chain:?}");
            }
            other => panic!("expected RetriesExhausted, got {other}"),
        }
    }

    #[test]
    fn dml_roundtrip_insert_update_delete() {
        let cluster = sample_cluster(SystemVariant::ICPlus);
        let r = cluster
            .dml("INSERT INTO employee (id, name, dept) VALUES (200, 'new hire', 9)")
            .unwrap();
        assert_eq!(r.rows_affected, 1);
        let q = cluster.query("SELECT name, dept FROM employee WHERE id = 200").unwrap();
        assert_eq!(q.rows.len(), 1);
        assert_eq!(q.rows[0].0[1], Datum::Int(9));
        let r = cluster.dml("UPDATE employee SET dept = dept + 1 WHERE id = 200").unwrap();
        assert_eq!(r.rows_affected, 1);
        let q = cluster.query("SELECT dept FROM employee WHERE id = 200").unwrap();
        assert_eq!(q.rows[0].0[0], Datum::Int(10));
        let r = cluster.dml("DELETE FROM employee WHERE id = 200").unwrap();
        assert_eq!(r.rows_affected, 1);
        let q = cluster.query("SELECT count(*) FROM employee").unwrap();
        assert_eq!(q.rows[0].0[0].as_int(), Some(100));
        // run() routes DML too (no result surfaced).
        cluster.run("INSERT INTO employee (id, name, dept) VALUES (201, 'x', 1)").unwrap();
        assert_eq!(cluster.table_rows("employee").unwrap(), 101);
        // INSERT is a PK upsert: same key replaces, count is unchanged.
        cluster.dml("INSERT INTO employee (id, name, dept) VALUES (201, 'y', 2)").unwrap();
        assert_eq!(cluster.table_rows("employee").unwrap(), 101);
    }

    #[test]
    fn dml_survives_dead_primary_via_promotion() {
        let cluster = failover_cluster(4, 1);
        cluster.kill_site(2);
        // An unpinned DELETE touches every partition; partition 2's primary
        // is dead, so the first attempt fails retryably, the repair pass
        // promotes its backup, and the retry commits.
        // Partition batches are atomic but the statement is not: partitions
        // committed by the first attempt report zero matches on the retry,
        // so rows_affected counts the final attempt only — the end state is
        // what the assertions below pin.
        let r = cluster.dml("DELETE FROM t WHERE a < 100").unwrap();
        assert!(r.rows_affected <= 100);
        assert!(r.retries >= 1, "expected a failover retry, got {}", r.retries);
        let q = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(q.rows[0].0[0].as_int(), Some(1900));
        // The repair promoted a live owner: writes now ack on first try.
        let r = cluster.dml("INSERT INTO t (a, b) VALUES (5000, 1)").unwrap();
        assert_eq!((r.rows_affected, r.retries), (1, 0));
    }

    #[test]
    fn dml_without_backups_exhausts_retries_on_dead_site() {
        let cluster = failover_cluster(4, 0);
        cluster.kill_site(1);
        let err = cluster.dml("DELETE FROM t").unwrap_err();
        assert!(matches!(err, IcError::RetriesExhausted { .. }), "{err}");
    }

    #[test]
    fn join_site_migrates_and_serves() {
        let cluster = failover_cluster(4, 1);
        let migrated = cluster.join_site(4);
        assert!(migrated > 0, "the joiner should receive at least one replica");
        let map = cluster.catalog().membership().snapshot();
        assert_eq!(map.members().len(), 5);
        assert!(!map.partitions_hosted_by(SiteId(4)).is_empty());
        let q = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(q.rows[0].0[0].as_int(), Some(2000));
        let r = cluster.dml("INSERT INTO t (a, b) VALUES (9001, 3)").unwrap();
        assert_eq!(r.rows_affected, 1);
    }

    #[test]
    fn leave_site_keeps_data_and_replication() {
        let cluster = failover_cluster(4, 1);
        let moved = cluster.leave_site(0);
        let map = cluster.catalog().membership().snapshot();
        assert_eq!(map.members().len(), 3);
        // Every partition keeps the target replication factor without the
        // departed site.
        for p in 0..map.num_partitions() {
            assert!(!map.owners_of(p).contains(&SiteId(0)), "partition {p}");
            assert!(map.owners_of(p).len() >= 2, "partition {p} under-replicated");
        }
        assert!(moved > 0);
        let q = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(q.rows[0].0[0].as_int(), Some(2000));
    }

    #[test]
    fn mid_run_crash_recovers_via_retry() {
        let cluster = failover_cluster(4, 1);
        // Crash from tick 1: site3 is alive when the query is planned, but
        // it sends at least two exchange messages (batch + EOF) of which
        // at most one can occupy tick 0 — so the first attempt is
        // guaranteed to hit the crash mid-run and the retry must replan.
        cluster.install_faults(FaultPlan::new(77).crash(SiteId(3), 1));
        let r = cluster.query("SELECT count(*) FROM t").unwrap();
        assert_eq!(r.rows[0].0[0].as_int(), Some(2000));
        assert!(r.retries >= 1, "expected at least one failover retry");
    }
}
