//! Elastic topology control: promotion, re-replication, and chunked
//! partition migration.
//!
//! The controller is the only component that mutates the membership replica
//! map after boot. Its contract with the write path (see
//! `ic_storage::write`) is the *ownership stability invariant*: the owner
//! list of partition `p` never changes while `p`'s write guard is held. The
//! controller therefore takes the write guard of partition `p` on **every**
//! hash-partitioned table (in table-id order, so multi-guard acquisition is
//! cycle-free) before promoting, flipping owner lists, or installing the
//! final catch-up copy of a migration. Bulk data movement happens *outside*
//! the guards — a migration ships the frozen snapshot in `chunk_rows`-sized
//! chunks through the fault-injectable replication path while writes keep
//! flowing, then catches up on whatever committed in the meantime during the
//! brief guarded flip.
//!
//! Promotion picks the live owner with the **highest replica version**: a
//! backup that confirmed every acknowledged write is at the primary's
//! version, while a crashed-and-revived replica lags — promoting by version
//! is what makes "kill a site mid-stream" lose zero acknowledged writes.

use ic_common::obs::{Counter, MetricsRegistry};
use ic_net::wire::WireSize;
use ic_net::{NetError, Network, SiteId};
use ic_storage::{Catalog, TableData, TableDistribution};
use std::sync::{Arc, OnceLock};

/// What one [`RebalanceController::repair`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Partitions whose primary was dead and a live backup took over.
    pub promotions: usize,
    /// New backup copies created to return partitions to the target
    /// replication factor.
    pub re_replicated: usize,
    /// Stale live replicas (revived sites) caught up to the primary.
    pub resynced: usize,
    /// Partitions with no live owner at all — unrecoverable until a site
    /// holding a copy revives.
    pub lost_partitions: Vec<usize>,
}

impl RepairReport {
    /// Did this pass change nothing (the cluster was already healthy)?
    pub fn is_noop(&self) -> bool {
        self.promotions == 0
            && self.re_replicated == 0
            && self.resynced == 0
            && self.lost_partitions.is_empty()
    }
}

struct RebalanceMetrics {
    promotions: Arc<Counter>,
    migrations: Arc<Counter>,
    chunks: Arc<Counter>,
}

fn metrics() -> &'static RebalanceMetrics {
    static METRICS: OnceLock<RebalanceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = MetricsRegistry::global();
        RebalanceMetrics {
            promotions: reg.counter("core.rebalance.promotions"),
            migrations: reg.counter("core.rebalance.migrations"),
            chunks: reg.counter("core.rebalance.chunks"),
        }
    })
}

/// The membership/rebalance controller of one cluster.
pub struct RebalanceController {
    catalog: Arc<Catalog>,
    network: Arc<Network>,
    /// Rows shipped per simulated migration chunk.
    chunk_rows: usize,
}

impl RebalanceController {
    pub fn new(catalog: Arc<Catalog>, network: Arc<Network>) -> RebalanceController {
        RebalanceController { catalog, network, chunk_rows: 256 }
    }

    /// Override the migration chunk size (rows per simulated transfer).
    pub fn with_chunk_rows(mut self, rows: usize) -> RebalanceController {
        self.chunk_rows = rows.max(1);
        self
    }

    /// Every hash-partitioned table's data handle, ascending by table id —
    /// the canonical multi-guard acquisition order.
    fn hash_tables(&self) -> Vec<Arc<TableData>> {
        let mut ids: Vec<_> = self
            .catalog
            .table_names()
            .into_iter()
            .filter_map(|n| self.catalog.table_by_name(&n))
            .collect();
        ids.sort();
        ids.into_iter()
            .filter(|&id| {
                matches!(
                    self.catalog.table_def(id).map(|d| d.distribution),
                    Some(TableDistribution::HashPartitioned { .. })
                )
            })
            .filter_map(|id| self.catalog.table_data(id))
            .collect()
    }

    /// Ship `store`'s rows from `src` to `dst` in chunks through the
    /// fault-injectable replication path. An empty store still costs one
    /// control frame. Any link/site fault aborts the transfer.
    fn ship_chunks(
        &self,
        src: SiteId,
        dst: SiteId,
        rows: &[ic_common::Row],
    ) -> Result<(), NetError> {
        let m = metrics();
        if rows.is_empty() {
            self.network.replicate(src, dst, 64)?;
            m.chunks.inc();
            return Ok(());
        }
        for chunk in rows.chunks(self.chunk_rows) {
            let bytes: usize = chunk.iter().map(|r| r.wire_size()).sum();
            self.network.replicate(src, dst, bytes)?;
            m.chunks.inc();
        }
        Ok(())
    }

    /// Copy partition `p` of every table from `src` to `dst`: bulk copy of a
    /// frozen snapshot first (writes keep flowing), then per-table catch-up
    /// and install under the write guard, so the installed replica is exactly
    /// current the moment it becomes visible.
    fn copy_partition(&self, tables: &[Arc<TableData>], p: usize, src: SiteId, dst: SiteId) -> Result<(), NetError> {
        for data in tables {
            // Phase A — bulk ship the current frozen snapshot, unguarded.
            let bulk = data.replica(p, src).unwrap_or_default();
            self.ship_chunks(src, dst, &bulk.rows)?;
            // Phase B — brief guarded catch-up: whatever committed since the
            // snapshot is shipped as one delta frame, then the exact current
            // store is installed.
            let _g = data.write_guard(p);
            let current = data.replica(p, src).unwrap_or_default();
            if current.version != bulk.version {
                let delta = current.rows.len().saturating_sub(bulk.rows.len()).max(1);
                let tail = &current.rows[current.rows.len() - delta.min(current.rows.len())..];
                self.ship_chunks(src, dst, tail)?;
            }
            data.install_replica(p, dst, current);
        }
        Ok(())
    }

    /// One repair pass: promote live backups over dead primaries, catch up
    /// stale revived replicas, and re-replicate partitions below the target
    /// replication factor. Idempotent — a second pass on a healthy cluster
    /// is a no-op. Returns what was done.
    pub fn repair(&self) -> RepairReport {
        let mut report = RepairReport::default();
        let tables = self.hash_tables();
        let membership = self.catalog.membership();
        let down = self.network.liveness().down_sites();
        let num_partitions = membership.snapshot().num_partitions();
        let target = membership.target_backups() + 1;
        for p in 0..num_partitions {
            let map = membership.snapshot();
            let owners = map.owners_of(p).to_vec();
            let live: Vec<SiteId> =
                owners.iter().copied().filter(|s| !down.contains(s)).collect();
            if live.is_empty() {
                report.lost_partitions.push(p);
                continue;
            }
            // 1. Promotion: the primary must be the live owner with the
            //    highest replica version (it saw every acknowledged write).
            //    That covers both a dead primary and a stale revived one
            //    that a fresher backup must take over from.
            let best = live
                .iter()
                .copied()
                .max_by_key(|&s| (self.version_sum(&tables, p, s), std::cmp::Reverse(s)))
                // ic-lint: allow(L001) because `live` is non-empty here by the check above
                .expect("live owners is non-empty");
            let primary_current = !down.contains(&owners[0])
                && self.version_sum(&tables, p, owners[0])
                    >= self.version_sum(&tables, p, best);
            if !primary_current && best != owners[0] {
                let guards: Vec<_> = tables.iter().map(|d| d.write_guard(p)).collect();
                if membership.promote(p, best).is_some() {
                    metrics().promotions.inc();
                    report.promotions += 1;
                }
                drop(guards);
            }
            // 2. Re-sync: a revived replica that missed writes while it was
            //    down lags the (freshest, post-promotion) primary; copy it
            //    current.
            let map = membership.snapshot();
            let primary = map.primary_of(p);
            let src = if down.contains(&primary) { best } else { primary };
            for &s in map.owners_of(p).to_vec().iter() {
                if s == src || down.contains(&s) {
                    continue;
                }
                let stale = tables.iter().any(|d| {
                    let pv = d.replica(p, src).map(|r| r.version).unwrap_or(0);
                    let sv = d.replica(p, s).map(|r| r.version).unwrap_or(0);
                    sv < pv
                });
                if !stale {
                    continue;
                }
                if self.copy_partition(&tables, p, src, s).is_ok() {
                    report.resynced += 1;
                } else {
                    // The catch-up copy failed (a fault mid-transfer): a
                    // live-but-stale replica must not stay in the owner
                    // list, or reads would route to it and observe state
                    // from before writes this cluster already acknowledged.
                    // Demote it; the re-replication loop below tops the
                    // partition back up from the fresh source.
                    let guards: Vec<_> =
                        tables.iter().map(|d| d.write_guard(p)).collect();
                    let new_owners: Vec<SiteId> = membership
                        .snapshot()
                        .owners_of(p)
                        .iter()
                        .copied()
                        .filter(|&o| o != s)
                        .collect();
                    membership.set_owners(p, new_owners);
                    for data in &tables {
                        data.drop_replica(p, s);
                    }
                    drop(guards);
                }
            }
            // 3. Re-replication: bring the partition back to
            //    target_backups + 1 live copies on the least-loaded members.
            loop {
                let map = membership.snapshot();
                let owners = map.owners_of(p).to_vec();
                let live_owners =
                    owners.iter().filter(|s| !down.contains(s)).count();
                if live_owners >= target {
                    break;
                }
                let Some(candidate) = self.least_loaded_candidate(&map, &owners, &down) else {
                    break;
                };
                // Copy from the freshest live owner, not blindly the
                // primary — a stale revived primary must never seed a new
                // replica while a fresher backup exists.
                let Some(src) = owners
                    .iter()
                    .copied()
                    .filter(|s| !down.contains(s))
                    .max_by_key(|&s| (self.version_sum(&tables, p, s), std::cmp::Reverse(s)))
                else {
                    break;
                };
                if self.copy_partition(&tables, p, src, candidate).is_err() {
                    break;
                }
                let guards: Vec<_> = tables.iter().map(|d| d.write_guard(p)).collect();
                let mut new_owners = membership.snapshot().owners_of(p).to_vec();
                new_owners.push(candidate);
                membership.set_owners(p, new_owners);
                drop(guards);
                metrics().migrations.inc();
                report.re_replicated += 1;
            }
        }
        report
    }

    /// Sum of `site`'s replica versions at partition `p` across all tables —
    /// the promotion fitness (higher = saw more acknowledged writes).
    fn version_sum(&self, tables: &[Arc<TableData>], p: usize, site: SiteId) -> u64 {
        tables.iter().map(|d| d.replica(p, site).map(|r| r.version).unwrap_or(0)).sum()
    }

    /// The live member hosting the fewest replicas that does not already own
    /// a copy of the partition.
    fn least_loaded_candidate(
        &self,
        map: &ic_net::ReplicaMap,
        owners: &[SiteId],
        down: &ic_common::hash::FxHashSet<SiteId>,
    ) -> Option<SiteId> {
        map.members()
            .iter()
            .copied()
            .filter(|s| !down.contains(s) && !owners.contains(s))
            .min_by_key(|&s| (map.partitions_hosted_by(s).len(), s))
    }

    /// Admit a new site and migrate partition replicas onto it until its
    /// load reaches the cluster average, in chunk-sized transfers that run
    /// concurrently with queries and writes. Returns the number of replicas
    /// migrated.
    pub fn join_site(&self, site: SiteId) -> usize {
        let membership = self.catalog.membership();
        membership.add_member(site);
        self.network.liveness().mark_alive(site);
        let tables = self.hash_tables();
        let down = self.network.liveness().down_sites();
        let mut migrated = 0usize;
        loop {
            let map = membership.snapshot();
            let members = map.members().len().max(1);
            let total_slots: usize =
                (0..map.num_partitions()).map(|p| map.owners_of(p).len()).sum();
            let fair_share = total_slots / members;
            let my_load = map.partitions_hosted_by(site).len();
            if my_load >= fair_share {
                break;
            }
            // Donor: the most-loaded live member; move one of its replicas
            // (a partition the joiner does not already host) to the joiner.
            let Some((donor, p)) = map
                .members()
                .iter()
                .copied()
                .filter(|&s| s != site && !down.contains(&s))
                .map(|s| (map.partitions_hosted_by(s).len(), s))
                .filter(|&(load, _)| load > my_load)
                .max_by_key(|&(load, s)| (load, std::cmp::Reverse(s)))
                .and_then(|(_, donor)| {
                    (0..map.num_partitions())
                        .find(|&p| {
                            map.owners_of(p).contains(&donor)
                                && !map.owners_of(p).contains(&site)
                        })
                        .map(|p| (donor, p))
                })
            else {
                break;
            };
            // Source the copy from the freshest live owner. The donor is a
            // live owner itself, so the best is at least as new as what the
            // donor holds — dropping the donor's replica afterwards can
            // never destroy the newest copy.
            let Some(src) = map
                .owners_of(p)
                .iter()
                .copied()
                .filter(|s| !down.contains(s))
                .max_by_key(|&s| (self.version_sum(&tables, p, s), std::cmp::Reverse(s)))
            else {
                break;
            };
            if self.copy_partition(&tables, p, src, site).is_err() {
                break;
            }
            let guards: Vec<_> = tables.iter().map(|d| d.write_guard(p)).collect();
            let owners: Vec<SiteId> = membership
                .snapshot()
                .owners_of(p)
                .iter()
                .map(|&s| if s == donor { site } else { s })
                .collect();
            membership.set_owners(p, owners);
            for data in &tables {
                data.drop_replica(p, donor);
            }
            drop(guards);
            metrics().migrations.inc();
            migrated += 1;
        }
        migrated
    }

    /// Gracefully retire a site: promote away its primaries, re-replicate
    /// its copies onto the remaining members, then remove it from the
    /// cluster and drop its replicas. Returns the number of partitions that
    /// had to move data.
    pub fn leave_site(&self, site: SiteId) -> usize {
        let membership = self.catalog.membership();
        let tables = self.hash_tables();
        let down = self.network.liveness().down_sites();
        let mut moved = 0usize;
        let mut clean = true;
        let hosted = membership.snapshot().partitions_hosted_by(site);
        for p in hosted {
            let map = membership.snapshot();
            let owners = map.owners_of(p).to_vec();
            let survivors: Vec<SiteId> =
                owners.iter().copied().filter(|&s| s != site && !down.contains(&s)).collect();
            // The departing replica may be the freshest copy (a survivor can
            // be a stale revived backup): catch every survivor up from the
            // highest-version live owner before the leaver's copy goes away.
            // A fault can abort a catch-up mid-copy; that is only dangerous
            // when the *leaver* is the freshest source — then the handoff
            // must not complete, or the newest copy would be destroyed.
            let best = owners
                .iter()
                .copied()
                .filter(|s| !down.contains(s))
                .max_by_key(|&s| (self.version_sum(&tables, p, s), std::cmp::Reverse(s)));
            let mut handed_off = true;
            if let Some(best) = best {
                for &s in &survivors {
                    if s != best
                        && self.version_sum(&tables, p, s) < self.version_sum(&tables, p, best)
                        && self.copy_partition(&tables, p, best, s).is_err()
                        && best == site
                    {
                        handed_off = false;
                    }
                }
            }
            if !handed_off {
                clean = false;
                continue;
            }
            // The departing site may hold the only copy: hand it to the
            // least-loaded member first.
            let replacement = if survivors.is_empty() {
                match self.least_loaded_candidate(&map, &owners, &down) {
                    Some(c) => {
                        if self.copy_partition(&tables, p, site, c).is_err() {
                            clean = false;
                            continue;
                        }
                        moved += 1;
                        metrics().migrations.inc();
                        Some(c)
                    }
                    None => {
                        // Nowhere to put it; keep the site's copy and its
                        // owner slot so the data stays reachable.
                        clean = false;
                        continue;
                    }
                }
            } else {
                None
            };
            let guards: Vec<_> = tables.iter().map(|d| d.write_guard(p)).collect();
            let mut new_owners: Vec<SiteId> =
                owners.iter().copied().filter(|&s| s != site).collect();
            if let Some(c) = replacement {
                new_owners.push(c);
            }
            membership.set_owners(p, new_owners);
            for data in &tables {
                data.drop_replica(p, site);
            }
            drop(guards);
        }
        // Complete the departure only if every hosted partition was handed
        // off; otherwise the site stays a member (still owning the partitions
        // that could not move) so no owner list points at scrubbed data, and
        // a later leave can retry.
        if clean {
            membership.remove_member(site);
        }
        // Top the cluster back up to the target replication factor.
        let report = self.repair();
        moved + report.re_replicated
    }
}
