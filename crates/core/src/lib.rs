//! # ignite-calcite-rs — a composable database system in Rust
//!
//! A from-scratch Rust reproduction of the system studied in *"Apache
//! Ignite + Calcite Composable Database System: Experimental Evaluation
//! and Analysis"* (EDBT 2025): a distributed in-memory store (Ignite)
//! composed with a modular SQL planner (Calcite), including every
//! enhancement the paper implements, switchable between the three
//! evaluated system variants:
//!
//! * [`SystemVariant::IC`] — the baseline, with the paper's documented
//!   defects faithfully reproduced (join-size estimation collapse, missing
//!   FILTER_CORRELATE rule, exchange cost bug, byte-based cost units,
//!   single-phase planning, no hash join, no fully-distributed joins,
//!   single-threaded fragments).
//! * [`SystemVariant::ICPlus`] — the paper's §4/§5.1/§5.2 improvements.
//! * [`SystemVariant::ICPlusM`] — IC+ with §5.3 multithreaded variant
//!   fragments.
//!
//! ## Quickstart
//!
//! ```
//! use ic_core::{Cluster, ClusterConfig, SystemVariant};
//!
//! let cluster = Cluster::new(ClusterConfig {
//!     sites: 2,
//!     variant: SystemVariant::ICPlus,
//!     ..ClusterConfig::test_default()
//! });
//! cluster
//!     .run("CREATE TABLE employee (id BIGINT, name VARCHAR, PRIMARY KEY (id))")
//!     .unwrap();
//! cluster
//!     .run("CREATE TABLE sales (sale_id BIGINT, emp_id BIGINT, amount DOUBLE, PRIMARY KEY (sale_id))")
//!     .unwrap();
//! // load rows programmatically (or via the benchmark loaders)…
//! let result = cluster
//!     .query("SELECT * FROM employee INNER JOIN sales ON employee.id = sales.emp_id WHERE employee.id = 10")
//!     .unwrap();
//! assert_eq!(result.columns.len(), 5);
//! ```

pub mod cluster;
pub mod governor;
pub mod rebalance;
pub mod result;

pub use cluster::{Cluster, ClusterConfig, SystemVariant};
pub use governor::{Admission, Governor, GovernorConfig, GovernorStats};
pub use rebalance::{RebalanceController, RepairReport};
pub use ic_common::{Datum, IcError, IcResult, MemoryLease, MemoryPool, Row};
pub use ic_net::{
    FaultEvent, FaultInjector, FaultKind, FaultPlan, Liveness, NetworkConfig, SiteId, SiteState,
    TICK_FOREVER,
};
pub use result::{DmlResult, QueryResult};
