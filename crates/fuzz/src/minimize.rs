//! Greedy fixed-point shrinking of a failing scenario.
//!
//! Given a scenario and a predicate that re-runs the oracle battery and
//! reports whether the failure persists, [`minimize`] repeatedly tries
//! single-step simplifications — dropping fault events, lease pressure,
//! ORDER BY/LIMIT/HAVING/DISTINCT, WHERE conjuncts, select items, group
//! keys, whole join arms — keeping each step only if the scenario still
//! fails, until no step applies. Candidates whose SQL no longer parses
//! and binds are discarded up front, so the minimizer cannot "converge"
//! onto a syntax error that fails for an unrelated reason.
//!
//! The result is the minimal reproducer written into a fixture (see
//! [`fixture`](crate::fixture)).

use crate::sim::{Env, Scenario};
use ic_core::SystemVariant;
use ic_sql::ast::{AstExpr, BinOp, Query, Statement, TableRef};
use ic_sql::{bind_statement, parse_sql};

/// Shrink `scenario` while `fails` keeps returning `true` for the
/// candidate. Returns the smallest scenario found and the number of
/// accepted shrink steps.
pub fn minimize(
    env: &mut Env,
    scenario: &Scenario,
    fails: &mut dyn FnMut(&mut Env, &Scenario) -> bool,
) -> (Scenario, usize) {
    let mut best = scenario.clone();
    let mut steps = 0;
    loop {
        let mut improved = false;
        for cand in candidates(&best) {
            if !binds(env, &cand) {
                continue;
            }
            if fails(env, &cand) {
                best = cand;
                steps += 1;
                improved = true;
                break; // restart the pass from the (new) smaller scenario
            }
        }
        if !improved {
            return (best, steps);
        }
    }
}

/// A candidate must still be a well-formed query against its schema.
fn binds(env: &mut Env, s: &Scenario) -> bool {
    let cluster = env.cluster(s.schema, 1, SystemVariant::ICPlus);
    match parse_sql(&s.sql()) {
        Ok(Statement::Query(q)) => bind_statement(&q, cluster.catalog()).is_ok(),
        _ => false,
    }
}

/// All single-step simplifications of `s`, biggest steps first so the
/// greedy loop takes large bites before nibbling.
fn candidates(s: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();

    // --- Schedule shrinks: whole plan, then event-at-a-time.
    if let Some(plan) = &s.faults {
        let mut c = s.clone();
        c.faults = None;
        out.push(c);
        for i in 0..plan.events.len() {
            if plan.events.len() == 1 {
                break; // dropping the only event == dropping the plan
            }
            let mut p = plan.clone();
            p.events.remove(i);
            let mut c = s.clone();
            c.faults = Some(p);
            out.push(c);
        }
    }
    if s.lease_pressure {
        let mut c = s.clone();
        c.lease_pressure = false;
        out.push(c);
    }
    if s.run_icplusm {
        let mut c = s.clone();
        c.run_icplusm = false;
        out.push(c);
    }
    // Fewer sites only when no schedule references site ids.
    if s.faults.is_none() && s.sites > 2 {
        let mut c = s.clone();
        c.sites -= 1;
        out.push(c);
    }

    // --- Query shrinks.
    for q in query_shrinks(&s.query) {
        let mut c = s.clone();
        c.query = q;
        out.push(c);
    }
    out
}

fn query_shrinks(q: &Query) -> Vec<Query> {
    let mut out = Vec::new();
    let push = |out: &mut Vec<Query>, f: &dyn Fn(&mut Query)| {
        let mut c = q.clone();
        f(&mut c);
        out.push(c);
    };

    // Collapse a join to one of its arms (top-level; repeated passes
    // flatten nested joins one level at a time).
    for (i, tr) in q.from.iter().enumerate() {
        if let TableRef::Join { left, right, .. } = tr {
            for arm in [left, right] {
                let mut c = q.clone();
                c.from[i] = (**arm).clone();
                out.push(c);
            }
        }
    }
    // Drop a whole comma-join element.
    if q.from.len() > 1 {
        for i in 0..q.from.len() {
            let mut c = q.clone();
            c.from.remove(i);
            out.push(c);
        }
    }
    // Replace a derived table by its inner FROM (when trivially liftable).
    for (i, tr) in q.from.iter().enumerate() {
        if let TableRef::Derived { query, .. } = tr {
            if query.from.len() == 1 {
                if let TableRef::Table { name, .. } = &query.from[0] {
                    let mut c = q.clone();
                    let alias = match &c.from[i] {
                        TableRef::Derived { alias, .. } => alias.clone(),
                        _ => unreachable!(),
                    };
                    c.from[i] =
                        TableRef::Table { name: name.clone(), alias: Some(alias) };
                    out.push(c);
                }
            }
        }
    }

    if q.where_clause.is_some() {
        push(&mut out, &|c| c.where_clause = None);
        // Keep one side of a top-level AND.
        if let Some(AstExpr::Binary { op: BinOp::And, left, right }) = &q.where_clause {
            for side in [left, right] {
                let mut c = q.clone();
                c.where_clause = Some((**side).clone());
                out.push(c);
            }
        }
    }
    if q.having.is_some() {
        push(&mut out, &|c| c.having = None);
    }
    if q.limit.is_some() {
        push(&mut out, &|c| c.limit = None);
    }
    if !q.order_by.is_empty() {
        push(&mut out, &|c| c.order_by.clear());
    }
    if q.distinct {
        push(&mut out, &|c| c.distinct = false);
    }
    if q.select.len() > 1 {
        for i in 0..q.select.len() {
            let mut c = q.clone();
            c.select.remove(i);
            out.push(c);
        }
    }
    if q.group_by.len() > 1 {
        for i in 0..q.group_by.len() {
            let mut c = q.clone();
            c.group_by.remove(i);
            out.push(c);
        }
    }
    out
}
