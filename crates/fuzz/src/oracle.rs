//! Result comparison and error classification for the three oracles.
//!
//! Rows are compared as unordered multisets (generated ORDER BY is only a
//! partial order, and distributed merge order is nondeterministic): both
//! sides are sorted by a canonical string key and then compared pairwise
//! with a small relative tolerance on doubles, the same regime the chaos
//! tests use. When a LIMIT actually truncated the result (reference row
//! count hit the limit), only counts are compared — which rows survive a
//! truncation under a partial order is implementation-defined.
//!
//! Errors are classified into [`ErrorClass`]es. In a fault-free run every
//! engine error except a *resource* verdict is a bug; under faults any
//! [`ErrorClass::Retryable`] or [`ErrorClass::Resource`] outcome is an
//! allowed refusal, while wrong rows, panics, and [`IcError::Internal`]
//! remain disagreements.

use ic_common::{Datum, IcError, Row};

/// What an engine outcome means to the differential harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Site loss / failover exhaustion / shedding / lease revocation —
    /// legitimate refusals under faults or pressure.
    Retryable,
    /// Deterministic resource verdicts (timeout, memory, planner budget):
    /// allowed per variant; a plan may legitimately exceed a budget.
    Resource,
    /// The frontend rejected the statement. A generator/dialect gap when
    /// the local bind succeeded — surfaced as a disagreement then.
    Rejected,
    /// Engine invariant broken — always a disagreement.
    Bug,
}

/// Classify an [`IcError`] by what the harness should do with it.
pub fn classify(err: &IcError) -> ErrorClass {
    match err {
        IcError::SiteUnavailable { .. }
        | IcError::RetriesExhausted { .. }
        | IcError::Overloaded { .. }
        | IcError::ResourcesRevoked { .. }
        | IcError::WriteConflict { .. }
        | IcError::RebalanceInProgress { .. } => ErrorClass::Retryable,
        IcError::ExecTimeout { .. }
        | IcError::MemoryLimit { .. }
        | IcError::PlannerBudgetExceeded { .. } => ErrorClass::Resource,
        IcError::Parse(_)
        | IcError::Bind(_)
        | IcError::Plan(_)
        | IcError::Unsupported(_)
        | IcError::Catalog(_) => ErrorClass::Rejected,
        IcError::Exec(_) | IcError::Internal(_) => ErrorClass::Bug,
    }
}

/// Canonical sort key for a row: every datum stringified, doubles at
/// fixed precision so equal-within-tolerance values collate together.
fn row_key(row: &Row) -> String {
    let mut key = String::new();
    for d in &row.0 {
        match d {
            Datum::Double(v) => key.push_str(&format!("{v:.6}")),
            other => key.push_str(&other.to_string()),
        }
        key.push('\u{1}');
    }
    key
}

fn datum_close(a: &Datum, b: &Datum) -> bool {
    match (a, b) {
        (Datum::Double(x), Datum::Double(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-6 * scale
        }
        // Mixed Int/Double appears when an optimized plan folds an integer
        // expression the unoptimized plan computes in floating point.
        (Datum::Int(x), Datum::Double(y)) | (Datum::Double(y), Datum::Int(x)) => {
            (*x as f64 - y).abs() <= 1e-6 * y.abs().max(1.0)
        }
        _ => a == b,
    }
}

/// Compare two result sets as unordered multisets with double tolerance.
/// Returns a human-readable description of the first difference.
pub fn compare_rows(left: &[Row], right: &[Row]) -> Result<(), String> {
    if left.len() != right.len() {
        return Err(format!("row count mismatch: {} vs {}", left.len(), right.len()));
    }
    let mut ls: Vec<&Row> = left.iter().collect();
    let mut rs: Vec<&Row> = right.iter().collect();
    ls.sort_by_key(|r| row_key(r));
    rs.sort_by_key(|r| row_key(r));
    for (i, (l, r)) in ls.iter().zip(&rs).enumerate() {
        if l.0.len() != r.0.len() {
            return Err(format!(
                "arity mismatch at sorted row {i}: {} vs {} columns",
                l.0.len(),
                r.0.len()
            ));
        }
        for (c, (a, b)) in l.0.iter().zip(&r.0).enumerate() {
            if !datum_close(a, b) {
                return Err(format!("sorted row {i} col {c}: {a} vs {b}"));
            }
        }
    }
    Ok(())
}

/// Compare an engine result against the reference, honouring `limit`:
/// when the reference row count shows the LIMIT actually truncated,
/// only the (post-truncation) counts must match.
pub fn compare_limited(
    reference: &[Row],
    engine: &[Row],
    limit: Option<u64>,
) -> Result<(), String> {
    if let Some(n) = limit {
        if reference.len() as u64 == n {
            return if engine.len() as u64 == n {
                Ok(())
            } else {
                Err(format!(
                    "LIMIT {n}: reference kept {} rows, engine kept {}",
                    reference.len(),
                    engine.len()
                ))
            };
        }
    }
    compare_rows(reference, engine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[Datum]) -> Row {
        Row(vals.to_vec())
    }

    #[test]
    fn unordered_multiset_with_tolerance() {
        let a = vec![
            row(&[Datum::Int(1), Datum::Double(3.0000001)]),
            row(&[Datum::Int(2), Datum::Null]),
        ];
        let b = vec![
            row(&[Datum::Int(2), Datum::Null]),
            row(&[Datum::Int(1), Datum::Double(3.0)]),
        ];
        assert!(compare_rows(&a, &b).is_ok());
        let c = vec![
            row(&[Datum::Int(2), Datum::Null]),
            row(&[Datum::Int(1), Datum::Double(3.1)]),
        ];
        assert!(compare_rows(&a, &c).is_err());
    }

    #[test]
    fn limit_truncation_compares_counts_only() {
        let reference = vec![row(&[Datum::Int(1)]), row(&[Datum::Int(2)])];
        let engine = vec![row(&[Datum::Int(2)]), row(&[Datum::Int(3)])];
        // limit=2 and reference hit it: rows may differ, counts must not.
        assert!(compare_limited(&reference, &engine, Some(2)).is_ok());
        // no limit: full comparison fails.
        assert!(compare_limited(&reference, &engine, None).is_err());
    }

    #[test]
    fn classification() {
        assert_eq!(
            classify(&IcError::SiteUnavailable { site: 1, detail: "x".into() }),
            ErrorClass::Retryable
        );
        assert_eq!(classify(&IcError::MemoryLimit { limit_rows: 1 }), ErrorClass::Resource);
        assert_eq!(classify(&IcError::Bind("x".into())), ErrorClass::Rejected);
        assert_eq!(classify(&IcError::Internal("x".into())), ErrorClass::Bug);
    }
}
