//! `ic-fuzz` — deterministic differential fuzzing driver.
//!
//! Modes:
//!   --smoke [--max-secs N]   seed range 0..200 through all three oracles,
//!                            with periodic fresh-process determinism
//!                            re-checks and a minimizer self-test.
//!   --seeds A..B             run an explicit seed range.
//!   --replay SEED            re-run one scenario, print its digest.
//!   --replay-fixture PATH    replay a .fix reproducer file.
//!   --dml-smoke              DML write-stream seeds 0..60 through the
//!                            write-aware oracle, with determinism checks.
//!   --dml-seeds A..B         run an explicit DML seed range.
//!   --dml-replay SEED        re-run one DML scenario, print its digest.
//!
//! Every failure message leads with the governing seed; `--replay SEED`
//! reproduces the exact scenario byte-for-byte.

use ic_fuzz::{minimize, Env, Fixture, Scenario};
use ic_sql::ast::{Query, TableRef};
use std::time::Instant;

const SMOKE_SEEDS: u64 = 200;
const DML_SMOKE_SEEDS: u64 = 60;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut max_secs: u64 = 600;
    let mut mode: Option<Mode> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => mode = Some(Mode::Seeds(0, SMOKE_SEEDS, true)),
            "--seeds" => {
                let spec = it.next().unwrap_or_else(|| usage("--seeds needs A..B"));
                let (a, b) = spec
                    .split_once("..")
                    .unwrap_or_else(|| usage("--seeds needs A..B"));
                let a = a.parse().unwrap_or_else(|_| usage("bad seed range"));
                let b = b.parse().unwrap_or_else(|_| usage("bad seed range"));
                mode = Some(Mode::Seeds(a, b, false));
            }
            "--replay" => {
                let s = it.next().unwrap_or_else(|| usage("--replay needs SEED"));
                mode = Some(Mode::Replay(s.parse().unwrap_or_else(|_| usage("bad seed"))));
            }
            "--replay-fixture" => {
                let p = it.next().unwrap_or_else(|| usage("--replay-fixture needs PATH"));
                mode = Some(Mode::Fixture(p.clone()));
            }
            "--dml-smoke" => mode = Some(Mode::DmlSeeds(0, DML_SMOKE_SEEDS, true)),
            "--dml-seeds" => {
                let spec = it.next().unwrap_or_else(|| usage("--dml-seeds needs A..B"));
                let (a, b) = spec
                    .split_once("..")
                    .unwrap_or_else(|| usage("--dml-seeds needs A..B"));
                let a = a.parse().unwrap_or_else(|_| usage("bad seed range"));
                let b = b.parse().unwrap_or_else(|_| usage("bad seed range"));
                mode = Some(Mode::DmlSeeds(a, b, false));
            }
            "--dml-replay" => {
                let s = it.next().unwrap_or_else(|| usage("--dml-replay needs SEED"));
                mode =
                    Some(Mode::DmlReplay(s.parse().unwrap_or_else(|_| usage("bad seed"))));
            }
            "--max-secs" => {
                let s = it.next().unwrap_or_else(|| usage("--max-secs needs N"));
                max_secs = s.parse().unwrap_or_else(|_| usage("bad --max-secs"));
            }
            other => usage(&format!("unknown argument '{other}'")),
        }
    }
    let code = match mode {
        Some(Mode::Seeds(a, b, smoke)) => run_seeds(a, b, smoke, max_secs),
        Some(Mode::Replay(seed)) => replay(seed),
        Some(Mode::Fixture(path)) => replay_fixture(&path),
        Some(Mode::DmlSeeds(a, b, smoke)) => run_dml_seeds(a, b, smoke, max_secs),
        Some(Mode::DmlReplay(seed)) => dml_replay(seed),
        None => usage("pick a mode"),
    };
    std::process::exit(code);
}

enum Mode {
    /// (from, to, is_smoke)
    Seeds(u64, u64, bool),
    Replay(u64),
    Fixture(String),
    /// (from, to, is_smoke)
    DmlSeeds(u64, u64, bool),
    DmlReplay(u64),
}

fn usage(msg: &str) -> ! {
    eprintln!(
        "ic-fuzz: {msg}\n\
         usage: ic-fuzz --smoke [--max-secs N]\n\
         \x20      ic-fuzz --seeds A..B [--max-secs N]\n\
         \x20      ic-fuzz --replay SEED\n\
         \x20      ic-fuzz --replay-fixture PATH\n\
         \x20      ic-fuzz --dml-smoke [--max-secs N]\n\
         \x20      ic-fuzz --dml-seeds A..B [--max-secs N]\n\
         \x20      ic-fuzz --dml-replay SEED"
    );
    std::process::exit(2);
}

fn run_dml_seeds(from: u64, to: u64, smoke: bool, max_secs: u64) -> i32 {
    let t0 = Instant::now();
    let mut ran = 0u64;
    let mut failures = 0u64;
    for seed in from..to {
        if t0.elapsed().as_secs() >= max_secs {
            println!(
                "WALL CAP: stopping after {ran}/{} DML scenarios ({max_secs}s budget); \
                 seeds {seed}..{to} not run",
                to - from
            );
            break;
        }
        let scenario = ic_fuzz::DmlScenario::from_seed(seed);
        let outcome = ic_fuzz::run_dml_scenario(&scenario);
        ran += 1;
        if let Some(d) = &outcome.disagreement {
            failures += 1;
            println!("DML FUZZ FAILURE seed={seed}\n{d}");
            println!("replay with: cargo run -p ic-fuzz -- --dml-replay {seed}");
            print_dml_minimized(seed);
        }
        // Replay determinism: same seed, fresh cluster, identical digest.
        if smoke && seed % 10 == 0 {
            let out2 = ic_fuzz::run_dml_scenario(&scenario);
            if out2.digest != outcome.digest {
                failures += 1;
                println!(
                    "DML FUZZ FAILURE seed={seed}: replay digest differs\n\
                     first:  {}\nsecond: {}",
                    outcome.digest, out2.digest
                );
            }
        }
    }
    println!(
        "ic-fuzz dml: {ran} scenarios, {failures} failures, {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    if failures == 0 {
        0
    } else {
        1
    }
}

fn dml_replay(seed: u64) -> i32 {
    let scenario = ic_fuzz::DmlScenario::from_seed(seed);
    let outcome = ic_fuzz::run_dml_scenario(&scenario);
    println!("digest: {}", outcome.digest);
    match &outcome.disagreement {
        Some(d) => {
            println!("DML FUZZ FAILURE seed={seed}\n{d}");
            print_dml_minimized(seed);
            1
        }
        None => {
            println!("dml seed {seed}: write oracle agrees");
            0
        }
    }
}

/// Shrink a failing DML stream and print the minimal op list so the
/// failure log carries a ready-to-commit regression scenario.
fn print_dml_minimized(seed: u64) {
    let scenario = ic_fuzz::DmlScenario::from_seed(seed);
    let mut fails =
        |s: &ic_fuzz::DmlScenario| ic_fuzz::run_dml_scenario(s).disagreement.is_some();
    let (small, steps) = ic_fuzz::minimize_dml(&scenario, &mut fails);
    println!(
        "--- minimized DML scenario ({steps} shrink steps; save under tests/regressions/) ---"
    );
    println!("seed={} {}", small.seed, small.spec());
    println!("--- end scenario ---");
}

fn run_seeds(from: u64, to: u64, smoke: bool, max_secs: u64) -> i32 {
    let t0 = Instant::now();
    let mut env = Env::new();
    let mut ran = 0u64;
    let mut failures = 0u64;
    for seed in from..to {
        if t0.elapsed().as_secs() >= max_secs {
            println!(
                "WALL CAP: stopping after {ran}/{} scenarios ({max_secs}s budget); \
                 seeds {seed}..{to} not run",
                to - from
            );
            break;
        }
        let scenario = Scenario::from_seed(seed, &mut env);
        let outcome = ic_fuzz::run_scenario(&mut env, &scenario);
        ran += 1;
        if let Some(d) = &outcome.disagreement {
            failures += 1;
            println!("FUZZ FAILURE seed={seed}\n{d}");
            println!("replay with: cargo run -p ic-fuzz -- --replay {seed}");
            print_minimized(&mut env, seed);
        }
        // Fresh-environment replay: the digest (inputs + canonical
        // reference result) must be byte-identical, or seeds are not
        // reproducible and every fixture is worthless.
        if smoke && seed % 10 == 0 {
            let mut fresh = Env::new();
            let sc2 = Scenario::from_seed(seed, &mut fresh);
            let out2 = ic_fuzz::run_scenario(&mut fresh, &sc2);
            if out2.digest != outcome.digest {
                failures += 1;
                println!(
                    "FUZZ FAILURE seed={seed}: replay digest differs\n\
                     first:  {}\nsecond: {}",
                    outcome.digest, out2.digest
                );
            }
        }
    }
    println!(
        "ic-fuzz: {ran} scenarios, {failures} failures, {:.1}s",
        t0.elapsed().as_secs_f64()
    );
    let minimizer_ok = if smoke { minimizer_selftest(&mut env) } else { true };
    if failures == 0 && minimizer_ok {
        0
    } else {
        1
    }
}

fn replay(seed: u64) -> i32 {
    let mut env = Env::new();
    let scenario = Scenario::from_seed(seed, &mut env);
    let outcome = ic_fuzz::run_scenario(&mut env, &scenario);
    println!("digest: {}", outcome.digest);
    match &outcome.disagreement {
        Some(d) => {
            println!("FUZZ FAILURE seed={seed}\n{d}");
            print_minimized(&mut env, seed);
            1
        }
        None => {
            println!("seed {seed}: all oracles agree");
            0
        }
    }
}

fn replay_fixture(path: &str) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ic-fuzz: cannot read {path}: {e}");
            return 2;
        }
    };
    let fx = match Fixture::parse(&text) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ic-fuzz: bad fixture {path}: {e}");
            return 2;
        }
    };
    let mut env = Env::new();
    match fx.replay(&mut env) {
        Ok(out) => match out.disagreement {
            Some(d) => {
                println!("FIXTURE FAILURE {path} (seed={})\n{d}", fx.seed);
                1
            }
            None => {
                println!("fixture {path}: all oracles agree");
                0
            }
        },
        Err(e) => {
            eprintln!("ic-fuzz: fixture {path} did not replay: {e}");
            2
        }
    }
}

/// On a real disagreement, shrink it and print the reproducer fixture so
/// the failure log carries a ready-to-commit regression test.
fn print_minimized(env: &mut Env, seed: u64) {
    let scenario = Scenario::from_seed(seed, env);
    let mut fails =
        |env: &mut Env, s: &Scenario| ic_fuzz::run_scenario(env, s).disagreement.is_some();
    let (small, steps) = minimize(env, &scenario, &mut fails);
    let out = ic_fuzz::run_scenario(env, &small);
    let notes = vec![
        format!("found by seed {seed}; minimized in {steps} steps"),
        format!(
            "disagreement: {}",
            out.disagreement.as_deref().unwrap_or("(no longer fails)").lines().next().unwrap_or("")
        ),
    ];
    let fx = Fixture::from_scenario(&small, &notes);
    println!("--- minimized reproducer (save under tests/regressions/) ---");
    print!("{}", fx.render());
    println!("--- end reproducer ---");
}

fn has_left_join(q: &Query) -> bool {
    fn in_ref(tr: &TableRef) -> bool {
        match tr {
            TableRef::Table { .. } => false,
            TableRef::Derived { query, .. } => has_left_join(query),
            TableRef::Join { left, right, kind, .. } => {
                matches!(kind, ic_sql::ast::AstJoinKind::Left)
                    || in_ref(left)
                    || in_ref(right)
            }
        }
    }
    q.from.iter().any(in_ref)
}

/// Minimizer self-test: inject a fake bug ("any scenario whose query has
/// a LEFT JOIN and returns rows is wrong" — the shape of the real ICPlusM
/// duplication bug this fuzzer found), shrink a rich failing scenario,
/// and require that (a) the shrink made real progress, (b) the minimal
/// scenario is still red under the injected oracle, and (c) its fixture
/// replays green through the real oracles.
fn minimizer_selftest(env: &mut Env) -> bool {
    let mut fails = |env: &mut Env, s: &Scenario| {
        if !has_left_join(&s.query) {
            return false;
        }
        match ic_fuzz::run_scenario(env, s) {
            out if out.disagreement.is_some() => false, // real failure: not our injected bug
            out => out.digest.contains("ref_rows=") && !out.digest.contains("ref_rows=0 "),
        }
    };
    // Find a seed exhibiting the injected bug with room to shrink.
    let mut picked = None;
    for seed in 0..SMOKE_SEEDS {
        let s = Scenario::from_seed(seed, env);
        let rich = s.query.where_clause.is_some()
            || s.query.order_by.len() + s.query.select.len() > 2
            || s.faults.is_some();
        if rich && has_left_join(&s.query) && fails(env, &s) {
            picked = Some(s);
            break;
        }
    }
    let Some(scenario) = picked else {
        println!("minimizer self-test: SKIP (no LEFT JOIN scenario in range)");
        return true;
    };
    let before = scenario.sql().len();
    let (small, steps) = minimize(env, &scenario, &mut fails);
    let after = small.sql().len();
    let still_red = fails(env, &small);
    let replay_green = Fixture::from_scenario(&small, &[])
        .replay(env)
        .map(|o| o.disagreement.is_none())
        .unwrap_or(false);
    let ok = steps > 0 && after < before && still_red && replay_green;
    println!(
        "minimizer self-test (seed {}): {} — {steps} shrink steps, sql {before}B -> {after}B, \
         injected-oracle still red: {still_red}, fixture replays green: {replay_green}",
        scenario.seed,
        if ok { "OK" } else { "FAILED" },
    );
    ok
}
