//! Seeded random SQL generation over the bench schemas.
//!
//! The generator builds [`Query`] ASTs directly (rendered to text via
//! [`ic_sql::unparse`]), covering every shape the binder/decorrelator
//! accepts: multi-way INNER/LEFT equi-joins, comma joins, derived tables,
//! grouped aggregation with HAVING, DISTINCT, ORDER BY/LIMIT, NULL-heavy
//! predicates (IS NULL, LEFT-join padding), and the three decorrelatable
//! subquery shapes (correlated EXISTS, uncorrelated IN, correlated
//! equi-scalar aggregates). It deliberately stays inside the dialect's
//! typing discipline — comparisons are type-matched, LIKE only on strings,
//! arithmetic only on numerics — so a generated query that fails to bind
//! is a generator bug, not noise.
//!
//! Literals are sampled from the actual table data, so predicates hit
//! realistic selectivities instead of always-empty ranges.
//!
//! Everything is a pure function of the [`SplitMix64`] stream: the same
//! seed over the same [`SchemaInfo`] yields the same AST.

use ic_common::{BinOp, DataType, Datum};
use ic_net::SplitMix64;
use ic_sql::ast::*;
use ic_storage::Catalog;

/// One column: name, type, and a few values sampled from the data.
#[derive(Debug, Clone)]
pub struct ColInfo {
    pub name: String,
    pub dtype: DataType,
    pub samples: Vec<Datum>,
}

/// One table visible to the generator.
#[derive(Debug, Clone)]
pub struct TableInfo {
    pub name: String,
    pub cols: Vec<ColInfo>,
}

/// The generator's view of a schema, derived from a loaded catalog.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    pub tables: Vec<TableInfo>,
}

impl SchemaInfo {
    /// Snapshot a loaded catalog: table/column shapes plus up to eight
    /// sampled values per column (NULLs skipped). Tables are sorted by
    /// name so the snapshot is independent of catalog iteration order.
    pub fn from_catalog(catalog: &Catalog) -> SchemaInfo {
        let mut names = catalog.table_names();
        names.sort();
        let mut tables = Vec::new();
        for name in names {
            let Some(id) = catalog.table_by_name(&name) else { continue };
            let Some(def) = catalog.table_def(id) else { continue };
            let rows = catalog.table_data(id).map(|d| d.all_rows()).unwrap_or_default();
            let cols = def
                .schema
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| {
                    let mut samples = Vec::new();
                    if !rows.is_empty() {
                        let step = (rows.len() / 8).max(1);
                        for r in rows.iter().step_by(step).take(8) {
                            if let Some(d) = r.0.get(i) {
                                if *d != Datum::Null {
                                    samples.push(d.clone());
                                }
                            }
                        }
                    }
                    ColInfo { name: f.name.clone(), dtype: f.dtype, samples }
                })
                .collect();
            tables.push(TableInfo { name, cols });
        }
        SchemaInfo { tables }
    }
}

/// A table occurrence in the query being built: alias plus column shapes.
#[derive(Debug, Clone)]
struct ScopeEntry {
    alias: String,
    cols: Vec<ColInfo>,
}

/// Generate one random query over `schema`, driven entirely by `rng`.
pub fn generate_query(rng: &mut SplitMix64, schema: &SchemaInfo) -> Query {
    Gen { rng, schema, comma_pred: None }.query(0)
}

struct Gen<'a> {
    rng: &'a mut SplitMix64,
    schema: &'a SchemaInfo,
    /// Equi-condition of a comma join, pending to be ANDed into WHERE.
    comma_pred: Option<AstExpr>,
}

impl Gen<'_> {
    fn chance(&mut self, pct: u64) -> bool {
        self.rng.next_below(100) < pct
    }

    fn pick<'t, T>(&mut self, items: &'t [T]) -> &'t T {
        &items[self.rng.next_below(items.len() as u64) as usize]
    }

    fn table(&mut self) -> TableInfo {
        self.schema.tables[self.rng.next_below(self.schema.tables.len() as u64) as usize]
            .clone()
    }

    /// Top-level entry. `depth` > 0 marks subquery generation, which stays
    /// strictly simpler (the binder rejects doubly-nested correlation;
    /// depth-1 shapes are built by the dedicated constructors below).
    fn query(&mut self, depth: usize) -> Query {
        let (from, scope) = self.gen_from_clause(depth);
        let aggregate = depth == 0 && self.chance(45);
        // A pending comma-join condition forces a WHERE clause.
        let where_clause = if self.comma_pred.is_some() || self.chance(70) {
            Some(self.where_clause(&scope, depth))
        } else {
            None
        };
        let (select, group_by, having) = if aggregate {
            self.aggregate_head(&scope)
        } else {
            (self.plain_select(&scope), Vec::new(), None)
        };
        let distinct = !aggregate && self.chance(20);
        let order_by = if depth == 0 && self.chance(40) {
            let n = select.len() as u64;
            let mut keys = Vec::new();
            let mut used = Vec::new();
            for _ in 0..=self.rng.next_below(2.min(n)) {
                let ord = 1 + self.rng.next_below(n) as i64;
                if !used.contains(&ord) {
                    used.push(ord);
                    keys.push(OrderKey { expr: AstExpr::IntLit(ord), desc: self.chance(40) });
                }
            }
            keys
        } else {
            Vec::new()
        };
        let limit = if depth == 0 && self.chance(25) {
            Some(1 + self.rng.next_below(50))
        } else {
            None
        };
        Query { distinct, select, from, where_clause, group_by, having, order_by, limit }
    }

    // ------------------------------------------------------------- FROM

    /// Build the FROM clause: a left-deep join chain of 1–3 tables with
    /// type-matched equi-join conditions (25% LEFT, for NULL padding), a
    /// two-table comma join whose equi-condition moves to WHERE, or a
    /// derived table. Returns the table refs plus the visible scope.
    fn gen_from_clause(&mut self, depth: usize) -> (Vec<TableRef>, Vec<ScopeEntry>) {
        if depth == 0 && self.chance(15) {
            return self.derived_from();
        }
        let n_tables =
            if depth > 0 { 1 } else { 1 + self.rng.next_below(3) as usize };
        let first = self.table();
        let mut scope = vec![ScopeEntry { alias: "t0".into(), cols: first.cols.clone() }];
        let mut tref = TableRef::Table { name: first.name, alias: Some("t0".into()) };
        for i in 1..n_tables {
            let next = self.table();
            let alias = format!("t{i}");
            let Some(on) = self.join_condition(&scope, &next.cols, &alias) else { break };
            let right = TableRef::Table { name: next.name.clone(), alias: Some(alias.clone()) };
            scope.push(ScopeEntry { alias, cols: next.cols });
            if i == 1 && n_tables == 2 && self.chance(12) {
                // Comma join: same equi-condition, expressed in WHERE.
                self.comma_pred = Some(on);
                return (vec![tref, right], scope);
            }
            let kind = if self.chance(25) { AstJoinKind::Left } else { AstJoinKind::Inner };
            tref = TableRef::Join { left: Box::new(tref), right: Box::new(right), kind, on };
        }
        (vec![tref], scope)
    }

    fn derived_from(&mut self) -> (Vec<TableRef>, Vec<ScopeEntry>) {
        let inner_table = self.table();
        let inner_scope =
            vec![ScopeEntry { alias: "s0".into(), cols: inner_table.cols.clone() }];
        let n_cols = (1 + self.rng.next_below(3) as usize).min(inner_table.cols.len());
        let mut select = Vec::new();
        let mut out_cols = Vec::new();
        for k in 0..n_cols {
            let (q, c) = self.pick_col(&inner_scope);
            select.push(SelectItem::Expr {
                expr: AstExpr::Column { qualifier: Some(q), name: c.name.clone() },
                alias: Some(format!("d{k}")),
            });
            out_cols.push(ColInfo {
                name: format!("d{k}"),
                dtype: c.dtype,
                samples: c.samples.clone(),
            });
        }
        let where_clause =
            if self.chance(60) { Some(self.predicate(&inner_scope)) } else { None };
        let q = Query {
            distinct: self.chance(15),
            select,
            from: vec![TableRef::Table {
                name: inner_table.name.clone(),
                alias: Some("s0".into()),
            }],
            where_clause,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        };
        let tref = TableRef::Derived { query: Box::new(q), alias: "t0".into() };
        (vec![tref], vec![ScopeEntry { alias: "t0".into(), cols: out_cols }])
    }

    /// A type-matched equi-join condition between the scope and `right`;
    /// prefers realistic foreign-key pairs (shared name suffix after '_').
    fn join_condition(
        &mut self,
        scope: &[ScopeEntry],
        right: &[ColInfo],
        right_alias: &str,
    ) -> Option<AstExpr> {
        let mut fk_pairs = Vec::new();
        let mut any_pairs = Vec::new();
        for entry in scope {
            for lc in &entry.cols {
                for rc in right {
                    if lc.dtype != rc.dtype || lc.dtype != DataType::Int {
                        continue;
                    }
                    let pair = (entry.alias.clone(), lc.name.clone(), rc.name.clone());
                    let lsuf = lc.name.rsplit('_').next().unwrap_or(&lc.name);
                    let rsuf = rc.name.rsplit('_').next().unwrap_or(&rc.name);
                    if lsuf == rsuf {
                        fk_pairs.push(pair);
                    } else {
                        any_pairs.push(pair);
                    }
                }
            }
        }
        let pool = if fk_pairs.is_empty() { any_pairs } else { fk_pairs };
        if pool.is_empty() {
            return None;
        }
        let (qual, lname, rname) =
            pool[self.rng.next_below(pool.len() as u64) as usize].clone();
        Some(AstExpr::binary(
            BinOp::Eq,
            AstExpr::Column { qualifier: Some(qual), name: lname },
            AstExpr::Column { qualifier: Some(right_alias.into()), name: rname },
        ))
    }

    // ----------------------------------------------------------- SELECT

    fn plain_select(&mut self, scope: &[ScopeEntry]) -> Vec<SelectItem> {
        let n = 1 + self.rng.next_below(4) as usize;
        let mut items = Vec::new();
        for k in 0..n {
            let expr = self.scalar(scope);
            items.push(SelectItem::Expr { expr, alias: Some(format!("c{k}")) });
        }
        items
    }

    /// Aggregate head: SELECT group cols + agg calls, GROUP BY, HAVING.
    fn aggregate_head(
        &mut self,
        scope: &[ScopeEntry],
    ) -> (Vec<SelectItem>, Vec<AstExpr>, Option<AstExpr>) {
        let n_group = self.rng.next_below(3) as usize;
        let mut group_by = Vec::new();
        let mut select = Vec::new();
        for k in 0..n_group {
            let (q, c) = self.pick_col(scope);
            let col = AstExpr::Column { qualifier: Some(q), name: c.name.clone() };
            group_by.push(col.clone());
            select.push(SelectItem::Expr { expr: col, alias: Some(format!("g{k}")) });
        }
        let n_aggs = 1 + self.rng.next_below(3) as usize;
        let mut numeric_aggs = Vec::new();
        for k in 0..n_aggs {
            let (agg, numeric) = self.agg_call(scope);
            if numeric {
                numeric_aggs.push(agg.clone());
            }
            select.push(SelectItem::Expr { expr: agg, alias: Some(format!("a{k}")) });
        }
        // HAVING compares against a small integer, so its aggregate must
        // be numeric (MIN/MAX of a string column would type-error).
        let having = if self.chance(30) {
            let lhs = if numeric_aggs.is_empty() || self.chance(50) {
                AstExpr::AggCall { func: "count".into(), distinct: false, arg: None }
            } else {
                numeric_aggs[self.rng.next_below(numeric_aggs.len() as u64) as usize].clone()
            };
            let op = *self.pick(&[BinOp::Gt, BinOp::Ge, BinOp::Lt]);
            Some(AstExpr::binary(op, lhs, AstExpr::IntLit(1 + self.rng.next_below(5) as i64)))
        } else {
            None
        };
        (select, group_by, having)
    }

    /// One aggregate call; the bool reports whether its output is numeric
    /// (callers may only compare numeric aggregates against int literals).
    fn agg_call(&mut self, scope: &[ScopeEntry]) -> (AstExpr, bool) {
        let roll = self.rng.next_below(100);
        if roll < 20 {
            return (AstExpr::AggCall { func: "count".into(), distinct: false, arg: None }, true);
        }
        if roll < 30 {
            let (q, c) = self.pick_col(scope);
            let distinct = self.chance(40);
            return (
                AstExpr::AggCall {
                    func: "count".into(),
                    distinct,
                    arg: Some(Box::new(AstExpr::Column { qualifier: Some(q), name: c.name })),
                },
                true,
            );
        }
        if roll < 65 {
            if let Some((q, c)) = self.col_of_types(scope, &[DataType::Int, DataType::Double])
            {
                let func = if self.chance(60) { "sum" } else { "avg" };
                return (
                    AstExpr::AggCall {
                        func: func.into(),
                        distinct: false,
                        arg: Some(Box::new(AstExpr::Column {
                            qualifier: Some(q),
                            name: c.name,
                        })),
                    },
                    true,
                );
            }
        }
        let (q, c) = self.pick_col(scope);
        let func = if self.chance(50) { "min" } else { "max" };
        let numeric = matches!(c.dtype, DataType::Int | DataType::Double);
        (
            AstExpr::AggCall {
                func: func.into(),
                distinct: false,
                arg: Some(Box::new(AstExpr::Column { qualifier: Some(q), name: c.name })),
            },
            numeric,
        )
    }

    /// A scalar select-list expression: mostly plain columns, sometimes
    /// arithmetic or CASE.
    fn scalar(&mut self, scope: &[ScopeEntry]) -> AstExpr {
        let roll = self.rng.next_below(100);
        if roll < 65 {
            let (q, c) = self.pick_col(scope);
            return AstExpr::Column { qualifier: Some(q), name: c.name };
        }
        if roll < 85 {
            if let Some((q, c)) = self.col_of_types(scope, &[DataType::Int, DataType::Double])
            {
                let col = AstExpr::Column { qualifier: Some(q), name: c.name.clone() };
                let op = *self.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]);
                let lit = self.literal_like(c.dtype, &c.samples);
                return AstExpr::binary(op, col, lit);
            }
        }
        // CASE WHEN pred THEN col ELSE literal END (type-matched arms).
        let (q, c) = self.pick_col(scope);
        let cond = self.predicate(scope);
        let col = AstExpr::Column { qualifier: Some(q), name: c.name.clone() };
        let else_ = self.literal_like(c.dtype, &c.samples);
        AstExpr::Case { whens: vec![(cond, col)], else_: Some(Box::new(else_)) }
    }

    // ------------------------------------------------------------ WHERE

    fn where_clause(&mut self, scope: &[ScopeEntry], depth: usize) -> AstExpr {
        let mut conjuncts = Vec::new();
        if let Some(p) = self.comma_pred.take() {
            conjuncts.push(p);
        }
        let n = 1 + self.rng.next_below(3);
        for _ in 0..n {
            conjuncts.push(self.predicate(scope));
        }
        if depth == 0 && self.chance(30) {
            conjuncts.push(self.subquery_predicate(scope));
        }
        let mut it = conjuncts.into_iter();
        let first = it.next().unwrap_or(AstExpr::IntLit(1));
        it.fold(first, |acc, p| AstExpr::binary(BinOp::And, acc, p))
    }

    /// One simple (non-subquery) predicate over the scope.
    fn predicate(&mut self, scope: &[ScopeEntry]) -> AstExpr {
        let roll = self.rng.next_below(100);
        let (q, c) = self.pick_col(scope);
        let col = AstExpr::Column { qualifier: Some(q), name: c.name.clone() };
        match () {
            // Comparison against a sampled literal.
            _ if roll < 35 => {
                let op = *self.pick(&[
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Le,
                    BinOp::Gt,
                    BinOp::Ge,
                ]);
                let lit = self.literal_like(c.dtype, &c.samples);
                AstExpr::binary(op, col, lit)
            }
            // Column-vs-column (same type).
            _ if roll < 48 => {
                if let Some((q2, c2)) = self.col_of_types(scope, &[c.dtype]) {
                    let op = *self.pick(&[BinOp::Eq, BinOp::Ne, BinOp::Lt, BinOp::Ge]);
                    let rhs = AstExpr::Column { qualifier: Some(q2), name: c2.name };
                    AstExpr::binary(op, col, rhs)
                } else {
                    let negated = self.chance(50);
                    AstExpr::IsNull { expr: Box::new(col), negated }
                }
            }
            // BETWEEN two sampled literals.
            _ if roll < 60 && c.dtype != DataType::Str && c.dtype != DataType::Bool => {
                let a = self.literal_like(c.dtype, &c.samples);
                let b = self.literal_like(c.dtype, &c.samples);
                let negated = self.chance(25);
                AstExpr::Between { expr: Box::new(col), low: Box::new(a), high: Box::new(b), negated }
            }
            // IN list of sampled literals.
            _ if roll < 72 => {
                let n = 1 + self.rng.next_below(4);
                let list =
                    (0..n).map(|_| self.literal_like(c.dtype, &c.samples)).collect();
                let negated = self.chance(30);
                AstExpr::InList { expr: Box::new(col), list, negated }
            }
            // IS [NOT] NULL — pairs with LEFT-join padding for NULL cover.
            _ if roll < 84 => {
                let negated = self.chance(50);
                AstExpr::IsNull { expr: Box::new(col), negated }
            }
            // LIKE on strings.
            _ if roll < 94 => {
                if c.dtype == DataType::Str {
                    let pat = self.like_pattern(&c.samples);
                    let negated = self.chance(30);
                    AstExpr::Like {
                        expr: Box::new(col),
                        pattern: Box::new(AstExpr::StringLit(pat)),
                        negated,
                    }
                } else {
                    let op = *self.pick(&[BinOp::Le, BinOp::Gt]);
                    let lit = self.literal_like(c.dtype, &c.samples);
                    AstExpr::binary(op, col, lit)
                }
            }
            // NOT (p OR p)
            _ => {
                let a = self.predicate(scope);
                let b = self.predicate(scope);
                AstExpr::Not(Box::new(AstExpr::binary(BinOp::Or, a, b)))
            }
        }
    }

    /// One subquery-bearing conjunct: correlated EXISTS, IN, or a scalar
    /// aggregate (correlated or not).
    fn subquery_predicate(&mut self, scope: &[ScopeEntry]) -> AstExpr {
        let inner = self.table();
        let roll = self.rng.next_below(100);
        let corr = self.corr_pair(scope, &inner);
        if roll < 40 {
            if let Some((oq, oc, ic)) = corr {
                // [NOT] EXISTS (SELECT * FROM inner s0
                //               WHERE s0.ic = outer.oc [AND local])
                let mut w = AstExpr::binary(
                    BinOp::Eq,
                    AstExpr::Column { qualifier: Some("s0".into()), name: ic },
                    AstExpr::Column { qualifier: Some(oq), name: oc },
                );
                if self.chance(40) {
                    let iscope =
                        vec![ScopeEntry { alias: "s0".into(), cols: inner.cols.clone() }];
                    w = AstExpr::binary(BinOp::And, w, self.predicate(&iscope));
                }
                let q = self.bare_query(vec![SelectItem::Wildcard], &inner.name, Some(w));
                let negated = self.chance(40);
                return AstExpr::Exists { query: Box::new(q), negated };
            }
        }
        if roll < 70 {
            // outer_col [NOT] IN (SELECT inner_col FROM inner [WHERE local])
            // — uncorrelated, as the binder requires.
            if let Some((oq, oc, ic)) = self.corr_pair(scope, &inner) {
                let iscope = vec![ScopeEntry { alias: "s0".into(), cols: inner.cols.clone() }];
                let w = if self.chance(50) { Some(self.predicate(&iscope)) } else { None };
                let item = SelectItem::Expr {
                    expr: AstExpr::Column { qualifier: Some("s0".into()), name: ic },
                    alias: None,
                };
                let q = self.bare_query(vec![item], &inner.name, w);
                let negated = self.chance(40);
                return AstExpr::InSubquery {
                    expr: Box::new(AstExpr::Column { qualifier: Some(oq), name: oc }),
                    query: Box::new(q),
                    negated,
                };
            }
        }
        // outer_col <op> (SELECT agg(x) FROM inner [WHERE s0.k = outer.k])
        let numeric = self.col_of_types(scope, &[DataType::Int, DataType::Double]);
        let inner_numeric: Vec<ColInfo> = inner
            .cols
            .iter()
            .filter(|c| matches!(c.dtype, DataType::Int | DataType::Double))
            .cloned()
            .collect();
        if let (Some((oq, oc)), false) = (numeric, inner_numeric.is_empty()) {
            let arg =
                inner_numeric[self.rng.next_below(inner_numeric.len() as u64) as usize].clone();
            let func = *self.pick(&["min", "max", "avg", "sum"]);
            let w = if self.chance(50) {
                self.corr_pair(scope, &inner).map(|(cq, cc, ci)| {
                    AstExpr::binary(
                        BinOp::Eq,
                        AstExpr::Column { qualifier: Some("s0".into()), name: ci },
                        AstExpr::Column { qualifier: Some(cq), name: cc },
                    )
                })
            } else {
                None
            };
            let item = SelectItem::Expr {
                expr: AstExpr::AggCall {
                    func: func.into(),
                    distinct: false,
                    arg: Some(Box::new(AstExpr::Column {
                        qualifier: Some("s0".into()),
                        name: arg.name,
                    })),
                },
                alias: Some("v".into()),
            };
            let q = self.bare_query(vec![item], &inner.name, w);
            let op = *self.pick(&[BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq]);
            return AstExpr::binary(
                op,
                AstExpr::Column { qualifier: Some(oq), name: oc.name },
                AstExpr::ScalarSubquery(Box::new(q)),
            );
        }
        // Fallback: a plain predicate.
        self.predicate(scope)
    }

    /// A single-table subquery body with alias `s0`.
    fn bare_query(
        &mut self,
        select: Vec<SelectItem>,
        table: &str,
        where_clause: Option<AstExpr>,
    ) -> Query {
        Query {
            distinct: false,
            select,
            from: vec![TableRef::Table { name: table.into(), alias: Some("s0".into()) }],
            where_clause,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// A type-matched (outer qualifier, outer col, inner col) triple for
    /// correlation; prefers Int columns with matching name suffixes.
    fn corr_pair(
        &mut self,
        scope: &[ScopeEntry],
        inner: &TableInfo,
    ) -> Option<(String, String, String)> {
        let mut best = Vec::new();
        let mut any = Vec::new();
        for e in scope {
            for oc in &e.cols {
                for ic in &inner.cols {
                    if oc.dtype != ic.dtype || oc.dtype != DataType::Int {
                        continue;
                    }
                    let osuf = oc.name.rsplit('_').next().unwrap_or(&oc.name);
                    let isuf = ic.name.rsplit('_').next().unwrap_or(&ic.name);
                    let t = (e.alias.clone(), oc.name.clone(), ic.name.clone());
                    if osuf == isuf {
                        best.push(t);
                    } else {
                        any.push(t);
                    }
                }
            }
        }
        let pool = if best.is_empty() { any } else { best };
        if pool.is_empty() {
            return None;
        }
        Some(pool[self.rng.next_below(pool.len() as u64) as usize].clone())
    }

    // --------------------------------------------------------- literals

    /// A literal of `dtype`, usually drawn from `samples` (sometimes
    /// perturbed so ranges are not always point lookups).
    fn literal_like(&mut self, dtype: DataType, samples: &[Datum]) -> AstExpr {
        if !samples.is_empty() && self.chance(75) {
            let s = samples[self.rng.next_below(samples.len() as u64) as usize].clone();
            match s {
                Datum::Int(v) => {
                    let delta = self.rng.next_below(20) as i64 - 10;
                    return AstExpr::IntLit(v.saturating_add(delta).max(0));
                }
                Datum::Double(v) => {
                    let v = (v.abs() * 100.0).round() / 100.0;
                    return AstExpr::NumberLit(v);
                }
                Datum::Str(s) => return AstExpr::StringLit(s.to_string()),
                Datum::Date(d) => {
                    let shifted = d + (self.rng.next_below(60) as i32) - 30;
                    return AstExpr::DateLit(Datum::Date(shifted).to_string());
                }
                Datum::Bool(_) | Datum::Null => {}
            }
        }
        match dtype {
            DataType::Int => AstExpr::IntLit(self.rng.next_below(1000) as i64),
            DataType::Double => {
                AstExpr::NumberLit((self.rng.next_below(100_000) as f64) / 100.0)
            }
            DataType::Str => AstExpr::StringLit(format!("v{}", self.rng.next_below(100))),
            DataType::Date => AstExpr::DateLit(format!(
                "199{}-{:02}-{:02}",
                2 + self.rng.next_below(7),
                1 + self.rng.next_below(12),
                1 + self.rng.next_below(28)
            )),
            DataType::Bool => AstExpr::IntLit(0),
        }
    }

    fn like_pattern(&mut self, samples: &[Datum]) -> String {
        let frag: String = samples
            .iter()
            .find_map(|d| match d {
                Datum::Str(s) if !s.is_empty() => {
                    Some(s.chars().take(1 + (s.len() % 3)).collect())
                }
                _ => None,
            })
            .unwrap_or_else(|| "a".to_string());
        match self.rng.next_below(3) {
            0 => format!("{frag}%"),
            1 => format!("%{frag}%"),
            _ => format!("%{frag}"),
        }
    }

    // ------------------------------------------------------------ scope

    fn pick_col(&mut self, scope: &[ScopeEntry]) -> (String, ColInfo) {
        let e = &scope[self.rng.next_below(scope.len() as u64) as usize];
        let c = e.cols[self.rng.next_below(e.cols.len() as u64) as usize].clone();
        (e.alias.clone(), c)
    }

    fn col_of_types(
        &mut self,
        scope: &[ScopeEntry],
        types: &[DataType],
    ) -> Option<(String, ColInfo)> {
        let mut cands = Vec::new();
        for e in scope {
            for c in &e.cols {
                if types.contains(&c.dtype) {
                    cands.push((e.alias.clone(), c.clone()));
                }
            }
        }
        if cands.is_empty() {
            return None;
        }
        Some(cands[self.rng.next_below(cands.len() as u64) as usize].clone())
    }
}
