//! Differential fuzzing of the DML write path: seeded interleaved streams
//! of INSERT/UPDATE/DELETE, reads, and topology events (kill, revive,
//! join, leave) against a write-aware reference oracle.
//!
//! The oracle is a `BTreeMap` shadow of the single fuzz table with
//! tri-state knowledge per key:
//!
//! * **known present** with an exact value — the statement that produced
//!   it was acknowledged;
//! * **unknown** — a statement touching the key failed retryably, so the
//!   engine may legally have committed some partition batches of it (the
//!   statement is atomic per partition, not across partitions);
//! * **known absent** — never inserted, or removed by an acknowledged
//!   DELETE.
//!
//! Every read must agree with the oracle on all *known* keys: a missing
//! known-present key is a lost acknowledged write, an extra known-absent
//! key is a resurrected delete, and a wrong value is a torn or stale
//! replica read. Unknown keys are unconstrained until the next
//! acknowledged statement overwrites them.
//!
//! Unlike the query battery ([`crate::sim`]), every scenario builds a
//! fresh cluster — DML mutates state, so cached clusters would leak
//! writes across seeds and break replay determinism.

use crate::oracle::{classify, ErrorClass};
use ic_core::{Cluster, ClusterConfig, NetworkConfig, SystemVariant};
use ic_net::{FaultPlan, SiteId, SplitMix64};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Keys are drawn from a small domain so upserts, targeted updates, and
/// deletes collide with earlier writes instead of spraying fresh rows.
const KEY_DOMAIN: i64 = 48;

/// One step of a DML scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmlOp {
    /// Multi-row upsert; row values are `k * 1000 + op_index`, so every
    /// acknowledged writer stamps keys with a value unique to that step.
    InsertBatch { keys: Vec<i64> },
    /// `UPDATE fz SET v = v + delta WHERE k = key`.
    UpdateKey { key: i64, delta: i64 },
    /// `DELETE FROM fz WHERE k = key`.
    DeleteKey { key: i64 },
    /// `DELETE FROM fz WHERE k < below` — a multi-partition predicate
    /// delete, the worst case for per-partition atomicity.
    DeleteBelow { below: i64 },
    /// Full-table read compared against the oracle.
    Check,
    /// Kill a live site (never the last one).
    Kill,
    /// Revive the most recently killed site.
    Revive,
    /// A fresh site joins and takes migrated replicas.
    Join,
    /// A member leaves gracefully (never below two members).
    Leave,
}

impl DmlOp {
    fn spec(&self) -> String {
        match self {
            DmlOp::InsertBatch { keys } => {
                let ks: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                format!("ins({})", ks.join(","))
            }
            DmlOp::UpdateKey { key, delta } => format!("upd({key},{delta})"),
            DmlOp::DeleteKey { key } => format!("del({key})"),
            DmlOp::DeleteBelow { below } => format!("delbelow({below})"),
            DmlOp::Check => "check".into(),
            DmlOp::Kill => "kill".into(),
            DmlOp::Revive => "revive".into(),
            DmlOp::Join => "join".into(),
            DmlOp::Leave => "leave".into(),
        }
    }
}

/// One fully seed-determined DML fuzz case.
#[derive(Debug, Clone)]
pub struct DmlScenario {
    pub seed: u64,
    pub sites: usize,
    pub ops: Vec<DmlOp>,
}

impl DmlScenario {
    /// Derive scenario `seed` from its own rng stream (domain-separated
    /// from the query-scenario stream in [`crate::sim`]).
    pub fn from_seed(seed: u64) -> DmlScenario {
        const DML_STREAM: u64 = 0x51ab_77e3_0c96_d2f1;
        let mut rng = SplitMix64::new(seed ^ DML_STREAM);
        let sites = 3 + rng.next_below(3) as usize;
        let n_ops = 16 + rng.next_below(24) as usize;
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let roll = rng.next_below(100);
            let op = if roll < 35 {
                let n = 1 + rng.next_below(6) as usize;
                let keys: Vec<i64> =
                    (0..n).map(|_| rng.next_below(KEY_DOMAIN as u64) as i64).collect();
                DmlOp::InsertBatch { keys }
            } else if roll < 50 {
                DmlOp::UpdateKey {
                    key: rng.next_below(KEY_DOMAIN as u64) as i64,
                    delta: 1 + rng.next_below(9) as i64,
                }
            } else if roll < 60 {
                DmlOp::DeleteKey { key: rng.next_below(KEY_DOMAIN as u64) as i64 }
            } else if roll < 65 {
                DmlOp::DeleteBelow { below: 1 + rng.next_below(KEY_DOMAIN as u64) as i64 }
            } else if roll < 80 {
                DmlOp::Check
            } else if roll < 86 {
                DmlOp::Kill
            } else if roll < 92 {
                DmlOp::Revive
            } else if roll < 96 {
                DmlOp::Join
            } else {
                DmlOp::Leave
            };
            ops.push(op);
        }
        DmlScenario { seed, sites, ops }
    }

    /// Compact textual form of the op stream (for failure logs).
    pub fn spec(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(DmlOp::spec).collect();
        format!("sites={} ops=[{}]", self.sites, ops.join(" "))
    }
}

/// Outcome of one DML scenario run.
#[derive(Debug, Clone)]
pub struct DmlOutcome {
    /// Deterministic digest: scenario spec + per-op ack log + final table
    /// hash. Identical across replays of the same seed.
    pub digest: String,
    /// First oracle violation, if any.
    pub disagreement: Option<String>,
}

impl DmlOutcome {
    pub fn ok(&self) -> bool {
        self.disagreement.is_none()
    }
}

/// The oracle's knowledge of one key: `Some(v)` = known present with value
/// `v`; `None` = unknown (a failed statement touched it). Keys absent from
/// the map are known absent.
type Shadow = BTreeMap<i64, Option<i64>>;

fn fresh_cluster(sites: usize) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        sites,
        backups: 1,
        variant: SystemVariant::ICPlus,
        network: NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(30)),
        max_retries: 4,
        ..ClusterConfig::test_default()
    });
    // ic-lint: allow(L001) because the fuzz DDL is a compile-time constant; failure is a harness bug
    cluster.run("CREATE TABLE fz (k BIGINT, v BIGINT, PRIMARY KEY (k))").expect("fuzz DDL");
    cluster
}

/// Read the table and compare against the shadow. Returns the sorted rows
/// on success so the caller can fold them into the digest.
fn check_read(
    cluster: &Cluster,
    shadow: &Shadow,
    ctx: &str,
    require_clean: bool,
) -> Result<Option<Vec<(i64, i64)>>, String> {
    let q = match cluster.query("SELECT k, v FROM fz ORDER BY k") {
        Ok(q) => q,
        Err(e) => {
            return match classify(&e) {
                // Under live faults a read may legitimately refuse.
                ErrorClass::Retryable | ErrorClass::Resource if !require_clean => Ok(None),
                _ => Err(format!("{ctx}: read failed: {e}")),
            };
        }
    };
    let mut found: BTreeMap<i64, i64> = BTreeMap::new();
    for r in &q.rows {
        let (Some(k), Some(v)) = (r.0[0].as_int(), r.0[1].as_int()) else {
            return Err(format!("{ctx}: non-integer row {:?}", r));
        };
        if found.insert(k, v).is_some() {
            return Err(format!("{ctx}: duplicate primary key {k}"));
        }
    }
    for (k, state) in shadow {
        match (state, found.get(k)) {
            (Some(expect), Some(got)) if expect != got => {
                return Err(format!(
                    "{ctx}: key {k} has value {got}, oracle says {expect} (stale or torn read)"
                ));
            }
            (Some(expect), None) => {
                return Err(format!(
                    "{ctx}: key {k} missing, oracle says present={expect} (lost acked write)"
                ));
            }
            _ => {}
        }
    }
    for k in found.keys() {
        if !shadow.contains_key(k) {
            return Err(format!(
                "{ctx}: key {k} present but oracle says known-absent (resurrected delete)"
            ));
        }
    }
    Ok(Some(found.into_iter().collect()))
}

/// Drive one scenario against a fresh cluster. Deterministic: the same
/// scenario yields the same digest on every run.
pub fn run_dml_scenario(scenario: &DmlScenario) -> DmlOutcome {
    let mut digest = format!("dml seed={} {}", scenario.seed, scenario.spec());
    let fail = |digest: &str, msg: String| DmlOutcome {
        digest: digest.to_string(),
        disagreement: Some(format!("{msg}\nspec: {digest}")),
    };
    let run = catch_unwind(AssertUnwindSafe(|| drive(scenario, &mut digest)));
    match run {
        Ok(Ok(())) => DmlOutcome { digest, disagreement: None },
        Ok(Err(msg)) => fail(&digest, msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            fail(&digest, format!("panicked: {msg}"))
        }
    }
}

fn drive(scenario: &DmlScenario, digest: &mut String) -> Result<(), String> {
    let cluster = fresh_cluster(scenario.sites);
    // A seeded transient crash rides along so injector-driven failure hits
    // mid-statement, not only at the scripted kill ops.
    let victim = SiteId((scenario.seed % scenario.sites as u64) as usize);
    cluster.install_faults(FaultPlan::new(scenario.seed).transient_crash(victim, 8, 40));
    let mut rng = SplitMix64::new(scenario.seed ^ 0x7a3e);
    let mut shadow: Shadow = BTreeMap::new();
    let mut killed: Vec<usize> = Vec::new();
    let mut next_site = scenario.sites;
    for (i, op) in scenario.ops.iter().enumerate() {
        let ctx = format!("op {i} ({})", op.spec());
        match op {
            DmlOp::InsertBatch { keys } => {
                let values: Vec<String> =
                    keys.iter().map(|k| format!("({k}, {})", k * 1000 + i as i64)).collect();
                let sql = format!("INSERT INTO fz (k, v) VALUES {}", values.join(", "));
                match cluster.dml(&sql) {
                    Ok(r) => {
                        if r.rows_affected != keys.len() {
                            return Err(format!(
                                "{ctx}: acked insert of {} rows reported rows_affected={}",
                                keys.len(),
                                r.rows_affected
                            ));
                        }
                        for k in keys {
                            shadow.insert(*k, Some(k * 1000 + i as i64));
                        }
                        let _ = write!(digest, " {i}:ack");
                    }
                    Err(e) => {
                        fail_taints(&e, &ctx)?;
                        for k in keys {
                            shadow.insert(*k, None);
                        }
                        let _ = write!(digest, " {i}:err");
                    }
                }
            }
            DmlOp::UpdateKey { key, delta } => {
                let sql = format!("UPDATE fz SET v = v + {delta} WHERE k = {key}");
                match cluster.dml(&sql) {
                    Ok(r) => match shadow.get(key) {
                        Some(Some(v)) => {
                            if r.rows_affected != 1 {
                                return Err(format!(
                                    "{ctx}: key known present, rows_affected={}",
                                    r.rows_affected
                                ));
                            }
                            let nv = v + delta;
                            shadow.insert(*key, Some(nv));
                        }
                        Some(None) => {} // unknown in, unknown out
                        None => {
                            if r.rows_affected != 0 {
                                return Err(format!(
                                    "{ctx}: key known absent, rows_affected={}",
                                    r.rows_affected
                                ));
                            }
                        }
                    },
                    Err(e) => {
                        fail_taints(&e, &ctx)?;
                        if let Some(state) = shadow.get_mut(key) {
                            *state = None;
                        }
                    }
                }
            }
            DmlOp::DeleteKey { key } => {
                let sql = format!("DELETE FROM fz WHERE k = {key}");
                match cluster.dml(&sql) {
                    Ok(r) => {
                        match shadow.get(key) {
                            Some(Some(_)) if r.rows_affected != 1 => {
                                return Err(format!(
                                    "{ctx}: key known present, rows_affected={}",
                                    r.rows_affected
                                ));
                            }
                            None if r.rows_affected != 0 => {
                                return Err(format!(
                                    "{ctx}: key known absent, rows_affected={}",
                                    r.rows_affected
                                ));
                            }
                            _ => {}
                        }
                        shadow.remove(key);
                    }
                    Err(e) => {
                        fail_taints(&e, &ctx)?;
                        if let Some(state) = shadow.get_mut(key) {
                            *state = None;
                        }
                    }
                }
            }
            DmlOp::DeleteBelow { below } => {
                let sql = format!("DELETE FROM fz WHERE k < {below}");
                match cluster.dml(&sql) {
                    Ok(r) => {
                        // rows_affected reports the *final* attempt only: a
                        // retried multi-partition delete legally undercounts
                        // (partitions committed by an earlier attempt report
                        // zero matches). Checkable only on a clean first
                        // attempt with every key in range known.
                        let in_range: Vec<i64> =
                            shadow.range(..*below).map(|(k, _)| *k).collect();
                        let all_known = r.retries == 0
                            && shadow.range(..*below).all(|(_, s)| s.is_some());
                        if all_known && r.rows_affected != in_range.len() {
                            return Err(format!(
                                "{ctx}: {} known rows in range, rows_affected={}",
                                in_range.len(),
                                r.rows_affected
                            ));
                        }
                        for k in in_range {
                            shadow.remove(&k);
                        }
                    }
                    Err(e) => {
                        fail_taints(&e, &ctx)?;
                        for (_, state) in shadow.range_mut(..*below) {
                            *state = None;
                        }
                    }
                }
            }
            DmlOp::Check => {
                if let Some(rows) = check_read(&cluster, &shadow, &ctx, false)? {
                    let _ = write!(digest, " {i}:rows={}", rows.len());
                }
            }
            DmlOp::Kill => {
                let members: Vec<usize> = live_members(&cluster, &killed);
                if members.len() > 1 {
                    let s = members[rng.next_below(members.len() as u64) as usize];
                    cluster.kill_site(s);
                    killed.push(s);
                }
            }
            DmlOp::Revive => {
                if let Some(s) = killed.pop() {
                    cluster.revive_site(s);
                }
            }
            DmlOp::Join => {
                cluster.join_site(next_site);
                next_site += 1;
            }
            DmlOp::Leave => {
                let members = live_members(&cluster, &killed);
                let total =
                    cluster.catalog().membership().snapshot().members().len();
                if total > 2 && members.len() > 1 {
                    let s = members[rng.next_below(members.len() as u64) as usize];
                    cluster.leave_site(s);
                }
            }
        }
    }
    // End of stream: heal everything, then the oracle must match exactly —
    // and this time a read refusal is a failure (the cluster is healthy).
    cluster.clear_faults();
    for s in killed {
        cluster.revive_site(s);
    }
    cluster.repair();
    match check_read(&cluster, &shadow, "final check", true)? {
        Some(rows) => {
            let _ = write!(digest, " final_rows={}", rows.len());
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for (k, v) in &rows {
                for b in k.to_le_bytes().iter().chain(v.to_le_bytes().iter()) {
                    h ^= u64::from(*b);
                    h = h.wrapping_mul(0x1_0000_0000_01b3);
                }
            }
            let _ = write!(digest, " final_hash={h:016x}");
            Ok(())
        }
        None => Err("final check refused on a healthy cluster".into()),
    }
}

/// A failed DML statement must at least fail *honestly*: retryable or a
/// deterministic resource verdict. Anything else is a bug.
fn fail_taints(e: &ic_core::IcError, ctx: &str) -> Result<(), String> {
    match classify(e) {
        ErrorClass::Retryable | ErrorClass::Resource => Ok(()),
        ErrorClass::Rejected | ErrorClass::Bug => {
            Err(format!("{ctx}: non-retryable DML failure: {e}"))
        }
    }
}

fn live_members(cluster: &Cluster, killed: &[usize]) -> Vec<usize> {
    cluster
        .catalog()
        .membership()
        .snapshot()
        .members()
        .iter()
        .map(|s| s.0)
        .filter(|s| !killed.contains(s))
        .collect()
}

/// Greedy delta-debugging over the op stream: repeatedly try dropping each
/// op (and halving insert batches) while the scenario still fails. Returns
/// the shrunk scenario and the number of successful shrink steps.
pub fn minimize_dml(
    scenario: &DmlScenario,
    fails: &mut dyn FnMut(&DmlScenario) -> bool,
) -> (DmlScenario, usize) {
    let mut best = scenario.clone();
    let mut steps = 0usize;
    let mut progress = true;
    while progress {
        progress = false;
        // Drop one op at a time, scanning from the end (later ops are the
        // cheapest to prove irrelevant).
        let mut i = best.ops.len();
        while i > 0 {
            i -= 1;
            let mut candidate = best.clone();
            candidate.ops.remove(i);
            if !candidate.ops.is_empty() && fails(&candidate) {
                best = candidate;
                steps += 1;
                progress = true;
            }
        }
        // Halve insert batches.
        for i in 0..best.ops.len() {
            if let DmlOp::InsertBatch { keys } = &best.ops[i] {
                if keys.len() > 1 {
                    let mut candidate = best.clone();
                    candidate.ops[i] =
                        DmlOp::InsertBatch { keys: keys[..keys.len() / 2].to_vec() };
                    if fails(&candidate) {
                        best = candidate;
                        steps += 1;
                        progress = true;
                    }
                }
            }
        }
    }
    (best, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_seed_deterministic() {
        for seed in [0u64, 7, 99] {
            let a = DmlScenario::from_seed(seed);
            let b = DmlScenario::from_seed(seed);
            assert_eq!(a.spec(), b.spec());
            assert_eq!(a.sites, b.sites);
        }
        assert_ne!(DmlScenario::from_seed(1).spec(), DmlScenario::from_seed(2).spec());
    }

    #[test]
    fn a_quiet_stream_agrees_with_the_oracle() {
        // Seed 3's stream replayed twice: agreement and digest stability.
        let scenario = DmlScenario::from_seed(3);
        let a = run_dml_scenario(&scenario);
        assert!(a.ok(), "disagreement: {:?}", a.disagreement);
        let b = run_dml_scenario(&scenario);
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn minimizer_shrinks_an_injected_failure() {
        // Injected bug: "any scenario containing a DeleteBelow fails". The
        // minimizer must strip everything else.
        let scenario = DmlScenario {
            seed: 0,
            sites: 3,
            ops: vec![
                DmlOp::InsertBatch { keys: vec![1, 2, 3, 4] },
                DmlOp::Check,
                DmlOp::DeleteBelow { below: 9 },
                DmlOp::Kill,
                DmlOp::Check,
            ],
        };
        let mut fails = |s: &DmlScenario| {
            s.ops.iter().any(|o| matches!(o, DmlOp::DeleteBelow { .. }))
        };
        let (small, steps) = minimize_dml(&scenario, &mut fails);
        assert!(steps >= 4, "only {steps} shrink steps");
        assert_eq!(small.ops, vec![DmlOp::DeleteBelow { below: 9 }]);
    }
}
