//! Independent reference evaluator — oracle 2's "naive operators" side.
//!
//! Evaluates a bound [`LogicalPlan`] row-at-a-time over the catalog's full
//! row sets, sharing *no* code with the execution engine beyond the scalar
//! [`Expr::eval`] kernel and the [`Accumulator`] state machines (which the
//! per-operator tests already pin down independently). Joins are
//! nested-loop, aggregation is a [`BTreeMap`] over materialized group
//! keys, sorting is a stable sort on the [`Datum`] total order — the
//! simplest possible semantics, deliberately unlike the engine's hash
//! joins, two-phase aggregates, and distributed fragments.
//!
//! A cumulative row budget caps intermediate materialization so a
//! generated cross-product cannot wedge the fuzzer; blowing it returns
//! [`IcError::MemoryLimit`], which the oracle treats as "reference
//! unavailable" rather than a disagreement.

use ic_common::agg::Accumulator;
use ic_common::{Datum, IcError, IcResult, Row};
use ic_plan::ops::{JoinKind, LogicalPlan, RelOp};
use ic_storage::Catalog;
use std::collections::BTreeMap;

/// Default cumulative row budget (rows materialized across all operators).
pub const DEFAULT_ROW_BUDGET: u64 = 3_000_000;

/// Evaluate `plan` against the base tables in `catalog`.
pub fn eval_plan(plan: &LogicalPlan, catalog: &Catalog) -> IcResult<Vec<Row>> {
    let mut r = Reference { catalog, remaining: DEFAULT_ROW_BUDGET };
    r.rows(plan)
}

struct Reference<'a> {
    catalog: &'a Catalog,
    remaining: u64,
}

/// Collect `(left_col, right_col)` pairs from `Col = Col` conjuncts of a
/// join condition, with `left_col` below and `right_col` at/above the
/// left input's arity.
fn equi_key_cols(on: &ic_common::Expr, left_arity: usize) -> Vec<(usize, usize)> {
    use ic_common::{BinOp, Expr};
    fn walk(e: &Expr, left_arity: usize, out: &mut Vec<(usize, usize)>) {
        match e {
            Expr::Binary { op: BinOp::And, left, right } => {
                walk(left, left_arity, out);
                walk(right, left_arity, out);
            }
            Expr::Binary { op: BinOp::Eq, left, right } => {
                if let (Expr::Col(a), Expr::Col(b)) = (left.as_ref(), right.as_ref()) {
                    if *a < left_arity && *b >= left_arity {
                        out.push((*a, *b));
                    } else if *b < left_arity && *a >= left_arity {
                        out.push((*b, *a));
                    }
                }
            }
            _ => {}
        }
    }
    let mut out = Vec::new();
    walk(on, left_arity, &mut out);
    out
}

impl Reference<'_> {
    fn charge(&mut self, n: usize) -> IcResult<()> {
        let n = n as u64;
        if self.remaining < n {
            return Err(IcError::MemoryLimit { limit_rows: DEFAULT_ROW_BUDGET });
        }
        self.remaining -= n;
        Ok(())
    }

    fn rows(&mut self, plan: &LogicalPlan) -> IcResult<Vec<Row>> {
        match &plan.op {
            RelOp::Scan { table, name, .. } => {
                let data = self.catalog.table_data(*table).ok_or_else(|| {
                    IcError::Internal(format!("reference: no data for table '{name}'"))
                })?;
                let rows = data.all_rows();
                self.charge(rows.len())?;
                Ok(rows)
            }
            RelOp::Values { rows, .. } => {
                self.charge(rows.len())?;
                Ok(rows.clone())
            }
            RelOp::Filter { input, predicate } => {
                let mut out = Vec::new();
                for row in self.rows(input)? {
                    if predicate.eval_filter(&row)? {
                        out.push(row);
                    }
                }
                self.charge(out.len())?;
                Ok(out)
            }
            RelOp::Project { input, exprs, .. } => {
                let mut out = Vec::new();
                for row in self.rows(input)? {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        vals.push(e.eval(&row)?);
                    }
                    out.push(Row(vals));
                }
                self.charge(out.len())?;
                Ok(out)
            }
            RelOp::Join { left, right, kind, on, .. } => {
                let lrows = self.rows(left)?;
                let rrows = self.rows(right)?;
                let left_arity = left.schema.fields().len();
                let right_arity = right.schema.fields().len();
                // Index the right side on any `Col = Col` equi-conjuncts so
                // a candidate list replaces the full O(n²) inner loop. Every
                // candidate is still checked against the complete `on`
                // predicate row-at-a-time, so the index only prunes pairs
                // the predicate would reject anyway (the Datum total order
                // collates cross-type numeric equals together, and NULL
                // keys are rejected by the predicate re-check).
                let keys = equi_key_cols(on, left_arity);
                let mut index: BTreeMap<Vec<Datum>, Vec<usize>> = BTreeMap::new();
                if !keys.is_empty() {
                    for (ri, rrow) in rrows.iter().enumerate() {
                        let k: Vec<Datum> = keys
                            .iter()
                            .map(|&(_, rc)| rrow.0[rc - left_arity].clone())
                            .collect();
                        index.entry(k).or_default().push(ri);
                    }
                }
                let all: Vec<usize> = (0..rrows.len()).collect();
                let mut out = Vec::new();
                for lrow in &lrows {
                    let candidates: &[usize] = if keys.is_empty() {
                        &all
                    } else {
                        let k: Vec<Datum> =
                            keys.iter().map(|&(lc, _)| lrow.0[lc].clone()).collect();
                        index.get(&k).map(|v| v.as_slice()).unwrap_or(&[])
                    };
                    let mut matched = false;
                    for &ri in candidates {
                        let rrow = &rrows[ri];
                        let mut joined = lrow.0.clone();
                        joined.extend(rrow.0.iter().cloned());
                        let joined = Row(joined);
                        if on.eval_filter(&joined)? {
                            matched = true;
                            match kind {
                                JoinKind::Inner | JoinKind::Left => {
                                    self.charge(1)?;
                                    out.push(joined);
                                }
                                // Semi emits the left row once on first
                                // match; Anti emits only on zero matches.
                                JoinKind::Semi => break,
                                JoinKind::Anti => break,
                            }
                        }
                    }
                    match kind {
                        JoinKind::Left if !matched => {
                            let mut padded = lrow.0.clone();
                            padded.extend((0..right_arity).map(|_| Datum::Null));
                            self.charge(1)?;
                            out.push(Row(padded));
                        }
                        JoinKind::Semi if matched => {
                            self.charge(1)?;
                            out.push(lrow.clone());
                        }
                        JoinKind::Anti if !matched => {
                            self.charge(1)?;
                            out.push(lrow.clone());
                        }
                        _ => {}
                    }
                }
                Ok(out)
            }
            RelOp::Aggregate { input, group, aggs } => {
                let in_rows = self.rows(input)?;
                let mut groups: BTreeMap<Vec<Datum>, Vec<Accumulator>> = BTreeMap::new();
                for row in &in_rows {
                    let key: Vec<Datum> =
                        group.iter().map(|&g| row.0[g].clone()).collect();
                    let accs = groups.entry(key).or_insert_with(|| {
                        aggs.iter().map(|a| Accumulator::new(a.func)).collect()
                    });
                    for (acc, call) in accs.iter_mut().zip(aggs) {
                        let v = match &call.arg {
                            Some(e) => e.eval(row)?,
                            None => Datum::Int(1), // COUNT(*)
                        };
                        acc.update(v)?;
                    }
                }
                // Global aggregate over empty input still emits one row
                // (COUNT(*) = 0, SUM = NULL, ...).
                if groups.is_empty() && group.is_empty() {
                    groups.insert(
                        Vec::new(),
                        aggs.iter().map(|a| Accumulator::new(a.func)).collect(),
                    );
                }
                let mut out = Vec::new();
                for (key, accs) in groups {
                    let mut vals = key;
                    vals.extend(accs.iter().map(|a| a.finish()));
                    out.push(Row(vals));
                }
                self.charge(out.len())?;
                Ok(out)
            }
            RelOp::Sort { input, keys } => {
                let mut rows = self.rows(input)?;
                rows.sort_by(|a, b| {
                    for k in keys {
                        let ord = a.0[k.col].cmp(&b.0[k.col]);
                        let ord = if k.desc { ord.reverse() } else { ord };
                        if !ord.is_eq() {
                            return ord;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                Ok(rows)
            }
            RelOp::Limit { input, fetch, offset } => {
                let rows = self.rows(input)?;
                let it = rows.into_iter().skip(*offset as usize);
                Ok(match fetch {
                    Some(n) => it.take(*n as usize).collect(),
                    None => it.collect(),
                })
            }
        }
    }
}
