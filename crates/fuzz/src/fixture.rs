//! Minimal-reproducer fixtures (`tests/regressions/*.fix`).
//!
//! A fixture is a small `key=value` text file capturing everything needed
//! to replay one scenario byte-for-byte: the bench schema, data seed and
//! scale factor, cluster shape, fault-schedule spec, and the SQL text.
//! `#` lines are comments (provenance: the finding seed, the bug it
//! reproduced). Fixtures are replayed through the full differential
//! battery by `tests/regressions.rs` on every `cargo test`, so a fixed
//! bug stays fixed.

use crate::sim::{BenchSchema, Env, Outcome, Scenario, DATA_SEED, DATA_SF};
use ic_net::FaultPlan;
use ic_sql::ast::Statement;
use ic_sql::parse_sql;

#[derive(Debug, Clone)]
pub struct Fixture {
    /// Free-form provenance lines, emitted as `#` comments.
    pub notes: Vec<String>,
    pub seed: u64,
    pub schema: BenchSchema,
    pub sites: usize,
    pub backups: usize,
    pub lease_pressure: bool,
    pub run_icplusm: bool,
    pub faults: Option<FaultPlan>,
    pub sql: String,
}

impl Fixture {
    pub fn from_scenario(s: &Scenario, notes: &[String]) -> Fixture {
        Fixture {
            notes: notes.to_vec(),
            seed: s.seed,
            schema: s.schema,
            sites: s.sites,
            backups: s.backups,
            lease_pressure: s.lease_pressure,
            run_icplusm: s.run_icplusm,
            faults: s.faults.clone(),
            sql: s.sql(),
        }
    }

    /// Render in the `.fix` format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in &self.notes {
            out.push_str("# ");
            out.push_str(n);
            out.push('\n');
        }
        out.push_str(&format!("seed={}\n", self.seed));
        out.push_str(&format!("schema={}\n", self.schema.as_str()));
        out.push_str(&format!("data_seed={DATA_SEED}\n"));
        out.push_str(&format!("sf={DATA_SF}\n"));
        out.push_str(&format!("sites={}\n", self.sites));
        out.push_str(&format!("backups={}\n", self.backups));
        out.push_str(&format!("pressure={}\n", self.lease_pressure));
        out.push_str(&format!("icplusm={}\n", self.run_icplusm));
        out.push_str(&format!(
            "faults={}\n",
            self.faults.as_ref().map(FaultPlan::to_spec).unwrap_or_else(|| "none".into())
        ));
        out.push_str(&format!("sql={}\n", self.sql));
        out.push_str("expect=agree\n");
        out
    }

    /// Parse the `.fix` format. Rejects fixtures recorded against a
    /// different data seed or scale factor — they would replay against
    /// the wrong rows and prove nothing.
    pub fn parse(text: &str) -> Result<Fixture, String> {
        let mut notes = Vec::new();
        let mut kv = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('#') {
                notes.push(rest.trim().to_string());
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| format!("fixture line is not key=value: '{line}'"))?;
            kv.insert(k.trim().to_string(), v.trim().to_string());
        }
        let get = |k: &str| {
            kv.get(k).cloned().ok_or_else(|| format!("fixture missing key '{k}'"))
        };
        let data_seed: u64 =
            get("data_seed")?.parse().map_err(|e| format!("bad data_seed: {e}"))?;
        if data_seed != DATA_SEED {
            return Err(format!(
                "fixture recorded against data_seed={data_seed}, runner uses {DATA_SEED}"
            ));
        }
        let sf: f64 = get("sf")?.parse().map_err(|e| format!("bad sf: {e}"))?;
        if sf != DATA_SF {
            return Err(format!("fixture recorded against sf={sf}, runner uses {DATA_SF}"));
        }
        let faults = match get("faults")?.as_str() {
            "none" => None,
            spec => Some(FaultPlan::parse_spec(spec)?),
        };
        match get("expect")?.as_str() {
            "agree" => {}
            other => return Err(format!("unsupported expect '{other}'")),
        }
        Ok(Fixture {
            notes,
            seed: get("seed")?.parse().map_err(|e| format!("bad seed: {e}"))?,
            schema: BenchSchema::parse(&get("schema")?)?,
            sites: get("sites")?.parse().map_err(|e| format!("bad sites: {e}"))?,
            backups: get("backups")?.parse().map_err(|e| format!("bad backups: {e}"))?,
            lease_pressure: get("pressure")?
                .parse()
                .map_err(|e| format!("bad pressure: {e}"))?,
            run_icplusm: get("icplusm")?
                .parse()
                .map_err(|e| format!("bad icplusm: {e}"))?,
            faults,
            sql: get("sql")?,
        })
    }

    /// Rebuild the scenario (parses the SQL text back into the AST).
    pub fn to_scenario(&self) -> Result<Scenario, String> {
        let stmt =
            parse_sql(&self.sql).map_err(|e| format!("fixture SQL failed to parse: {e}"))?;
        let Statement::Query(query) = stmt else {
            return Err("fixture SQL is not a SELECT".into());
        };
        Ok(Scenario {
            seed: self.seed,
            schema: self.schema,
            sites: self.sites,
            backups: self.backups,
            query,
            faults: self.faults.clone(),
            lease_pressure: self.lease_pressure,
            run_icplusm: self.run_icplusm,
        })
    }

    /// Replay through the full differential battery.
    pub fn replay(&self, env: &mut Env) -> Result<Outcome, String> {
        let scenario = self.to_scenario()?;
        Ok(crate::sim::run_scenario(env, &scenario))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let fx = Fixture {
            notes: vec!["found by seed 52".into()],
            seed: 52,
            schema: BenchSchema::Tpch,
            sites: 3,
            backups: 1,
            lease_pressure: true,
            run_icplusm: true,
            faults: Some(FaultPlan::new(7).crash(ic_net::SiteId(1), 2)),
            sql: "SELECT count(*) FROM region".into(),
        };
        let text = fx.render();
        let back = Fixture::parse(&text).expect("parse");
        assert_eq!(back.render(), text);
        assert_eq!(back.seed, 52);
        assert_eq!(back.sites, 3);
        assert!(back.faults.is_some());
    }

    #[test]
    fn rejects_wrong_data_generation() {
        let fx = Fixture {
            notes: vec![],
            seed: 0,
            schema: BenchSchema::Ssb,
            sites: 2,
            backups: 1,
            lease_pressure: false,
            run_icplusm: false,
            faults: None,
            sql: "SELECT 1 FROM part".into(),
        };
        let text = fx.render().replace("data_seed=42", "data_seed=43");
        assert!(Fixture::parse(&text).is_err());
    }
}
