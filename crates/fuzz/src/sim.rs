//! Deterministic whole-cluster simulation: one `u64` seed controls the
//! data, the query, the fault schedule, and the lease-pressure timing.
//!
//! [`Scenario::from_seed`] derives every input of one fuzz case from the
//! seed via a private [`SplitMix64`] stream; [`run_scenario`] drives the
//! case through the full differential battery:
//!
//! 1. local bind + [`reference`](crate::reference) evaluation (oracle 2),
//! 2. fault-free runs on a 1-site cluster (oracle 3 baseline) and on the
//!    N-site cluster under the `IC` (unoptimized), `ICPlus`, and
//!    (sometimes) `ICPlusM` variants (oracle 1),
//! 3. a faulted N-site run under the seed-derived [`FaultPlan`] and
//!    optional governor lease pressure, which must either agree with the
//!    reference or refuse with a retryable/terminal error.
//!
//! Every engine call runs under `catch_unwind`: a panic is a
//! disagreement, never a crash of the harness. The scenario digest
//! (inputs + canonical reference result) is deterministic, so replaying a
//! seed twice must produce byte-identical digests — the fuzzer checks
//! this on a sample of seeds each run.

use crate::gen::{generate_query, SchemaInfo};
use crate::oracle::{classify, compare_limited, compare_rows, ErrorClass};
use crate::reference;
use ic_core::{Cluster, ClusterConfig, NetworkConfig, SystemVariant};
use ic_net::{FaultPlan, SiteId, SplitMix64};
use ic_sql::ast::{Query, Statement};
use ic_sql::{bind_statement, parse_sql, unparse};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

/// Scale factor for the bench data — small enough that a scenario runs in
/// milliseconds, large enough that joins and aggregates see real fan-out.
pub const DATA_SF: f64 = 0.002;
/// Seed of the bench data generator. Fixed: the scenario seed varies the
/// *query and schedule*, not the data (fixtures stay valid across runs).
pub const DATA_SEED: u64 = 42;

/// Which bench schema a scenario runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenchSchema {
    Tpch,
    Ssb,
}

impl BenchSchema {
    pub fn as_str(&self) -> &'static str {
        match self {
            BenchSchema::Tpch => "tpch",
            BenchSchema::Ssb => "ssb",
        }
    }

    pub fn parse(s: &str) -> Result<BenchSchema, String> {
        match s {
            "tpch" => Ok(BenchSchema::Tpch),
            "ssb" => Ok(BenchSchema::Ssb),
            other => Err(format!("unknown schema '{other}' (expected tpch|ssb)")),
        }
    }
}

/// One fully-determined fuzz case.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub seed: u64,
    pub schema: BenchSchema,
    pub sites: usize,
    pub backups: usize,
    pub query: Query,
    pub faults: Option<FaultPlan>,
    /// Hold a hog lease over most of the governor pool during the faulted
    /// run, so revocation paths fire.
    pub lease_pressure: bool,
    /// Also run the multithreaded `ICPlusM` variant in the battery.
    pub run_icplusm: bool,
}

impl Scenario {
    /// Derive every input of scenario `seed` from its own rng stream.
    pub fn from_seed(seed: u64, env: &mut Env) -> Scenario {
        // Domain-separation constant so the scenario stream never
        // collides with FaultPlan::random's use of the raw seed.
        const SCENARIO_STREAM: u64 = 0x8f0c_3b2d_9e15_6a47;
        let mut rng = SplitMix64::new(seed ^ SCENARIO_STREAM);
        let schema =
            if rng.next_below(2) == 0 { BenchSchema::Tpch } else { BenchSchema::Ssb };
        let sites = 2 + rng.next_below(3) as usize;
        let query = generate_query(&mut rng, env.schema_info(schema));
        let fault_roll = rng.next_below(100);
        let fault_seed = rng.next_u64();
        let faults = if fault_roll < 30 {
            None
        } else if fault_roll < 80 {
            Some(FaultPlan::random(fault_seed, sites, 60))
        } else {
            // Hard case: one non-coordinator site dead from the first tick.
            let victim = 1 + (fault_seed as usize) % (sites - 1);
            Some(FaultPlan::new(fault_seed).crash(SiteId(victim), 1))
        };
        let lease_pressure = rng.next_below(100) < 15;
        let run_icplusm = rng.next_below(100) < 50;
        Scenario {
            seed,
            schema,
            sites,
            backups: 1,
            query,
            faults,
            lease_pressure,
            run_icplusm,
        }
    }

    /// The scenario's query rendered back to SQL.
    pub fn sql(&self) -> String {
        unparse(&self.query)
    }
}

/// Cached clusters + schema snapshots shared across scenarios. Building a
/// loaded cluster costs ~100ms; the cache bounds that to one build per
/// (schema, sites, variant) triple.
pub struct Env {
    clusters: HashMap<(BenchSchema, usize, SystemVariant), Arc<Cluster>>,
    schemas: HashMap<BenchSchema, SchemaInfo>,
}

impl Default for Env {
    fn default() -> Self {
        Self::new()
    }
}

impl Env {
    pub fn new() -> Env {
        Env { clusters: HashMap::new(), schemas: HashMap::new() }
    }

    /// The generator's snapshot of `schema` (built once per schema).
    pub fn schema_info(&mut self, schema: BenchSchema) -> &SchemaInfo {
        if !self.schemas.contains_key(&schema) {
            let cluster = self.cluster(schema, 1, SystemVariant::ICPlus);
            let info = SchemaInfo::from_catalog(cluster.catalog());
            self.schemas.insert(schema, info);
        }
        &self.schemas[&schema]
    }

    /// A loaded cluster for (schema, sites, variant); `sites == 1` is the
    /// oracle-3 baseline and carries no backups.
    pub fn cluster(
        &mut self,
        schema: BenchSchema,
        sites: usize,
        variant: SystemVariant,
    ) -> Arc<Cluster> {
        let key = (schema, sites, variant);
        if let Some(c) = self.clusters.get(&key) {
            return Arc::clone(c);
        }
        // Variants share the loaded catalog of the ICPlus cluster.
        let cluster = if variant != SystemVariant::ICPlus {
            let base = self.cluster(schema, sites, SystemVariant::ICPlus);
            Arc::new(base.with_variant(variant))
        } else {
            let config = ClusterConfig {
                sites,
                backups: if sites > 1 { 1 } else { 0 },
                variant,
                network: NetworkConfig::instant(),
                exec_timeout: Some(Duration::from_secs(60)),
                memory_limit_rows: 20_000_000,
                // Force multi-lane morsel execution with tiny morsels:
                // every query in the battery exercises work stealing and
                // the parallel operators, regardless of host core count.
                // The oracles compare unordered (or LIMIT-count only), so
                // nondeterministic lane interleaving is fine.
                worker_threads: 3,
                morsel_rows: 512,
                ..ClusterConfig::default()
            };
            let cluster = Cluster::new(config);
            let (ddl, index_ddl, data) = match schema {
                BenchSchema::Tpch => (
                    ic_benchdata::tpch::DDL,
                    ic_benchdata::tpch::INDEX_DDL,
                    ic_benchdata::tpch::generate(DATA_SF, DATA_SEED),
                ),
                BenchSchema::Ssb => (
                    ic_benchdata::ssb::DDL,
                    ic_benchdata::ssb::INDEX_DDL,
                    ic_benchdata::ssb::generate(DATA_SF, DATA_SEED),
                ),
            };
            for stmt in ddl.iter().chain(index_ddl) {
                // ic-lint: allow(L001) because the embedded bench DDL is a compile-time constant; failure is a fixture bug, not a runtime condition
                cluster.run(stmt).expect("bench DDL must load");
            }
            for t in data {
                // ic-lint: allow(L001) because the generated bench rows are deterministic for a fixed seed; failure is a fixture bug
                cluster.insert(t.name, t.rows).expect("bench data must load");
            }
            // ic-lint: allow(L001) because analyze over freshly loaded constant tables cannot fail unless the fixture itself is broken
            cluster.analyze_all().expect("analyze must succeed");
            Arc::new(cluster)
        };
        self.clusters.insert(key, Arc::clone(&cluster));
        cluster
    }
}

/// What one engine run produced.
enum EngineOutcome {
    Rows(Vec<ic_core::Row>),
    Error(ic_core::IcError),
    Panic(String),
}

fn run_engine(cluster: &Cluster, client: u64, sql: &str) -> EngineOutcome {
    let res = catch_unwind(AssertUnwindSafe(|| cluster.query_as(client, sql)));
    match res {
        Ok(Ok(qr)) => EngineOutcome::Rows(qr.rows),
        Ok(Err(e)) => EngineOutcome::Error(e),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            EngineOutcome::Panic(msg)
        }
    }
}

/// The result of one scenario run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Deterministic digest of the scenario inputs + canonical reference
    /// result; identical across replays of the same seed.
    pub digest: String,
    /// First oracle violation, if any.
    pub disagreement: Option<String>,
}

impl Outcome {
    pub fn ok(&self) -> bool {
        self.disagreement.is_none()
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Drive `scenario` through the full differential battery.
pub fn run_scenario(env: &mut Env, scenario: &Scenario) -> Outcome {
    let sql = scenario.sql();
    let fault_spec = scenario.faults.as_ref().map(FaultPlan::to_spec);
    let mut digest = format!(
        "seed={} schema={} sites={} backups={} pressure={} sql={} faults={}",
        scenario.seed,
        scenario.schema.as_str(),
        scenario.sites,
        scenario.backups,
        scenario.lease_pressure,
        sql,
        fault_spec.as_deref().unwrap_or("none"),
    );
    let fail = |digest: &str, msg: String| Outcome {
        digest: digest.to_string(),
        disagreement: Some(msg),
    };

    // --- Local bind + reference evaluation (oracle 2's trusted side).
    let nsite = env.cluster(scenario.schema, scenario.sites, SystemVariant::ICPlus);
    let bound = (|| {
        let stmt = parse_sql(&sql)?;
        let Statement::Query(q) = stmt else {
            return Err(ic_core::IcError::Internal("generator emitted non-query".into()));
        };
        bind_statement(&q, nsite.catalog())
    })();
    let bound = match bound {
        Ok(b) => b,
        Err(e) => {
            // The generator stays inside the supported dialect; a local
            // rejection is a generator/dialect gap worth surfacing.
            return fail(&digest, format!("generated SQL failed to bind: {e}\nsql: {sql}"));
        }
    };
    let reference = match reference::eval_plan(&bound.plan, nsite.catalog()) {
        Ok(rows) => Some(rows),
        Err(ic_core::IcError::MemoryLimit { .. }) => None, // budget blown: engines-only
        Err(e) => {
            return fail(&digest, format!("reference evaluation failed: {e}\nsql: {sql}"));
        }
    };
    match &reference {
        Some(rows) => {
            let mut keys: Vec<String> =
                rows.iter().map(|r| format!("{r:?}")).collect();
            keys.sort();
            digest.push_str(&format!(
                " ref_rows={} ref_hash={:016x}",
                rows.len(),
                fnv1a(&keys.join("\n"))
            ));
        }
        None => digest.push_str(" ref=unavailable"),
    }

    let limit = scenario.query.limit;
    let client = scenario.seed % 7;

    // --- Fault-free battery: 1-site baseline + N-site variants.
    let one_site = env.cluster(scenario.schema, 1, SystemVariant::ICPlus);
    let mut variants: Vec<(String, Arc<Cluster>)> = vec![
        ("1site/ICPlus".into(), one_site),
        (
            format!("{}site/IC", scenario.sites),
            env.cluster(scenario.schema, scenario.sites, SystemVariant::IC),
        ),
        (format!("{}site/ICPlus", scenario.sites), Arc::clone(&nsite)),
    ];
    if scenario.run_icplusm {
        variants.push((
            format!("{}site/ICPlusM", scenario.sites),
            env.cluster(scenario.schema, scenario.sites, SystemVariant::ICPlusM),
        ));
    }

    // The baseline every engine result is compared against: the reference
    // rows when available, else the first successful engine result.
    let mut baseline: Option<(String, Vec<ic_core::Row>)> =
        reference.as_ref().map(|r| ("reference".to_string(), r.clone()));

    for (label, cluster) in &variants {
        match run_engine(cluster, client, &sql) {
            EngineOutcome::Rows(rows) => {
                if let Some((base_label, base_rows)) = &baseline {
                    let cmp = if base_label == "reference" {
                        compare_limited(base_rows, &rows, limit)
                    } else if limit.is_some() {
                        // Engine-vs-engine under LIMIT: counts only.
                        if base_rows.len() == rows.len() {
                            Ok(())
                        } else {
                            Err(format!(
                                "row count {} vs {}",
                                base_rows.len(),
                                rows.len()
                            ))
                        }
                    } else {
                        compare_rows(base_rows, &rows)
                    };
                    if let Err(msg) = cmp {
                        return fail(
                            &digest,
                            format!("{label} disagrees with {base_label}: {msg}\nsql: {sql}"),
                        );
                    }
                } else {
                    baseline = Some((label.clone(), rows));
                }
            }
            EngineOutcome::Error(e) => match classify(&e) {
                // No faults installed: refusing to answer is a bug.
                ErrorClass::Retryable | ErrorClass::Rejected | ErrorClass::Bug => {
                    return fail(
                        &digest,
                        format!("{label} failed on a clean cluster: {e}\nsql: {sql}"),
                    );
                }
                // Budget verdicts are per-variant legitimate (IC's plans
                // really are worse); skip the comparison.
                ErrorClass::Resource => {}
            },
            EngineOutcome::Panic(msg) => {
                return fail(&digest, format!("{label} panicked: {msg}\nsql: {sql}"));
            }
        }
    }

    // --- Faulted run (oracle 3): N-site ICPlus under the seed's schedule
    //     and optional lease pressure. Must agree or refuse cleanly.
    if let Some(plan) = &scenario.faults {
        let cluster = Arc::clone(&nsite);
        cluster.install_faults(plan.clone());
        let hog = if scenario.lease_pressure {
            let pool = Arc::clone(cluster.governor().pool());
            let lease = pool.lease(u64::MAX);
            // Grab ~80% of the pool so concurrent grants trigger the
            // governor's revocation path.
            let _ = lease.reserve(pool.capacity() * 4 / 5);
            Some(lease)
        } else {
            None
        };
        let outcome = run_engine(&cluster, client, &sql);
        drop(hog);
        cluster.clear_faults();
        match outcome {
            EngineOutcome::Rows(rows) => {
                if let Some((base_label, base_rows)) = &baseline {
                    let cmp = if base_label == "reference" {
                        compare_limited(base_rows, &rows, limit)
                    } else if limit.is_some() {
                        if base_rows.len() == rows.len() {
                            Ok(())
                        } else {
                            Err(format!("row count {} vs {}", base_rows.len(), rows.len()))
                        }
                    } else {
                        compare_rows(base_rows, &rows)
                    };
                    if let Err(msg) = cmp {
                        return fail(
                            &digest,
                            format!(
                                "faulted run returned wrong rows vs {base_label}: {msg}\n\
                                 faults: {}\nsql: {sql}",
                                fault_spec.as_deref().unwrap_or("none")
                            ),
                        );
                    }
                }
            }
            // Under faults any retryable/terminal refusal is legitimate.
            EngineOutcome::Error(e) => match classify(&e) {
                ErrorClass::Retryable | ErrorClass::Resource => {}
                ErrorClass::Rejected | ErrorClass::Bug => {
                    return fail(
                        &digest,
                        format!(
                            "faulted run failed with a non-retryable error: {e}\n\
                             faults: {}\nsql: {sql}",
                            fault_spec.as_deref().unwrap_or("none")
                        ),
                    );
                }
            },
            EngineOutcome::Panic(msg) => {
                return fail(
                    &digest,
                    format!(
                        "faulted run panicked: {msg}\nfaults: {}\nsql: {sql}",
                        fault_spec.as_deref().unwrap_or("none")
                    ),
                );
            }
        }
    }

    Outcome { digest, disagreement: None }
}
