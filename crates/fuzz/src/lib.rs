//! Differential SQL fuzzing + deterministic whole-cluster simulation.
//!
//! One `u64` seed deterministically controls everything about a scenario:
//! the bench schema and data, the generated query ([`gen`]), the fault
//! schedule and lease-pressure timing ([`sim`]), and the failover jitter
//! inside the cluster. Three differential oracles ([`oracle`]) must agree:
//!
//! 1. **optimized vs. unoptimized plans** — the `IC` variant (heuristics
//!    off) against `ICPlus`/`ICPlusM`;
//! 2. **kernel vs. naive operators** — the engine against an independent
//!    row-at-a-time reference evaluator ([`reference`]);
//! 3. **1-site vs. N-site clusters** — distributed execution under fault
//!    and revocation interleavings must agree with the single-site answer
//!    or fail with a retryable/terminal [`ic_common::IcError`], never
//!    return wrong results or panic.
//!
//! On disagreement, [`minimize`] shrinks the query AST and fault schedule
//! to a minimal reproducer, emitted as a self-contained fixture
//! ([`fixture`]) that replays byte-identically from its recorded inputs.
//!
//! A fourth, write-aware oracle ([`dml`]) replays seeded interleaved
//! INSERT/UPDATE/DELETE streams with topology churn against a `BTreeMap`
//! shadow of the table, checking that no acknowledged write is ever lost,
//! no delete resurrects, and no read observes a torn value. DML scenarios
//! run on fresh (never cached) clusters and have their own greedy op-list
//! minimizer ([`minimize_dml`]).

pub mod dml;
pub mod fixture;
pub mod gen;
pub mod minimize;
pub mod oracle;
pub mod reference;
pub mod sim;

pub use dml::{minimize_dml, run_dml_scenario, DmlOp, DmlOutcome, DmlScenario};
pub use fixture::Fixture;
pub use gen::{generate_query, SchemaInfo};
pub use minimize::minimize;
pub use sim::{run_scenario, BenchSchema, Env, Outcome, Scenario};
