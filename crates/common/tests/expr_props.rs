//! Property tests for the expression layer: total evaluation, algebraic
//! helper round-trips, LIKE against a reference matcher, date arithmetic,
//! and Datum ordering/hashing laws.

use ic_common::agg::{Accumulator, AggFunc};
use ic_common::{dates, BinOp, Datum, Expr, Row};
use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn arb_datum() -> impl Strategy<Value = Datum> {
    prop_oneof![
        Just(Datum::Null),
        any::<bool>().prop_map(Datum::Bool),
        (-1000i64..1000).prop_map(Datum::Int),
        (-1000i64..1000).prop_map(|v| Datum::Double(v as f64 / 8.0)),
        "[a-z]{0,6}".prop_map(Datum::str),
        (0i32..20000).prop_map(Datum::Date),
    ]
}

fn arb_row() -> impl Strategy<Value = Row> {
    proptest::collection::vec(arb_datum(), 4..=4).prop_map(Row)
}

/// Random expressions over a 4-column row. Comparisons may be ill-typed
/// (string vs int); evaluation must return an error, never panic.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0usize..4).prop_map(Expr::col),
        arb_datum().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), prop_oneof![
                Just(BinOp::Add), Just(BinOp::Sub), Just(BinOp::Mul), Just(BinOp::Div),
                Just(BinOp::Eq), Just(BinOp::Ne), Just(BinOp::Lt), Just(BinOp::Le),
                Just(BinOp::Gt), Just(BinOp::Ge), Just(BinOp::And), Just(BinOp::Or),
            ])
                .prop_map(|(l, r, op)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), any::<bool>()).prop_map(|(e, negated)| Expr::IsNull {
                expr: Box::new(e),
                negated
            }),
            (inner.clone(), proptest::collection::vec(inner.clone(), 0..3), any::<bool>())
                .prop_map(|(e, list, negated)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated
                }),
        ]
    })
}

/// Reference LIKE matcher via dynamic programming.
fn like_reference(s: &str, p: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = p.chars().collect();
    let mut dp = vec![vec![false; p.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=p.len() {
        dp[0][j] = dp[0][j - 1] && p[j - 1] == '%';
    }
    for i in 1..=s.len() {
        for j in 1..=p.len() {
            dp[i][j] = match p[j - 1] {
                '%' => dp[i - 1][j] || dp[i][j - 1],
                '_' => dp[i - 1][j - 1],
                c => dp[i - 1][j - 1] && s[i - 1] == c,
            };
        }
    }
    dp[s.len()][p.len()]
}

proptest! {
    /// Evaluation is total: Ok or Err, never a panic; filters never panic.
    #[test]
    fn eval_never_panics(e in arb_expr(), row in arb_row()) {
        let _ = e.eval(&row);
        let _ = e.eval_filter(&row);
    }

    /// split_conjunction + conjunction is semantics-preserving.
    #[test]
    fn conjunction_roundtrip(e in arb_expr(), row in arb_row()) {
        let parts: Vec<Expr> = e.split_conjunction().into_iter().cloned().collect();
        let rebuilt = Expr::conjunction(parts);
        let a = e.eval(&row).ok();
        let b = rebuilt.eval(&row).ok();
        prop_assert_eq!(a, b);
    }

    /// Shifting up then down restores the expression.
    #[test]
    fn shift_roundtrip(e in arb_expr()) {
        let shifted = e.shift(0, 7).shift(7, -7);
        prop_assert_eq!(e, shifted);
    }

    /// The iterative LIKE matcher agrees with the DP reference.
    #[test]
    fn like_matches_reference(s in "[ab_%]{0,8}", p in "[ab_%]{0,6}") {
        prop_assert_eq!(ic_common::expr::like_match(&s, &p), like_reference(&s, &p));
    }

    /// Epoch-day round trip over ±60 years.
    #[test]
    fn date_roundtrip(d in -20000i32..20000) {
        let (y, m, dd) = dates::from_epoch_days(d);
        prop_assert_eq!(dates::to_epoch_days(y, m, dd), d);
        prop_assert!((1..=12).contains(&m));
        prop_assert!(dd >= 1 && dd <= dates::days_in_month(y, m));
    }

    /// add_months composes: +a then +b == +(a+b).
    #[test]
    fn add_months_composes(d in 0i32..15000, a in -24i32..24, b in -24i32..24) {
        // Composition can differ by day clamping; compare via first-of-month.
        let (y, m, _) = dates::from_epoch_days(d);
        let first = dates::to_epoch_days(y, m, 1);
        prop_assert_eq!(
            dates::add_months(dates::add_months(first, a), b),
            dates::add_months(first, a + b)
        );
    }

    /// Datum equality implies hash equality.
    #[test]
    fn eq_implies_hash_eq(a in arb_datum(), b in arb_datum()) {
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Datum ordering is antisymmetric and consistent with equality.
    #[test]
    fn ordering_laws(a in arb_datum(), b in arb_datum(), c in arb_datum()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        if a.cmp(&b) == Ordering::Less && b.cmp(&c) == Ordering::Less {
            prop_assert_eq!(a.cmp(&c), Ordering::Less);
        }
    }

    /// Partial+final accumulators equal a single complete accumulator for
    /// any split of any input.
    #[test]
    fn accumulator_split_invariant(
        values in proptest::collection::vec((-100i64..100, any::<bool>()), 0..60),
        split in 0usize..60,
    ) {
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let datums: Vec<Datum> = values
                .iter()
                .map(|(v, n)| if *n { Datum::Null } else { Datum::Int(*v) })
                .collect();
            let mut complete = Accumulator::new(func);
            for v in &datums {
                complete.update(v.clone()).unwrap();
            }
            let cut = split.min(datums.len());
            let mut p1 = Accumulator::new(func);
            let mut p2 = Accumulator::new(func);
            for v in &datums[..cut] {
                p1.update(v.clone()).unwrap();
            }
            for v in &datums[cut..] {
                p2.update(v.clone()).unwrap();
            }
            let mut merged = Accumulator::from_state(func, &p1.to_state()).unwrap();
            merged.merge(Accumulator::from_state(func, &p2.to_state()).unwrap()).unwrap();
            prop_assert_eq!(merged.finish(), complete.finish(), "{}", func);
        }
    }

    /// Three-valued logic: NOT(NOT(x)) == x for boolean-valued expressions.
    #[test]
    fn double_negation(row in arb_row(), v in 0usize..4, lit in -50i64..50) {
        let cmp = Expr::binary(BinOp::Gt, Expr::col(v), Expr::lit(lit));
        let double = Expr::Not(Box::new(Expr::Not(Box::new(cmp.clone()))));
        prop_assert_eq!(cmp.eval(&row).ok(), double.eval(&row).ok());
    }
}
