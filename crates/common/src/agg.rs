//! Aggregate functions with map/partial/final decomposition.
//!
//! The executor runs aggregates in two modes mirroring Ignite's map-reduce
//! aggregation (§3.2, §5.3): a *complete* aggregate on one site, or a
//! *partial* aggregate on every partition followed by a *final* aggregate
//! that merges the partial accumulator states after an exchange.

use crate::datum::Datum;
use crate::error::{IcError, IcResult};
use crate::hash::FxHashSet;
use std::fmt;

/// Aggregate function kinds supported by the SQL frontend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT(expr) — counts non-NULL values.
    Count,
    /// COUNT(*) — counts rows regardless of NULLs.
    CountStar,
    /// COUNT(DISTINCT expr) — unsplittable (see [`AggFunc::splittable`]).
    CountDistinct,
    /// SUM(expr).
    Sum,
    /// AVG(expr).
    Avg,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
}

impl AggFunc {
    /// Whether the partial/final split is supported. COUNT DISTINCT must see
    /// all rows in one place, so it is a *reduction operator* in the paper's
    /// §5.3 sense and blocks the two-phase split and variant fragments.
    pub fn splittable(&self) -> bool {
        !matches!(self, AggFunc::CountDistinct)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountStar => "COUNT(*)",
            AggFunc::CountDistinct => "COUNT(DISTINCT)",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// Runtime accumulator for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum Accumulator {
    /// Row/value count (COUNT and COUNT(*)).
    Count(i64),
    /// Running sum; keeps an exact integer sum while all inputs are Int.
    Sum {
        /// Float sum (always maintained).
        sum: f64,
        /// Whether any non-NULL value was seen (SUM of nothing is NULL).
        saw: bool,
        /// True while every input was an Int, so `isum` stays exact.
        int_only: bool,
        /// Exact integer sum, valid while `int_only`.
        isum: i64,
    },
    /// Running sum + count for AVG.
    Avg {
        /// Sum of inputs.
        sum: f64,
        /// Count of non-NULL inputs.
        count: i64,
    },
    /// Running minimum (None until a value is seen).
    Min(Option<Datum>),
    /// Running maximum (None until a value is seen).
    Max(Option<Datum>),
    /// Distinct-value set for COUNT(DISTINCT).
    Distinct(FxHashSet<Datum>),
}

impl Accumulator {
    /// Fresh accumulator for the function.
    pub fn new(func: AggFunc) -> Accumulator {
        match func {
            AggFunc::Count | AggFunc::CountStar => Accumulator::Count(0),
            AggFunc::Sum => Accumulator::Sum { sum: 0.0, saw: false, int_only: true, isum: 0 },
            AggFunc::Avg => Accumulator::Avg { sum: 0.0, count: 0 },
            AggFunc::Min => Accumulator::Min(None),
            AggFunc::Max => Accumulator::Max(None),
            AggFunc::CountDistinct => Accumulator::Distinct(FxHashSet::default()),
        }
    }

    /// Feed one input value. `count_star` accumulators receive a non-null
    /// placeholder from the executor.
    #[inline]
    // ic-lint: allow(L012) because format! runs only in the terminal type-mismatch error arms, never on the per-element happy path
    pub fn update(&mut self, value: Datum) -> IcResult<()> {
        match self {
            Accumulator::Count(c) => {
                if !value.is_null() {
                    *c += 1;
                }
            }
            Accumulator::Sum { sum, saw, int_only, isum } => {
                match value {
                    Datum::Null => {}
                    Datum::Int(i) => {
                        *sum += i as f64;
                        *isum += i;
                        *saw = true;
                    }
                    Datum::Double(d) => {
                        *sum += d;
                        *int_only = false;
                        *saw = true;
                    }
                    other => return Err(IcError::Exec(format!("SUM on non-numeric {other}"))),
                }
            }
            Accumulator::Avg { sum, count } => match value {
                Datum::Null => {}
                other => {
                    let d = other
                        .as_double()
                        .ok_or_else(|| IcError::Exec(format!("AVG on non-numeric {other}")))?;
                    *sum += d;
                    *count += 1;
                }
            },
            Accumulator::Min(best) => {
                if !value.is_null()
                    && best.as_ref().is_none_or(|b| value.sql_cmp(b) == Some(std::cmp::Ordering::Less))
                {
                    *best = Some(value);
                }
            }
            Accumulator::Max(best) => {
                if !value.is_null()
                    && best
                        .as_ref()
                        .is_none_or(|b| value.sql_cmp(b) == Some(std::cmp::Ordering::Greater))
                {
                    *best = Some(value);
                }
            }
            Accumulator::Distinct(set) => {
                if !value.is_null() {
                    set.insert(value);
                }
            }
        }
        Ok(())
    }

    /// Merge another accumulator of the same shape (the *final* phase).
    pub fn merge(&mut self, other: Accumulator) -> IcResult<()> {
        match (self, other) {
            (Accumulator::Count(a), Accumulator::Count(b)) => *a += b,
            (
                Accumulator::Sum { sum: a, saw: sa, int_only: ia, isum: iza },
                Accumulator::Sum { sum: b, saw: sb, int_only: ib, isum: izb },
            ) => {
                *a += b;
                *sa |= sb;
                *ia &= ib;
                *iza += izb;
            }
            (Accumulator::Avg { sum: a, count: ca }, Accumulator::Avg { sum: b, count: cb }) => {
                *a += b;
                *ca += cb;
            }
            (Accumulator::Min(a), Accumulator::Min(b)) => {
                if let Some(bv) = b {
                    if a.as_ref().is_none_or(|av| bv.sql_cmp(av) == Some(std::cmp::Ordering::Less)) {
                        *a = Some(bv);
                    }
                }
            }
            (Accumulator::Max(a), Accumulator::Max(b)) => {
                if let Some(bv) = b {
                    if a
                        .as_ref()
                        .is_none_or(|av| bv.sql_cmp(av) == Some(std::cmp::Ordering::Greater))
                    {
                        *a = Some(bv);
                    }
                }
            }
            (Accumulator::Distinct(a), Accumulator::Distinct(b)) => a.extend(b),
            _ => return Err(IcError::Exec("mismatched accumulator merge".into())),
        }
        Ok(())
    }

    /// Produce the final aggregate value.
    pub fn finish(&self) -> Datum {
        match self {
            Accumulator::Count(c) => Datum::Int(*c),
            Accumulator::Sum { sum, saw, int_only, isum } => {
                if !*saw {
                    Datum::Null
                } else if *int_only {
                    Datum::Int(*isum)
                } else {
                    Datum::Double(*sum)
                }
            }
            Accumulator::Avg { sum, count } => {
                if *count == 0 {
                    Datum::Null
                } else {
                    Datum::Double(*sum / *count as f64)
                }
            }
            Accumulator::Min(b) | Accumulator::Max(b) => b.clone().unwrap_or(Datum::Null),
            Accumulator::Distinct(set) => Datum::Int(set.len() as i64),
        }
    }

    /// Serialize the accumulator state into datums for shipping between the
    /// partial and final phases (the exchange carries these as row columns).
    pub fn to_state(&self) -> Vec<Datum> {
        match self {
            Accumulator::Count(c) => vec![Datum::Int(*c)],
            Accumulator::Sum { sum, saw, int_only, isum } => vec![
                Datum::Double(*sum),
                Datum::Bool(*saw),
                Datum::Bool(*int_only),
                Datum::Int(*isum),
            ],
            Accumulator::Avg { sum, count } => vec![Datum::Double(*sum), Datum::Int(*count)],
            Accumulator::Min(b) | Accumulator::Max(b) => vec![b.clone().unwrap_or(Datum::Null)],
            Accumulator::Distinct(_) => {
                unreachable!("COUNT DISTINCT is never split into partial/final phases")
            }
        }
    }

    /// Number of state columns `to_state` produces for a function.
    pub fn state_width(func: AggFunc) -> usize {
        match func {
            AggFunc::Count | AggFunc::CountStar => 1,
            AggFunc::Sum => 4,
            AggFunc::Avg => 2,
            AggFunc::Min | AggFunc::Max => 1,
            AggFunc::CountDistinct => 1,
        }
    }

    /// Rebuild an accumulator from shipped state columns.
    pub fn from_state(func: AggFunc, state: &[Datum]) -> IcResult<Accumulator> {
        let bad = || IcError::Exec(format!("bad {func} accumulator state"));
        Ok(match func {
            AggFunc::Count | AggFunc::CountStar => {
                Accumulator::Count(state[0].as_int().ok_or_else(bad)?)
            }
            AggFunc::Sum => Accumulator::Sum {
                sum: state[0].as_double().ok_or_else(bad)?,
                saw: state[1].as_bool().ok_or_else(bad)?,
                int_only: state[2].as_bool().ok_or_else(bad)?,
                isum: state[3].as_int().ok_or_else(bad)?,
            },
            AggFunc::Avg => Accumulator::Avg {
                sum: state[0].as_double().ok_or_else(bad)?,
                count: state[1].as_int().ok_or_else(bad)?,
            },
            AggFunc::Min => Accumulator::Min(if state[0].is_null() {
                None
            } else {
                Some(state[0].clone())
            }),
            AggFunc::Max => Accumulator::Max(if state[0].is_null() {
                None
            } else {
                Some(state[0].clone())
            }),
            AggFunc::CountDistinct => return Err(bad()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_ignores_nulls() {
        let mut a = Accumulator::new(AggFunc::Count);
        a.update(Datum::Int(1)).unwrap();
        a.update(Datum::Null).unwrap();
        a.update(Datum::Int(3)).unwrap();
        assert_eq!(a.finish(), Datum::Int(2));
    }

    #[test]
    fn sum_int_stays_int() {
        let mut a = Accumulator::new(AggFunc::Sum);
        a.update(Datum::Int(2)).unwrap();
        a.update(Datum::Int(3)).unwrap();
        assert_eq!(a.finish(), Datum::Int(5));
        a.update(Datum::Double(0.5)).unwrap();
        assert_eq!(a.finish(), Datum::Double(5.5));
    }

    #[test]
    fn empty_aggregates() {
        assert_eq!(Accumulator::new(AggFunc::Sum).finish(), Datum::Null);
        assert_eq!(Accumulator::new(AggFunc::Avg).finish(), Datum::Null);
        assert_eq!(Accumulator::new(AggFunc::Min).finish(), Datum::Null);
        assert_eq!(Accumulator::new(AggFunc::Count).finish(), Datum::Int(0));
    }

    #[test]
    fn min_max() {
        let mut mn = Accumulator::new(AggFunc::Min);
        let mut mx = Accumulator::new(AggFunc::Max);
        for v in [3i64, 1, 4, 1, 5] {
            mn.update(Datum::Int(v)).unwrap();
            mx.update(Datum::Int(v)).unwrap();
        }
        assert_eq!(mn.finish(), Datum::Int(1));
        assert_eq!(mx.finish(), Datum::Int(5));
    }

    #[test]
    fn avg() {
        let mut a = Accumulator::new(AggFunc::Avg);
        for v in [1i64, 2, 3, 4] {
            a.update(Datum::Int(v)).unwrap();
        }
        assert_eq!(a.finish(), Datum::Double(2.5));
    }

    #[test]
    fn distinct() {
        let mut a = Accumulator::new(AggFunc::CountDistinct);
        for v in [1i64, 2, 2, 3, 3, 3] {
            a.update(Datum::Int(v)).unwrap();
        }
        assert_eq!(a.finish(), Datum::Int(3));
        assert!(!AggFunc::CountDistinct.splittable());
        assert!(AggFunc::Sum.splittable());
    }

    #[test]
    fn partial_final_roundtrip_matches_complete() {
        // Split the input across two partial accumulators, ship the state,
        // merge, and compare against a single complete accumulator.
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max] {
            let input: Vec<Datum> = (0..100).map(|i| Datum::Int(i * 7 % 13)).collect();
            let mut complete = Accumulator::new(func);
            for v in &input {
                complete.update(v.clone()).unwrap();
            }
            let mut p1 = Accumulator::new(func);
            let mut p2 = Accumulator::new(func);
            for (i, v) in input.iter().enumerate() {
                if i % 2 == 0 {
                    p1.update(v.clone()).unwrap();
                } else {
                    p2.update(v.clone()).unwrap();
                }
            }
            let s1 = p1.to_state();
            let s2 = p2.to_state();
            assert_eq!(s1.len(), Accumulator::state_width(func));
            let mut fin = Accumulator::from_state(func, &s1).unwrap();
            fin.merge(Accumulator::from_state(func, &s2).unwrap()).unwrap();
            assert_eq!(fin.finish(), complete.finish(), "func {func}");
        }
    }
}
