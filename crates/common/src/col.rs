//! Columnar batches: typed column vectors with validity bitmaps and
//! selection vectors — the exec data plane's batch currency.
//!
//! A [`ColumnBatch`] holds one [`Column`] per output field. Each column
//! stores its values in a contiguous typed vector ([`ColumnData`]) plus an
//! optional validity [`Bitmap`] (absent ⇔ no NULLs), so kernels run tight
//! per-column loops over primitive buffers instead of walking `Vec<Row>`
//! datum-by-datum. Strings are stored as a shared offsets-plus-bytes blob;
//! columns whose values mix runtime types (legal in this dynamically typed
//! engine, e.g. an Int column fed a Double by a UNION-less untyped VALUES)
//! degrade to a boxed [`ColumnData::Any`] vector.
//!
//! **Selection vectors.** A batch may carry a selection vector — physical
//! row indices, in order. Filters never materialize survivors; they only
//! shrink the selection, and downstream kernels iterate logical rows
//! through it. Materialization (a *gather*) happens only where an operator
//! genuinely reorders or combines rows (join output, sort) or at the wire.
//!
//! **Row boundaries.** [`ColumnBatch::from_rows`] / [`ColumnBatch::to_rows`]
//! are the only row↔column conversion points, used at the storage scan
//! boundary and the final client rowset. Type sniffing is per column: the
//! first non-NULL value fixes the typed representation, later mismatches
//! degrade that column to `Any`. Int is *not* promoted to Double — the two
//! display differently (`2` vs `2.0000`) and results must round-trip.
//!
//! **Hash contract.** [`ColumnBatch::hash_keys`] drives one [`FxHasher`]
//! per row through the exact same `Hash` write sequence as `Datum::hash`,
//! so vectorized hashing is bit-identical to `Row::hash_key` — planner
//! routing, storage partitioning and exchange hashing all share it (see the
//! pinned-value tests in `crates/exec/tests/kernel_props.rs`).

use crate::datum::Datum;
use crate::hash::FxHasher;
use crate::row::Row;
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Packed validity bitmap: bit `i` set ⇔ row `i` is valid (non-NULL).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    /// Rebuild from packed words (wire decode). Bits past `len` must be 0.
    pub fn from_words(words: Vec<u64>, len: usize) -> Bitmap {
        Bitmap { words, len }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (true = valid).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i >> 6] >> (i & 63)) & 1 == 1
    }

    /// Append one bit.
    #[inline]
    pub fn push(&mut self, valid: bool) {
        let w = self.len >> 6;
        if w == self.words.len() {
            self.words.push(0);
        }
        if valid {
            self.words[w] |= 1u64 << (self.len & 63);
        }
        self.len += 1;
    }

    /// Number of set (valid) bits.
    pub fn count_valid(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The packed words (for wire encoding).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Typed value storage for one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats.
    Double(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dates as epoch-day numbers.
    Date(Vec<i32>),
    /// Strings: value `i` is `bytes[offsets[i] .. offsets[i + 1]]`.
    Str {
        /// `len + 1` cumulative byte offsets (`offsets[0] == 0`).
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payload.
        bytes: Vec<u8>,
    },
    /// Mixed-type fallback: boxed datums.
    Any(Vec<Datum>),
}

impl ColumnData {
    /// Number of physical values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Double(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Date(v) => v.len(),
            ColumnData::Str { offsets, .. } => offsets.len().saturating_sub(1),
            ColumnData::Any(v) => v.len(),
        }
    }

    /// Whether the storage holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One column: typed values plus an optional validity bitmap
/// (`None` ⇔ every row is valid).
#[derive(Debug, Clone)]
pub struct Column {
    /// The typed value storage.
    pub data: ColumnData,
    /// Validity bitmap; absent means no NULLs.
    pub validity: Option<Bitmap>,
}

impl Column {
    /// Build a column from owned datums (used by the vectorized evaluator).
    pub fn from_datums(vals: Vec<Datum>) -> Column {
        let mut b = ColumnBuilder::new();
        for d in vals {
            b.push_datum(d);
        }
        b.finish()
    }

    /// Number of physical rows.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Is physical row `i` non-NULL?
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.validity {
            None => true,
            Some(b) => b.get(i),
        }
    }

    /// String value at physical row `i`; only meaningful for
    /// [`ColumnData::Str`] columns with a valid row.
    #[inline]
    // ic-lint: allow(L001) because offsets/bytes are only ever written by push_str, which stores validated UTF-8
    pub fn str_at(&self, i: usize) -> &str {
        match &self.data {
            ColumnData::Str { offsets, bytes } => {
                let (s, e) = (offsets[i] as usize, offsets[i + 1] as usize);
                std::str::from_utf8(&bytes[s..e]).expect("column stores valid UTF-8")
            }
            _ => "",
        }
    }

    /// Materialize physical row `i` as a [`Datum`] (allocates for strings).
    pub fn datum_at(&self, i: usize) -> Datum {
        if !self.is_valid(i) {
            return Datum::Null;
        }
        match &self.data {
            ColumnData::Int(v) => Datum::Int(v[i]),
            ColumnData::Double(v) => Datum::Double(v[i]),
            ColumnData::Bool(v) => Datum::Bool(v[i]),
            ColumnData::Date(v) => Datum::Date(v[i]),
            ColumnData::Str { .. } => Datum::str(self.str_at(i)),
            ColumnData::Any(v) => v[i].clone(),
        }
    }

    /// SQL value equality between `self[i]` and `other[j]`, matching
    /// `Datum::eq`: NULL == NULL (group-key semantics), mixed Int/Double
    /// and Date/Int coerce, everything else compares typed.
    #[inline]
    pub fn eq_at(&self, i: usize, other: &Column, j: usize) -> bool {
        match (self.is_valid(i), other.is_valid(j)) {
            (false, false) => return true,
            (true, true) => {}
            _ => return false,
        }
        match (&self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a[i] == b[j],
            (ColumnData::Double(a), ColumnData::Double(b)) => a[i] == b[j],
            (ColumnData::Int(a), ColumnData::Double(b)) => a[i] as f64 == b[j],
            (ColumnData::Double(a), ColumnData::Int(b)) => a[i] == b[j] as f64,
            (ColumnData::Date(a), ColumnData::Date(b)) => a[i] == b[j],
            (ColumnData::Date(a), ColumnData::Int(b)) => a[i] as i64 == b[j],
            (ColumnData::Int(a), ColumnData::Date(b)) => a[i] == b[j] as i64,
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[i] == b[j],
            (ColumnData::Str { .. }, ColumnData::Str { .. }) => {
                self.str_at(i) == other.str_at(j)
            }
            _ => self.datum_at(i) == other.datum_at(j),
        }
    }

    /// SQL value equality between `self[i]` and a materialized datum,
    /// matching `Datum::eq` (NULL == NULL).
    #[inline]
    pub fn eq_datum(&self, i: usize, d: &Datum) -> bool {
        if !self.is_valid(i) {
            return d.is_null();
        }
        match (&self.data, d) {
            (_, Datum::Null) => false,
            (ColumnData::Int(a), Datum::Int(b)) => a[i] == *b,
            (ColumnData::Int(a), Datum::Double(b)) => a[i] as f64 == *b,
            (ColumnData::Int(a), Datum::Date(b)) => a[i] == *b as i64,
            (ColumnData::Double(a), Datum::Double(b)) => a[i] == *b,
            (ColumnData::Double(a), Datum::Int(b)) => a[i] == *b as f64,
            (ColumnData::Date(a), Datum::Date(b)) => a[i] == *b,
            (ColumnData::Date(a), Datum::Int(b)) => a[i] as i64 == *b,
            (ColumnData::Bool(a), Datum::Bool(b)) => a[i] == *b,
            (ColumnData::Str { .. }, Datum::Str(b)) => self.str_at(i) == b.as_ref(),
            _ => &self.datum_at(i) == d,
        }
    }

    /// Total order between `self[i]` and `other[j]`, matching `Datum::cmp`
    /// (NULL first, SQL comparison, type-rank fallback). Used by sort and
    /// merge kernels.
    #[inline]
    pub fn cmp_at(&self, i: usize, other: &Column, j: usize) -> Ordering {
        match (self.is_valid(i), other.is_valid(j)) {
            (false, false) => return Ordering::Equal,
            (false, true) => return Ordering::Less,
            (true, false) => return Ordering::Greater,
            _ => {}
        }
        match (&self.data, &other.data) {
            (ColumnData::Int(a), ColumnData::Int(b)) => a[i].cmp(&b[j]),
            (ColumnData::Double(a), ColumnData::Double(b)) => {
                // sql_cmp on NaN yields None, and Datum::cmp then falls back
                // to type-rank (equal for Double/Double).
                a[i].partial_cmp(&b[j]).unwrap_or(Ordering::Equal)
            }
            (ColumnData::Date(a), ColumnData::Date(b)) => a[i].cmp(&b[j]),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a[i].cmp(&b[j]),
            (ColumnData::Str { .. }, ColumnData::Str { .. }) => {
                self.str_at(i).cmp(other.str_at(j))
            }
            _ => self.datum_at(i).cmp(&other.datum_at(j)),
        }
    }

    /// Feed physical row `i` into `h` with the exact write sequence of
    /// `Datum::hash` — the cross-layer hash contract.
    #[inline]
    pub fn hash_at(&self, i: usize, h: &mut FxHasher) {
        if !self.is_valid(i) {
            0u8.hash(h);
            return;
        }
        match &self.data {
            ColumnData::Int(v) => {
                2u8.hash(h);
                (v[i] as f64).to_bits().hash(h);
            }
            ColumnData::Double(v) => {
                2u8.hash(h);
                v[i].to_bits().hash(h);
            }
            ColumnData::Date(v) => {
                2u8.hash(h);
                (v[i] as f64).to_bits().hash(h);
            }
            ColumnData::Bool(v) => {
                1u8.hash(h);
                v[i].hash(h);
            }
            ColumnData::Str { .. } => {
                3u8.hash(h);
                self.str_at(i).hash(h);
            }
            ColumnData::Any(v) => v[i].hash(h),
        }
    }

    /// Drive every hasher in `hashers` through this column: hasher `k`
    /// receives logical row `k` (physical `sel[k]` when a selection is
    /// present). Column-major so each `match` on the type happens once.
    fn hash_into(&self, sel: Option<&[u32]>, hashers: &mut [FxHasher]) {
        match sel {
            None => {
                for (i, h) in hashers.iter_mut().enumerate() {
                    self.hash_at(i, h);
                }
            }
            Some(s) => {
                for (k, h) in hashers.iter_mut().enumerate() {
                    self.hash_at(s[k] as usize, h);
                }
            }
        }
    }

    /// Approximate heap byte size of one physical row's value.
    pub fn value_byte_size(&self, i: usize) -> usize {
        if !self.is_valid(i) {
            return 1;
        }
        match &self.data {
            ColumnData::Int(_) | ColumnData::Double(_) => 8,
            ColumnData::Bool(_) => 1,
            ColumnData::Date(_) => 4,
            ColumnData::Str { offsets, .. } => (offsets[i + 1] - offsets[i]) as usize,
            ColumnData::Any(v) => v[i].byte_size(),
        }
    }
}

/// Incremental [`Column`] builder with per-value type sniffing.
///
/// The first non-NULL value fixes the typed representation; a later value
/// of a different runtime type degrades the column to [`ColumnData::Any`].
/// Leading NULLs are backfilled with placeholder values once the type is
/// known (the validity bitmap masks them).
#[derive(Debug)]
pub struct ColumnBuilder {
    data: Option<ColumnData>,
    validity: Bitmap,
    has_null: bool,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

impl ColumnBuilder {
    /// An empty builder.
    pub fn new() -> ColumnBuilder {
        ColumnBuilder { data: None, validity: Bitmap::new(), has_null: false }
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether no rows were pushed yet.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// Append a NULL.
    #[inline]
    pub fn push_null(&mut self) {
        self.validity.push(false);
        self.has_null = true;
        match &mut self.data {
            None => {}
            Some(ColumnData::Int(v)) => v.push(0),
            Some(ColumnData::Double(v)) => v.push(0.0),
            Some(ColumnData::Bool(v)) => v.push(false),
            Some(ColumnData::Date(v)) => v.push(0),
            Some(ColumnData::Str { offsets, bytes }) => offsets.push(bytes.len() as u32),
            Some(ColumnData::Any(v)) => v.push(Datum::Null),
        }
    }

    /// Append an owned datum.
    pub fn push_datum(&mut self, d: Datum) {
        match d {
            Datum::Null => self.push_null(),
            Datum::Int(x) => {
                self.ensure_kind(Kind::Int);
                match &mut self.data {
                    Some(ColumnData::Int(v)) => v.push(x),
                    Some(ColumnData::Any(v)) => v.push(Datum::Int(x)),
                    _ => unreachable!("ensure_kind fixed the representation"),
                }
                self.validity.push(true);
            }
            Datum::Double(x) => {
                self.ensure_kind(Kind::Double);
                match &mut self.data {
                    Some(ColumnData::Double(v)) => v.push(x),
                    Some(ColumnData::Any(v)) => v.push(Datum::Double(x)),
                    _ => unreachable!("ensure_kind fixed the representation"),
                }
                self.validity.push(true);
            }
            Datum::Bool(x) => {
                self.ensure_kind(Kind::Bool);
                match &mut self.data {
                    Some(ColumnData::Bool(v)) => v.push(x),
                    Some(ColumnData::Any(v)) => v.push(Datum::Bool(x)),
                    _ => unreachable!("ensure_kind fixed the representation"),
                }
                self.validity.push(true);
            }
            Datum::Date(x) => {
                self.ensure_kind(Kind::Date);
                match &mut self.data {
                    Some(ColumnData::Date(v)) => v.push(x),
                    Some(ColumnData::Any(v)) => v.push(Datum::Date(x)),
                    _ => unreachable!("ensure_kind fixed the representation"),
                }
                self.validity.push(true);
            }
            Datum::Str(s) => {
                self.ensure_kind(Kind::Str);
                match &mut self.data {
                    Some(ColumnData::Str { offsets, bytes }) => {
                        bytes.extend_from_slice(s.as_bytes());
                        offsets.push(bytes.len() as u32);
                    }
                    Some(ColumnData::Any(v)) => v.push(Datum::Str(s)),
                    _ => unreachable!("ensure_kind fixed the representation"),
                }
                self.validity.push(true);
            }
        }
    }

    /// Append a datum by reference — string bytes copy straight into the
    /// arena without an intermediate owned `Datum` (the difference between
    /// one copy and two at the storage scan boundary).
    #[inline]
    pub fn push_datum_ref(&mut self, d: &Datum) {
        if let Datum::Str(s) = d {
            self.ensure_kind(Kind::Str);
            match &mut self.data {
                Some(ColumnData::Str { offsets, bytes }) => {
                    bytes.extend_from_slice(s.as_bytes());
                    offsets.push(bytes.len() as u32);
                }
                Some(ColumnData::Any(v)) => v.push(d.clone()),
                _ => unreachable!("ensure_kind fixed the representation"),
            }
            self.validity.push(true);
        } else {
            self.push_datum(d.clone()); // scalar clones are plain copies
        }
    }

    /// Append `col[i]` without constructing a [`Datum`] when the typed
    /// representations line up.
    #[inline]
    pub fn push_from_column(&mut self, col: &Column, i: usize) {
        if !col.is_valid(i) {
            self.push_null();
            return;
        }
        if self.data.is_none() {
            self.init_from(&col.data);
        }
        match (&mut self.data, &col.data) {
            (Some(ColumnData::Int(v)), ColumnData::Int(s)) => {
                v.push(s[i]);
                self.validity.push(true);
            }
            (Some(ColumnData::Double(v)), ColumnData::Double(s)) => {
                v.push(s[i]);
                self.validity.push(true);
            }
            (Some(ColumnData::Bool(v)), ColumnData::Bool(s)) => {
                v.push(s[i]);
                self.validity.push(true);
            }
            (Some(ColumnData::Date(v)), ColumnData::Date(s)) => {
                v.push(s[i]);
                self.validity.push(true);
            }
            (
                Some(ColumnData::Str { offsets, bytes }),
                ColumnData::Str { offsets: so, bytes: sb },
            ) => {
                let (a, b) = (so[i] as usize, so[i + 1] as usize);
                bytes.extend_from_slice(&sb[a..b]);
                offsets.push(bytes.len() as u32);
                self.validity.push(true);
            }
            _ => self.push_datum(col.datum_at(i)),
        }
    }

    /// Bulk-append a column, optionally through a physical selection.
    pub fn append_column(&mut self, col: &Column, sel: Option<&[u32]>) {
        match sel {
            None => {
                // Dense same-kind appends take typed bulk copies.
                if self.data.is_none() && !col.is_empty() {
                    self.init_from(&col.data);
                }
                match (&mut self.data, &col.data, &col.validity) {
                    (Some(ColumnData::Int(v)), ColumnData::Int(s), None) => {
                        v.extend_from_slice(s);
                        for _ in 0..s.len() {
                            self.validity.push(true);
                        }
                    }
                    (Some(ColumnData::Double(v)), ColumnData::Double(s), None) => {
                        v.extend_from_slice(s);
                        for _ in 0..s.len() {
                            self.validity.push(true);
                        }
                    }
                    (Some(ColumnData::Date(v)), ColumnData::Date(s), None) => {
                        v.extend_from_slice(s);
                        for _ in 0..s.len() {
                            self.validity.push(true);
                        }
                    }
                    _ => {
                        for i in 0..col.len() {
                            self.push_from_column(col, i);
                        }
                    }
                }
            }
            Some(s) => {
                for &i in s {
                    self.push_from_column(col, i as usize);
                }
            }
        }
    }

    /// Finish into an immutable [`Column`].
    pub fn finish(self) -> Column {
        let len = self.validity.len();
        let data = self.data.unwrap_or(ColumnData::Int(vec![0; len]));
        Column { data, validity: if self.has_null { Some(self.validity) } else { None } }
    }

    // ic-lint: allow(L012) because this runs once per column at the first typed append, not per element
    fn init_from(&mut self, like: &ColumnData) {
        debug_assert!(self.data.is_none());
        let n = self.validity.len();
        self.data = Some(match like {
            ColumnData::Int(_) => ColumnData::Int(vec![0; n]),
            ColumnData::Double(_) => ColumnData::Double(vec![0.0; n]),
            ColumnData::Bool(_) => ColumnData::Bool(vec![false; n]),
            ColumnData::Date(_) => ColumnData::Date(vec![0; n]),
            ColumnData::Str { .. } => {
                ColumnData::Str { offsets: vec![0; n + 1], bytes: Vec::new() }
            }
            ColumnData::Any(_) => ColumnData::Any(vec![Datum::Null; n]),
        });
    }

    // ic-lint: allow(L012) because allocation happens only on the None->typed transition, once per column
    fn ensure_kind(&mut self, kind: Kind) {
        match &self.data {
            None => {
                let n = self.validity.len();
                self.data = Some(match kind {
                    Kind::Int => ColumnData::Int(vec![0; n]),
                    Kind::Double => ColumnData::Double(vec![0.0; n]),
                    Kind::Bool => ColumnData::Bool(vec![false; n]),
                    Kind::Date => ColumnData::Date(vec![0; n]),
                    Kind::Str => ColumnData::Str { offsets: vec![0; n + 1], bytes: Vec::new() },
                });
            }
            Some(d) => {
                let matches = matches!(
                    (d, kind),
                    (ColumnData::Int(_), Kind::Int)
                        | (ColumnData::Double(_), Kind::Double)
                        | (ColumnData::Bool(_), Kind::Bool)
                        | (ColumnData::Date(_), Kind::Date)
                        | (ColumnData::Str { .. }, Kind::Str)
                        | (ColumnData::Any(_), _)
                );
                if !matches {
                    self.degrade_to_any();
                }
            }
        }
    }

    /// Re-materialize the current values as boxed datums (mixed-type column).
    // ic-lint: allow(L012) because degrading to Any is a one-time fallback when a column first sees mixed types
    fn degrade_to_any(&mut self) {
        let n = self.validity.len();
        let old = Column {
            data: self.data.take().unwrap_or(ColumnData::Int(vec![0; n])),
            validity: Some(self.validity.clone()),
        };
        let vals: Vec<Datum> = (0..n).map(|i| old.datum_at(i)).collect();
        self.data = Some(ColumnData::Any(vals));
    }
}

#[derive(Clone, Copy)]
enum Kind {
    Int,
    Double,
    Bool,
    Date,
    Str,
}

/// A batch of rows in columnar form: one [`Column`] per field plus an
/// optional selection vector of physical row indices.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    columns: Vec<Arc<Column>>,
    /// Physical row count (every column's length). Tracked separately so
    /// zero-width batches (`SELECT count(*)` inputs) still carry rows.
    nrows: usize,
    /// Selection: logical row `k` is physical row `sel[k]`. `None` ⇔ dense.
    sel: Option<Arc<Vec<u32>>>,
}

impl ColumnBatch {
    /// Assemble a dense batch from finished columns.
    pub fn new(columns: Vec<Arc<Column>>, nrows: usize) -> ColumnBatch {
        debug_assert!(columns.iter().all(|c| c.len() == nrows));
        ColumnBatch { columns, nrows, sel: None }
    }

    /// An empty batch of the given width.
    pub fn empty(width: usize) -> ColumnBatch {
        let col = Arc::new(Column { data: ColumnData::Int(Vec::new()), validity: None });
        ColumnBatch { columns: vec![col; width], nrows: 0, sel: None }
    }

    /// Convert row-major input (the storage scan / operator-input shim).
    pub fn from_rows(rows: &[Row]) -> ColumnBatch {
        let width = rows.first().map_or(0, |r| r.arity());
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new()).collect();
        for r in rows {
            debug_assert_eq!(r.arity(), width, "ragged batch");
            for (b, d) in builders.iter_mut().zip(&r.0) {
                b.push_datum_ref(d);
            }
        }
        ColumnBatch {
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            nrows: rows.len(),
            sel: None,
        }
    }

    /// Concatenate batches into one dense batch, resolving any selection
    /// vectors (per-column typed bulk appends). Used where many small
    /// batches would each pay a fixed cost downstream — e.g. per-message
    /// network latency at an exchange.
    pub fn concat(batches: &[ColumnBatch]) -> ColumnBatch {
        if batches.len() == 1 && batches[0].sel.is_none() {
            return batches[0].clone();
        }
        let width = batches.first().map_or(0, ColumnBatch::width);
        let nrows = batches.iter().map(ColumnBatch::num_rows).sum();
        let mut cols = Vec::with_capacity(width);
        for c in 0..width {
            let mut b = ColumnBuilder::new();
            for batch in batches {
                b.append_column(batch.col(c), batch.selection());
            }
            cols.push(Arc::new(b.finish()));
        }
        ColumnBatch { columns: cols, nrows, sel: None }
    }

    /// Pack borrowed rows — the storage-boundary shim when the rows still
    /// live in a partition snapshot, so nothing is cloned row-wise first.
    pub fn from_row_refs(rows: &[&Row]) -> ColumnBatch {
        let width = rows.first().map_or(0, |r| r.arity());
        let mut builders: Vec<ColumnBuilder> = (0..width).map(|_| ColumnBuilder::new()).collect();
        for r in rows {
            debug_assert_eq!(r.arity(), width, "ragged batch");
            for (b, d) in builders.iter_mut().zip(&r.0) {
                b.push_datum_ref(d);
            }
        }
        ColumnBatch {
            columns: builders.into_iter().map(|b| Arc::new(b.finish())).collect(),
            nrows: rows.len(),
            sel: None,
        }
    }

    /// Materialize as rows, honouring the selection (the client-rowset shim).
    pub fn to_rows(&self) -> Vec<Row> {
        let n = self.num_rows();
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            out.push(self.row_at(k));
        }
        out
    }

    /// Materialize logical row `k` as a [`Row`].
    pub fn row_at(&self, k: usize) -> Row {
        let i = self.phys_index(k);
        Row(self.columns.iter().map(|c| c.datum_at(i)).collect())
    }

    /// Materialize one value: logical row `k` of column `c`.
    pub fn datum_at(&self, c: usize, k: usize) -> Datum {
        self.columns[c].datum_at(self.phys_index(k))
    }

    /// Logical row count (selection length when present).
    #[inline]
    pub fn num_rows(&self) -> usize {
        match &self.sel {
            None => self.nrows,
            Some(s) => s.len(),
        }
    }

    /// Physical row count of the underlying columns.
    #[inline]
    pub fn phys_rows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    #[inline]
    pub fn columns(&self) -> &[Arc<Column>] {
        &self.columns
    }

    /// Column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> &Arc<Column> {
        &self.columns[c]
    }

    /// The selection vector, if any.
    #[inline]
    pub fn selection(&self) -> Option<&[u32]> {
        self.sel.as_deref().map(|s| s.as_slice())
    }

    /// Physical index of logical row `k`.
    #[inline]
    pub fn phys_index(&self, k: usize) -> usize {
        match &self.sel {
            None => k,
            Some(s) => s[k] as usize,
        }
    }

    /// Replace the selection with `sel` (physical indices). The caller has
    /// already resolved any previous selection (filters produce physical
    /// indices directly).
    pub fn with_sel(&self, sel: Vec<u32>) -> ColumnBatch {
        debug_assert!(sel.iter().all(|&i| (i as usize) < self.nrows));
        ColumnBatch { columns: self.columns.clone(), nrows: self.nrows, sel: Some(Arc::new(sel)) }
    }

    /// Keep the logical rows listed in `keep` (logical indices, in order).
    pub fn select_logical(&self, keep: &[u32]) -> ColumnBatch {
        let sel: Vec<u32> = match &self.sel {
            None => keep.to_vec(),
            Some(s) => keep.iter().map(|&k| s[k as usize]).collect(),
        };
        self.with_sel(sel)
    }

    /// Logical rows `[start, start + len)` as a (selection-sliced) batch.
    pub fn slice_logical(&self, start: usize, len: usize) -> ColumnBatch {
        let sel: Vec<u32> = match &self.sel {
            None => (start as u32..(start + len) as u32).collect(),
            Some(s) => s[start..start + len].to_vec(),
        };
        self.with_sel(sel)
    }

    /// Keep a subset of columns (cheap: shares the column arcs and selection).
    pub fn project_cols(&self, cols: &[usize]) -> ColumnBatch {
        ColumnBatch {
            columns: cols.iter().map(|&c| self.columns[c].clone()).collect(),
            nrows: self.nrows,
            sel: self.sel.clone(),
        }
    }

    /// Densify: gather the selected rows into fresh contiguous columns.
    /// A dense batch is returned as-is (columns stay shared).
    pub fn gather(&self) -> ColumnBatch {
        match &self.sel {
            None => self.clone(),
            Some(s) => {
                let nrows = s.len();
                let columns = self
                    .columns
                    .iter()
                    .map(|c| {
                        let mut b = ColumnBuilder::new();
                        b.append_column(c, Some(s));
                        Arc::new(b.finish())
                    })
                    .collect();
                ColumnBatch { columns, nrows, sel: None }
            }
        }
    }

    /// Per-logical-row key hashes over `cols`, bit-identical to
    /// `Row::hash_key` (one fresh [`FxHasher`] per row, columns in order).
    pub fn hash_keys(&self, cols: &[usize]) -> Vec<u64> {
        let n = self.num_rows();
        let mut hashers = vec![FxHasher::default(); n];
        let sel = self.selection();
        for &c in cols {
            self.columns[c].hash_into(sel, &mut hashers);
        }
        hashers.iter().map(|h| h.finish()).collect()
    }

    /// Memory-accounting cells: `width.max(1) × logical rows` (matches the
    /// row plane's `arity.max(1) × len`).
    pub fn cells(&self) -> usize {
        self.width().max(1) * self.num_rows()
    }

    /// Approximate byte size of the selected payload (cost/lease estimates).
    pub fn byte_size(&self) -> usize {
        let n = self.num_rows();
        let mut total = 0usize;
        for c in &self.columns {
            for k in 0..n {
                total += c.value_byte_size(self.phys_index(k));
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(vals: &[&[Datum]]) -> Vec<Row> {
        vals.iter().map(|v| Row(v.to_vec())).collect()
    }

    #[test]
    fn row_roundtrip_typed() {
        let input = rows(&[
            &[Datum::Int(1), Datum::str("a"), Datum::Double(1.5)],
            &[Datum::Null, Datum::str(""), Datum::Null],
            &[Datum::Int(-3), Datum::Null, Datum::Double(2.5)],
        ]);
        let b = ColumnBatch::from_rows(&input);
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.width(), 3);
        assert!(matches!(b.col(0).data, ColumnData::Int(_)));
        assert!(matches!(b.col(1).data, ColumnData::Str { .. }));
        assert_eq!(b.to_rows(), input);
    }

    #[test]
    fn mixed_types_degrade_to_any() {
        let input = rows(&[&[Datum::Int(1)], &[Datum::str("x")], &[Datum::Double(0.5)]]);
        let b = ColumnBatch::from_rows(&input);
        assert!(matches!(b.col(0).data, ColumnData::Any(_)));
        assert_eq!(b.to_rows(), input);
    }

    #[test]
    fn int_double_mix_not_promoted() {
        // Display distinguishes Int(2) ("2") from Double(2.0) ("2.0000"),
        // so conversion must preserve the variants exactly.
        let input = rows(&[&[Datum::Int(2)], &[Datum::Double(2.0)]]);
        let b = ColumnBatch::from_rows(&input);
        assert_eq!(b.to_rows(), input);
        assert!(matches!(b.datum_at(0, 0), Datum::Int(2)));
        assert!(matches!(b.datum_at(0, 1), Datum::Double(_)));
    }

    #[test]
    fn all_null_column_roundtrips() {
        let input = rows(&[&[Datum::Null], &[Datum::Null]]);
        let b = ColumnBatch::from_rows(&input);
        assert_eq!(b.to_rows(), input);
    }

    #[test]
    fn selection_views_and_gather() {
        let input = rows(&[
            &[Datum::Int(0)],
            &[Datum::Int(1)],
            &[Datum::Int(2)],
            &[Datum::Int(3)],
        ]);
        let b = ColumnBatch::from_rows(&input);
        let filtered = b.with_sel(vec![1, 3]);
        assert_eq!(filtered.num_rows(), 2);
        assert_eq!(filtered.phys_rows(), 4);
        assert_eq!(filtered.row_at(1), Row(vec![Datum::Int(3)]));
        // Narrowing an existing selection resolves through it.
        let narrowed = filtered.select_logical(&[1]);
        assert_eq!(narrowed.to_rows(), rows(&[&[Datum::Int(3)]]));
        let dense = filtered.gather();
        assert_eq!(dense.phys_rows(), 2);
        assert!(dense.selection().is_none());
        assert_eq!(dense.to_rows(), rows(&[&[Datum::Int(1)], &[Datum::Int(3)]]));
    }

    #[test]
    fn hash_matches_row_hash_key() {
        let input = rows(&[
            &[Datum::Int(7), Datum::str("line"), Datum::Double(0.25), Datum::Date(42)],
            &[Datum::Null, Datum::str(""), Datum::Double(-1.0), Datum::Date(0)],
            &[Datum::Int(0), Datum::str("ORDERS"), Datum::Null, Datum::Null],
        ]);
        let b = ColumnBatch::from_rows(&input);
        for cols in [vec![0usize], vec![1], vec![0, 1, 2, 3], vec![3, 2]] {
            let hashes = b.hash_keys(&cols);
            for (k, r) in input.iter().enumerate() {
                assert_eq!(hashes[k], r.hash_key(&cols), "cols {cols:?} row {k}");
            }
        }
        // Through a selection too.
        let selected = b.with_sel(vec![2, 0]);
        let hashes = selected.hash_keys(&[0, 1]);
        assert_eq!(hashes[0], input[2].hash_key(&[0, 1]));
        assert_eq!(hashes[1], input[0].hash_key(&[0, 1]));
    }

    #[test]
    fn eq_and_cmp_match_datum_semantics() {
        let a = ColumnBatch::from_rows(&rows(&[&[Datum::Int(2)], &[Datum::Null]]));
        let d = ColumnBatch::from_rows(&rows(&[&[Datum::Double(2.0)], &[Datum::Null]]));
        assert!(a.col(0).eq_at(0, d.col(0), 0)); // Int(2) == Double(2.0)
        assert!(a.col(0).eq_at(1, d.col(0), 1)); // NULL == NULL (group keys)
        assert!(!a.col(0).eq_at(0, d.col(0), 1));
        assert!(a.col(0).eq_datum(0, &Datum::Double(2.0)));
        assert!(a.col(0).eq_datum(1, &Datum::Null));
        assert!(!a.col(0).eq_datum(0, &Datum::Null));
        // NULL sorts first, as in Datum::cmp.
        assert_eq!(a.col(0).cmp_at(1, a.col(0), 0), Ordering::Less);
        assert_eq!(a.col(0).cmp_at(0, d.col(0), 0), Ordering::Equal);
        // Date/Int coercion.
        let dt = ColumnBatch::from_rows(&rows(&[&[Datum::Date(2)]]));
        assert!(dt.col(0).eq_at(0, a.col(0), 0));
        assert!(dt.col(0).eq_datum(0, &Datum::Int(2)));
    }

    #[test]
    fn zero_width_batches_track_rows() {
        let input = rows(&[&[], &[], &[]]);
        let b = ColumnBatch::from_rows(&input);
        assert_eq!(b.width(), 0);
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.cells(), 3);
        assert_eq!(b.to_rows(), input);
    }

    #[test]
    fn builder_degrades_after_nulls() {
        let mut b = ColumnBuilder::new();
        b.push_null();
        b.push_datum(Datum::str("s"));
        b.push_datum(Datum::Int(4));
        let col = b.finish();
        assert!(matches!(col.data, ColumnData::Any(_)));
        assert_eq!(col.datum_at(0), Datum::Null);
        assert_eq!(col.datum_at(1), Datum::str("s"));
        assert_eq!(col.datum_at(2), Datum::Int(4));
    }

    #[test]
    fn bitmap_packing() {
        let mut bm = Bitmap::new();
        for i in 0..130 {
            bm.push(i % 3 == 0);
        }
        assert_eq!(bm.len(), 130);
        for i in 0..130 {
            assert_eq!(bm.get(i), i % 3 == 0);
        }
        assert_eq!(bm.count_valid(), (0..130).filter(|i| i % 3 == 0).count());
        let rebuilt = Bitmap::from_words(bm.words().to_vec(), bm.len());
        assert_eq!(rebuilt, bm);
    }
}
