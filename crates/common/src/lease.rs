//! Cluster-wide memory pool with revocable per-query leases.
//!
//! This replaces the flat per-query `buffered_rows` counter the executor
//! used before the governor existed. Every buffering operator now accounts
//! its cells (rows × arity) against a [`MemoryLease`]; leases acquire
//! budget from a shared [`MemoryPool`] in chunks of [`LEASE_CHUNK_CELLS`]
//! so the pool mutex is touched once per ~16K cells, not once per batch.
//!
//! Revocation protocol (the governor's pressure valve):
//!
//! 1. A lease that needs more budget than the pool has free picks a
//!    *victim*: the live lease with the largest grant (ties broken toward
//!    the lowest — oldest — lease id, so the choice is deterministic).
//! 2. If the victim is another query, its `revoked` flag is raised. The
//!    victim notices cooperatively at its next batch boundary
//!    (`ControlBlock::check`), cancels itself, and its lease `Drop`
//!    returns the grant to the pool.
//! 3. The requester blocks on a condvar until budget frees, re-checking
//!    each wakeup; if its grant timeout expires first it revokes *itself*.
//! 4. If the requester is itself the largest lease, it self-revokes — or,
//!    when no other lease holds any budget (so waiting cannot help), it
//!    fails terminally with [`IcError::MemoryLimit`]: the pool is simply
//!    too small for the query.
//!
//! A revoked query surfaces [`IcError::ResourcesRevoked`] — retryable by
//! the client, never by the coordinator's failover loop.

use crate::error::{IcError, IcResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Granularity of pool acquisition: a lease grows its grant in multiples
/// of this many cells, amortizing the pool lock across many reserves.
pub const LEASE_CHUNK_CELLS: u64 = 16_384;

/// Per-lease bookkeeping the pool holds under its lock.
#[derive(Debug)]
struct LeaseEntry {
    id: u64,
    granted: u64,
    revoked: Arc<AtomicBool>,
}

#[derive(Debug, Default)]
struct PoolState {
    /// Sum of all live grants; invariant: `used <= capacity` and
    /// `used == leases.iter().map(|l| l.granted).sum()`.
    used: u64,
    leases: Vec<LeaseEntry>,
    next_id: u64,
}

/// The shared, fixed-capacity memory budget all queries draw from.
///
/// Cheap to share (`Arc<MemoryPool>`); all mutation goes through one
/// internal mutex plus a condvar that wakes waiters when budget frees.
///
/// The load-bearing invariant is *drop balances to zero*: every cell a
/// lease ever acquired returns to the pool when the lease drops, so after
/// the last lease is gone `in_use()` is exactly zero — no leaked budget,
/// even on error and revocation paths.
///
/// ```
/// use ic_common::{MemoryPool, LEASE_CHUNK_CELLS};
///
/// let pool = MemoryPool::new(4 * LEASE_CHUNK_CELLS);
/// {
///     let lease = pool.lease(u64::MAX);
///     lease.reserve(100).unwrap();
///     assert_eq!(pool.in_use(), LEASE_CHUNK_CELLS); // chunk-granular
/// } // lease drops here
/// assert_eq!(pool.in_use(), 0);
/// assert_eq!(pool.active_leases(), 0);
/// ```
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    grant_timeout: Duration,
    state: Mutex<PoolState>,
    freed: Condvar,
    peak_used: AtomicU64,
    revocations: AtomicU64,
    /// Global `mem.lease.grants` handle, resolved once at construction so
    /// the grant path never touches the registry lock.
    m_grants: Arc<crate::obs::Counter>,
    /// Global `mem.lease.revocations` handle (same caching rationale).
    m_revocations: Arc<crate::obs::Counter>,
}

fn lock_state(pool: &MemoryPool) -> MutexGuard<'_, PoolState> {
    // A poisoned pool mutex only means another query's thread panicked
    // while holding it; the counters themselves stay consistent because
    // every mutation is a single arithmetic update.
    pool.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl MemoryPool {
    /// A pool with `capacity` cells and the default 500 ms grant timeout.
    pub fn new(capacity: u64) -> Arc<Self> {
        Self::with_grant_timeout(capacity, Duration::from_millis(500))
    }

    /// A pool with an explicit bound on how long a starved lease waits for
    /// freed budget before revoking itself.
    pub fn with_grant_timeout(capacity: u64, grant_timeout: Duration) -> Arc<Self> {
        let reg = crate::obs::MetricsRegistry::global();
        Arc::new(MemoryPool {
            capacity,
            grant_timeout,
            state: Mutex::new(PoolState::default()),
            freed: Condvar::new(),
            peak_used: AtomicU64::new(0),
            revocations: AtomicU64::new(0),
            m_grants: reg.counter("mem.lease.grants"),
            m_revocations: reg.counter("mem.lease.revocations"),
        })
    }

    /// An effectively infinite pool, for standalone executor use (tests,
    /// direct `execute_plan` callers) where only the per-lease limit —
    /// the old per-query `memory_limit_rows` semantics — should apply.
    pub fn unbounded() -> Arc<Self> {
        Self::new(u64::MAX)
    }

    /// Open a lease capped at `limit` cells (the per-query memory limit).
    pub fn lease(self: &Arc<Self>, limit: u64) -> MemoryLease {
        let mut st = lock_state(self);
        let id = st.next_id;
        st.next_id += 1;
        let revoked = Arc::new(AtomicBool::new(false));
        st.leases.push(LeaseEntry { id, granted: 0, revoked: Arc::clone(&revoked) });
        MemoryLease {
            pool: Arc::clone(self),
            id,
            limit,
            revoked,
            used: AtomicU64::new(0),
            granted: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            limit_hit: AtomicU64::new(0),
        }
    }

    /// Total cells currently granted out. Zero once every lease has
    /// dropped — the "pool leaks no budget" invariant the chaos tests and
    /// the overload bench assert.
    pub fn in_use(&self) -> u64 {
        lock_state(self).used
    }

    /// Number of live (not yet dropped) leases.
    pub fn active_leases(&self) -> usize {
        lock_state(self).leases.len()
    }

    /// Fixed pool size in cells (rows × arity), set at construction.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// High-water mark of granted cells over the pool's lifetime.
    pub fn peak_used(&self) -> u64 {
        self.peak_used.load(Ordering::Relaxed)
    }

    /// Total leases ever revoked (victim or self) under pressure.
    pub fn revocations(&self) -> u64 {
        self.revocations.load(Ordering::Relaxed)
    }

    /// Count one revocation in both the pool-local counter and the global
    /// `mem.lease.revocations` metric.
    fn note_revocation(&self) {
        self.revocations.fetch_add(1, Ordering::Relaxed);
        self.m_revocations.inc();
    }
}

/// One query's revocable claim on the shared pool.
///
/// Shared across the query's fragment threads (behind the executor's
/// `Arc<ControlBlock>`); `reserve` is lock-free while the current chunk
/// lasts. Dropping the lease returns its whole grant to the pool and wakes
/// waiters.
///
/// The two failure modes split on retryability:
///
/// - [`IcError::ResourcesRevoked`] — this lease lost the revocation
///   protocol (victim or self-revoked under starvation). *Client*-
///   retryable: the pressure is transient, so resubmitting later can
///   succeed. Never failover-retryable — replanning around a "dead" site
///   cannot conjure memory.
/// - [`IcError::MemoryLimit`] — the per-query cap or the whole pool is
///   smaller than the query's working set. Terminal: retrying reproduces
///   the same demand.
///
/// ```
/// use ic_common::{IcError, MemoryPool, LEASE_CHUNK_CELLS};
/// use std::time::Duration;
///
/// let pool = MemoryPool::with_grant_timeout(2 * LEASE_CHUNK_CELLS, Duration::from_millis(20));
/// let hog = pool.lease(u64::MAX);
/// hog.reserve(2 * LEASE_CHUNK_CELLS).unwrap();
///
/// // The starved second lease revokes the hog, waits out the grant
/// // timeout, then self-revokes with the *retryable* error…
/// let err = pool.lease(u64::MAX).reserve(1).unwrap_err();
/// assert!(matches!(err, IcError::ResourcesRevoked { .. }));
/// assert!(err.is_retryable() && !err.is_failover_retryable());
/// assert!(hog.is_revoked());
///
/// // …whereas a solo lease outgrowing the pool is a terminal limit.
/// drop(hog);
/// let err = pool.lease(u64::MAX).reserve(3 * LEASE_CHUNK_CELLS).unwrap_err();
/// assert!(matches!(err, IcError::MemoryLimit { .. }));
/// assert!(!err.is_retryable());
/// ```
#[derive(Debug)]
pub struct MemoryLease {
    pool: Arc<MemoryPool>,
    id: u64,
    /// Per-query cap (cells) — the old `memory_limit_rows` semantics.
    limit: u64,
    revoked: Arc<AtomicBool>,
    used: AtomicU64,
    /// Local mirror of the pool-side grant; refreshed under the pool lock.
    granted: AtomicU64,
    peak: AtomicU64,
    /// Nonzero once the per-query or pool limit was exceeded; records the
    /// limit that fired so the runtime can surface an exact `MemoryLimit`.
    limit_hit: AtomicU64,
}

impl MemoryLease {
    /// Account `cells` more buffered cells against this lease, acquiring
    /// more pool budget (possibly revoking a victim, possibly blocking
    /// briefly) when the current chunk is exhausted.
    pub fn reserve(&self, cells: u64) -> IcResult<()> {
        if self.revoked.load(Ordering::Relaxed) {
            return Err(self.revoked_error());
        }
        let used = self.used.fetch_add(cells, Ordering::Relaxed) + cells;
        self.peak.fetch_max(used, Ordering::Relaxed);
        if used > self.limit {
            self.limit_hit.store(self.limit, Ordering::Relaxed);
            return Err(IcError::MemoryLimit { limit_rows: self.limit });
        }
        if used > self.granted.load(Ordering::Relaxed) {
            self.acquire_grant(used)?;
        }
        Ok(())
    }

    /// Grow the pool-side grant to cover at least `min_target` cells,
    /// rounded up to the chunk size. Runs the revocation protocol under
    /// pressure (see module docs).
    fn acquire_grant(&self, min_target: u64) -> IcResult<()> {
        let wait_deadline = Instant::now() + self.pool.grant_timeout;
        let mut st = lock_state(&self.pool);
        loop {
            if self.revoked.load(Ordering::Relaxed) {
                return Err(self.revoked_error());
            }
            let Some(idx) = st.leases.iter().position(|l| l.id == self.id) else {
                return Err(IcError::Internal("memory lease missing from its pool".into()));
            };
            // Another of this query's threads may have grown the grant
            // while we waited for the lock; recompute against live `used`.
            let need = self.used.load(Ordering::Relaxed).max(min_target);
            let target = round_up_chunk(need);
            let have = st.leases[idx].granted;
            if have >= target {
                self.granted.fetch_max(have, Ordering::Relaxed);
                return Ok(());
            }
            let want = target - have;
            if self.pool.capacity - st.used >= want {
                st.used += want;
                st.leases[idx].granted += want;
                let granted = st.leases[idx].granted;
                self.pool.peak_used.fetch_max(st.used, Ordering::Relaxed);
                self.granted.fetch_max(granted, Ordering::Relaxed);
                self.pool.m_grants.inc();
                return Ok(());
            }

            // Pressure: pick the victim — largest live grant, oldest wins
            // ties, so the decision is deterministic under replay.
            let victim = st
                .leases
                .iter()
                .filter(|l| !l.revoked.load(Ordering::Relaxed))
                .max_by_key(|l| (l.granted, std::cmp::Reverse(l.id)))
                .map(|l| (l.id, Arc::clone(&l.revoked)));
            match victim {
                Some((vid, flag)) if vid != self.id => {
                    flag.store(true, Ordering::Relaxed);
                    self.pool.note_revocation();
                    // Fall through and wait for the victim to unwind.
                }
                _ => {
                    // We hold the largest grant ourselves (or everyone else
                    // is already revoked). If nothing else holds budget,
                    // waiting cannot help: the pool is too small, period.
                    let others: u64 =
                        st.leases.iter().filter(|l| l.id != self.id).map(|l| l.granted).sum();
                    if others == 0 {
                        self.limit_hit.store(self.pool.capacity, Ordering::Relaxed);
                        return Err(IcError::MemoryLimit { limit_rows: self.pool.capacity });
                    }
                    self.revoked.store(true, Ordering::Relaxed);
                    self.pool.note_revocation();
                    return Err(self.revoked_error());
                }
            }

            let now = Instant::now();
            if now >= wait_deadline {
                self.revoked.store(true, Ordering::Relaxed);
                self.pool.note_revocation();
                return Err(self.revoked_error());
            }
            let step = (wait_deadline - now).min(Duration::from_millis(10));
            let (guard, _) = self
                .pool
                .freed
                .wait_timeout(st, step)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Raised by the pool when this lease was chosen as a revocation
    /// victim; checked cooperatively at batch boundaries.
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Relaxed)
    }

    /// Force-revoke (used by tests and the governor's shutdown path).
    pub fn revoke(&self) {
        if !self.revoked.swap(true, Ordering::Relaxed) {
            self.pool.note_revocation();
        }
        self.pool.freed.notify_all();
    }

    /// The error a revoked query surfaces.
    pub fn revoked_error(&self) -> IcError {
        IcError::ResourcesRevoked { lease_cells: self.granted.load(Ordering::Relaxed) }
    }

    /// Which limit (per-query or pool capacity) was exceeded, if any.
    pub fn limit_hit(&self) -> Option<u64> {
        match self.limit_hit.load(Ordering::Relaxed) {
            0 => None,
            l => Some(l),
        }
    }

    /// Cells currently accounted against this lease.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of cells accounted against this lease.
    pub fn peak_used(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// The pool this lease draws from.
    pub fn pool(&self) -> &Arc<MemoryPool> {
        &self.pool
    }
}

impl Drop for MemoryLease {
    fn drop(&mut self) {
        let mut st = lock_state(&self.pool);
        if let Some(pos) = st.leases.iter().position(|l| l.id == self.id) {
            let entry = st.leases.swap_remove(pos);
            st.used = st.used.saturating_sub(entry.granted);
        }
        drop(st);
        self.pool.freed.notify_all();
    }
}

fn round_up_chunk(cells: u64) -> u64 {
    match cells.checked_add(LEASE_CHUNK_CELLS - 1) {
        Some(n) => (n / LEASE_CHUNK_CELLS) * LEASE_CHUNK_CELLS,
        None => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn reserve_within_limit_succeeds_and_tracks_peak() {
        let pool = MemoryPool::new(1_000_000);
        let lease = pool.lease(100_000);
        lease.reserve(10).unwrap();
        lease.reserve(90).unwrap();
        assert_eq!(lease.used(), 100);
        assert_eq!(lease.peak_used(), 100);
        // First chunk acquired from the pool.
        assert_eq!(pool.in_use(), LEASE_CHUNK_CELLS);
        assert!(pool.peak_used() >= LEASE_CHUNK_CELLS);
    }

    #[test]
    fn per_query_limit_fires_before_pool() {
        let pool = MemoryPool::new(1_000_000);
        let lease = pool.lease(500);
        let err = lease.reserve(501).unwrap_err();
        assert_eq!(err, IcError::MemoryLimit { limit_rows: 500 });
        assert_eq!(lease.limit_hit(), Some(500));
        assert!(!err.is_retryable());
    }

    #[test]
    fn solo_lease_exceeding_pool_is_terminal_memory_limit() {
        let pool = MemoryPool::new(LEASE_CHUNK_CELLS);
        let lease = pool.lease(u64::MAX);
        let err = lease.reserve(LEASE_CHUNK_CELLS + 1).unwrap_err();
        assert_eq!(err, IcError::MemoryLimit { limit_rows: LEASE_CHUNK_CELLS });
        assert!(!err.is_retryable());
    }

    #[test]
    fn pressure_revokes_the_largest_lease() {
        // Pool fits three chunks; big takes two, small takes one, then
        // small needs another -> big (largest) is revoked.
        let pool = MemoryPool::with_grant_timeout(3 * LEASE_CHUNK_CELLS, Duration::from_secs(5));
        let big = pool.lease(u64::MAX);
        big.reserve(2 * LEASE_CHUNK_CELLS).unwrap();
        let small = pool.lease(u64::MAX);
        small.reserve(LEASE_CHUNK_CELLS).unwrap();
        assert_eq!(pool.in_use(), 3 * LEASE_CHUNK_CELLS);

        // The requester blocks until the victim's lease drops, so run the
        // victim's unwind on another thread (as the real executor does).
        let waiter = thread::spawn(move || small.reserve(1).map(|_| small.used()));
        // Busy-wait for the revocation flag, then drop `big` to free budget.
        let t0 = Instant::now();
        while !big.is_revoked() && t0.elapsed() < Duration::from_secs(5) {
            thread::yield_now();
        }
        assert!(big.is_revoked(), "largest lease should be chosen as victim");
        assert!(matches!(big.revoked_error(), IcError::ResourcesRevoked { .. }));
        drop(big);
        let used = waiter.join().expect("waiter panicked").expect("waiter should get budget");
        assert_eq!(used, LEASE_CHUNK_CELLS + 1);
        assert_eq!(pool.revocations(), 1);
    }

    #[test]
    fn starved_requester_self_revokes_after_timeout() {
        // Victim is revoked but never unwinds -> the waiter gives up and
        // self-revokes with a retryable error.
        let pool = MemoryPool::with_grant_timeout(2 * LEASE_CHUNK_CELLS, Duration::from_millis(30));
        let hog = pool.lease(u64::MAX);
        hog.reserve(2 * LEASE_CHUNK_CELLS).unwrap();
        let small = pool.lease(u64::MAX);
        let err = small.reserve(1).unwrap_err();
        assert!(matches!(err, IcError::ResourcesRevoked { .. }));
        assert!(err.is_retryable());
        assert!(hog.is_revoked());
    }

    #[test]
    fn drop_returns_every_cell_to_the_pool() {
        let pool = MemoryPool::new(10 * LEASE_CHUNK_CELLS);
        {
            let a = pool.lease(u64::MAX);
            let b = pool.lease(u64::MAX);
            a.reserve(3 * LEASE_CHUNK_CELLS).unwrap();
            b.reserve(100).unwrap();
            assert!(pool.in_use() > 0);
            assert_eq!(pool.active_leases(), 2);
        }
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.active_leases(), 0);
    }

    #[test]
    fn concurrent_leases_never_exceed_capacity_and_balance_to_zero() {
        let pool = MemoryPool::with_grant_timeout(8 * LEASE_CHUNK_CELLS, Duration::from_millis(50));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            handles.push(thread::spawn(move || {
                for _ in 0..20 {
                    let lease = pool.lease(u64::MAX);
                    // Mixed sizes force chunk growth and occasional pressure.
                    let _ = lease.reserve(LEASE_CHUNK_CELLS / 2);
                    let _ = lease.reserve(2 * LEASE_CHUNK_CELLS);
                    assert!(pool.in_use() <= pool.capacity());
                }
            }));
        }
        for h in handles {
            h.join().expect("worker panicked");
        }
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.active_leases(), 0);
        assert!(pool.peak_used() <= pool.capacity());
    }
}
