//! Shared substrate for the Ignite+Calcite reproduction.
//!
//! This crate defines the row/value model ([`Datum`], [`Row`]), schemas
//! ([`Schema`], [`Field`], [`DataType`]), scalar expressions and their
//! evaluator ([`expr::Expr`]), aggregate functions ([`agg`]), date helpers
//! ([`dates`]) and the common error type ([`IcError`]).
//!
//! Everything above this crate — storage, SQL frontend, planner, executor —
//! speaks these types, mirroring how Apache Calcite's `RexNode`/`RelDataType`
//! layer underpins the whole Ignite+Calcite stack.

#![deny(missing_docs)]

pub mod agg;
pub mod col;
pub mod datum;
pub mod dates;
pub mod error;
pub mod expr;
pub mod hash;
pub mod lease;
pub mod obs;
pub mod row;
pub mod schema;

pub use col::{Bitmap, Column, ColumnBatch, ColumnBuilder, ColumnData};
pub use datum::{DataType, Datum};
pub use error::{IcError, IcResult};
pub use expr::{BinOp, Expr, FuncKind};
pub use hash::{FlatMap, FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use lease::{MemoryLease, MemoryPool, LEASE_CHUNK_CELLS};
pub use row::{Batch, Row};
pub use schema::{Field, Schema};
