//! Fast non-cryptographic hashing for hash joins, hash aggregation and hash
//! partitioning.
//!
//! [`FxHasher`] is the rustc-style multiply-xor hasher: one wrapping multiply
//! and a rotate per word instead of SipHash's four rounds. Quality is far
//! below cryptographic but ample for hash tables and partition routing, and
//! it is 5–10× cheaper per key — which matters because `Row::hash_key` sits
//! on the hot path of every hash join build/probe, every grouped aggregation
//! and every hash-distributed exchange.
//!
//! The module also provides [`FlatMap`], an open-addressing table keyed by
//! precomputed 64-bit hashes with `u32` payloads. Execution kernels use it
//! to map key hashes to arena/group indices without materializing owned
//! `Vec<Datum>` keys per probe (see `ic-exec`'s kernels).

use std::hash::{BuildHasherDefault, Hasher};

/// Seed constant from FxHash (`0x51_7c_c1_b7_27_22_0a_95` ≈ 2^64 / φ),
/// an odd multiplier that diffuses low-order key bits across the word.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// FxHash-style hasher: `state = (rotl(state, 5) ^ word) * SEED` per word.
///
/// Deterministic (no per-process random state), so hashes are stable across
/// sites — a requirement for hash-distribution routing, where the planner on
/// the coordinator and the exchange operators on every site must agree on
/// `hash(key) % partitions`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    /// Finalizing xor-multiply-xor mix. The per-word multiply only diffuses
    /// bits upward, so inputs differing solely in high bits (e.g. small
    /// integers hashed through their f64 bit pattern, whose low mantissa
    /// bits are all zero) would otherwise share their entire low hash half —
    /// catastrophic for any table that indexes by low bits.
    #[inline]
    fn finish(&self) -> u64 {
        let mut h = self.state;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (chunk, rest) = bytes.split_at(8);
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
            bytes = rest;
        }
        if !bytes.is_empty() {
            let mut tail = [0u8; 8];
            tail[..bytes.len()].copy_from_slice(bytes);
            // Fold the tail length in so "ab" + "c" != "a" + "bc".
            tail[7] = bytes.len() as u8;
            self.add_word(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add_word(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap`/`HashSet` as
/// `HashMap<K, V, FxBuildHasher>`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `std::collections::HashMap` with the fast deterministic hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `std::collections::HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Fold a 64-bit hash into a table index for a power-of-two capacity.
///
/// Plain truncation: [`FxHasher::finish`] already folds the high half down
/// with its xor-multiply-xor mix. (Do NOT "strengthen" this with another
/// `h ^ h >> 32` — xor-shift is an involution, so it would exactly cancel
/// the final shift in `finish` and resurface the unmixed multiply output,
/// whose low bits are constant across keys that differ only in high input
/// bits.)
#[inline]
pub fn fold_hash(hash: u64, mask: usize) -> usize {
    (hash as usize) & mask
}

/// Open-addressing hash table from precomputed 64-bit hashes to `u32`
/// payloads (row/group indices). Linear probing, power-of-two capacity,
/// grows at 7/8 load. The caller resolves hash collisions by comparing the
/// actual keys behind the payload (`insert_with` takes an equality closure),
/// so the table itself never stores or clones key datums.
#[derive(Debug, Clone)]
pub struct FlatMap {
    /// `(hash, payload)` pairs in one array so a probe step touches one
    /// cache line, not two. Slot empty ⇔ payload is [`FlatMap::EMPTY`].
    entries: Vec<(u64, u32)>,
    len: usize,
    mask: usize,
}

impl FlatMap {
    /// Sentinel payload marking an empty slot (so no separate tag array).
    pub const EMPTY: u32 = u32::MAX;

    /// A table sized to hold `cap` entries without growing.
    pub fn with_capacity(cap: usize) -> FlatMap {
        let slots = (cap.max(8) * 8 / 7).next_power_of_two();
        FlatMap { entries: vec![(0, Self::EMPTY); slots], len: 0, mask: slots - 1 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Look up `hash`, resolving collisions with `eq(payload)` on candidate
    /// entries whose stored hash matches exactly.
    #[inline]
    pub fn get(&self, hash: u64, mut eq: impl FnMut(u32) -> bool) -> Option<u32> {
        let mut slot = fold_hash(hash, self.mask);
        loop {
            let (h, payload) = self.entries[slot];
            if payload == Self::EMPTY {
                return None;
            }
            if h == hash && eq(payload) {
                return Some(payload);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Find `hash`'s payload or insert the one produced by `make()`.
    /// Returns `(payload, inserted)`.
    #[inline]
    pub fn get_or_insert(
        &mut self,
        hash: u64,
        mut eq: impl FnMut(u32) -> bool,
        make: impl FnOnce() -> u32,
    ) -> (u32, bool) {
        if self.len * 8 >= (self.mask + 1) * 7 {
            self.grow();
        }
        let mut slot = fold_hash(hash, self.mask);
        loop {
            let (h, payload) = self.entries[slot];
            if payload == Self::EMPTY {
                let new_payload = make();
                debug_assert_ne!(new_payload, Self::EMPTY);
                self.entries[slot] = (hash, new_payload);
                self.len += 1;
                return (new_payload, true);
            }
            if h == hash && eq(payload) {
                return (payload, false);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    // ic-lint: allow(L012) because rehash allocation is amortized doubling: it runs once per capacity doubling, not per insert
    fn grow(&mut self) {
        let new_slots = (self.mask + 1) * 2;
        let old =
            std::mem::replace(&mut self.entries, vec![(0, Self::EMPTY); new_slots]);
        self.mask = new_slots - 1;
        for (hash, payload) in old {
            if payload == Self::EMPTY {
                continue;
            }
            let mut slot = fold_hash(hash, self.mask);
            while self.entries[slot].1 != Self::EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.entries[slot] = (hash, payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fxhash<T: Hash>(v: &T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(fxhash(&42u64), fxhash(&42u64));
        assert_ne!(fxhash(&42u64), fxhash(&43u64));
    }

    #[test]
    fn sequential_ints_spread_over_low_bits() {
        // 1024 uniformly random keys into 1024 slots occupy ~1-1/e ≈ 64% of
        // them; clustering failure modes land far below that.
        let mask = 1023usize;
        let mut seen = std::collections::HashSet::new();
        for i in 0i64..1024 {
            seen.insert(fold_hash(fxhash(&i), mask));
        }
        assert!(seen.len() > 550, "only {} distinct slots", seen.len());
    }

    #[test]
    fn f64_bit_ints_spread_over_low_bits() {
        // Small integers hash through their f64 bit pattern (`Datum`'s
        // numeric canonicalization), which varies only in high bits; the
        // finish mix must still spread them across table slots.
        let mask = 2047usize;
        let mut seen = std::collections::HashSet::new();
        for i in 0i64..1024 {
            let mut h = FxHasher::default();
            h.write_u8(2);
            h.write_u64((i as f64).to_bits());
            seen.insert(fold_hash(h.finish(), mask));
        }
        assert!(seen.len() > 700, "only {} distinct slots", seen.len());
    }

    #[test]
    fn str_tail_disambiguates() {
        assert_ne!(fxhash(&"abcdefgh1"), fxhash(&"abcdefgh2"));
        assert_ne!(fxhash(&"a"), fxhash(&"ab"));
    }

    #[test]
    fn flatmap_insert_get_grow() {
        let keys: Vec<i64> = (0..10_000).map(|i| i * 3 + 1).collect();
        let mut map = FlatMap::with_capacity(4);
        let mut stored: Vec<i64> = Vec::new();
        for &k in &keys {
            let h = fxhash(&k);
            let (payload, inserted) = map.get_or_insert(
                h,
                |p| stored[p as usize] == k,
                || stored.len() as u32,
            );
            if inserted {
                assert_eq!(payload as usize, stored.len());
                stored.push(k);
            }
        }
        assert_eq!(map.len(), keys.len());
        for (i, &k) in keys.iter().enumerate() {
            let h = fxhash(&k);
            assert_eq!(map.get(h, |p| stored[p as usize] == k), Some(i as u32));
        }
        assert_eq!(map.get(fxhash(&-7i64), |p| stored[p as usize] == -7), None);
    }

    #[test]
    fn flatmap_duplicate_inserts_return_existing() {
        let mut map = FlatMap::with_capacity(8);
        let stored = [5i64];
        for _ in 0..3 {
            let (payload, _) = map.get_or_insert(99, |p| stored[p as usize] == 5i64, || 0);
            assert_eq!(payload, 0);
        }
        assert_eq!(map.len(), 1);
    }
}
