//! Runtime values ([`Datum`]) and their types ([`DataType`]).
//!
//! The value model is deliberately small: TPC-H and SSB only need integers,
//! decimals (modelled as `f64`, sufficient for plan-shape reproduction),
//! fixed/variable strings, dates and booleans. Strings are reference-counted
//! so rows can be cloned cheaply as they flow between operators and across
//! the simulated network.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Logical column type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// SQL BOOLEAN.
    Bool,
    /// SQL BIGINT (64-bit signed).
    Int,
    /// SQL DOUBLE; also models DECIMAL.
    Double,
    /// SQL VARCHAR/CHAR.
    Str,
    /// Days since 1970-01-01.
    Date,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "BIGINT",
            DataType::Double => "DOUBLE",
            DataType::Str => "VARCHAR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

/// A single runtime value.
///
/// SQL `NULL` is an explicit variant; comparison helpers implement SQL
/// three-valued logic at the expression layer, while the [`Ord`] impl gives a
/// total order (NULL first) used by sort operators and BTree indexes.
#[derive(Debug, Clone)]
pub enum Datum {
    /// SQL NULL.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A double (also models DECIMAL).
    Double(f64),
    /// A reference-counted string.
    Str(Arc<str>),
    /// Days since the Unix epoch.
    Date(i32),
}

impl Datum {
    /// Construct a string datum.
    pub fn str(s: impl AsRef<str>) -> Datum {
        Datum::Str(Arc::from(s.as_ref()))
    }

    /// Is this the NULL variant?
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// The runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Datum::Null => None,
            Datum::Bool(_) => Some(DataType::Bool),
            Datum::Int(_) => Some(DataType::Int),
            Datum::Double(_) => Some(DataType::Double),
            Datum::Str(_) => Some(DataType::Str),
            Datum::Date(_) => Some(DataType::Date),
        }
    }

    /// Approximate in-memory / wire size in bytes, used by the network
    /// simulator and the baseline cost model's byte estimates.
    pub fn byte_size(&self) -> usize {
        match self {
            Datum::Null => 1,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 8,
            Datum::Double(_) => 8,
            Datum::Str(s) => s.len(),
            Datum::Date(_) => 4,
        }
    }

    /// The boolean value, if this is a [`Datum::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Datum::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer value; dates coerce to their day number.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Datum::Int(i) => Some(*i),
            Datum::Date(d) => Some(*d as i64),
            _ => None,
        }
    }

    /// The double value; integers coerce.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Datum::Double(d) => Some(*d),
            Datum::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The string value, if this is a [`Datum::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Datum::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion rank used when comparing Int and Double.
    fn numeric(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// SQL comparison: returns `None` if either side is NULL, otherwise the
    /// ordering. Mixed Int/Double comparisons coerce to double, as the
    /// binder's implicit numeric casts would in Calcite.
    pub fn sql_cmp(&self, other: &Datum) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Datum::Int(a), Datum::Int(b)) => Some(a.cmp(b)),
            (Datum::Date(a), Datum::Date(b)) => Some(a.cmp(b)),
            (Datum::Str(a), Datum::Str(b)) => Some(a.as_ref().cmp(b.as_ref())),
            (Datum::Bool(a), Datum::Bool(b)) => Some(a.cmp(b)),
            (Datum::Date(a), Datum::Int(b)) => Some((*a as i64).cmp(b)),
            (Datum::Int(a), Datum::Date(b)) => Some(a.cmp(&(*b as i64))),
            _ => {
                let (a, b) = (self.numeric()?, other.numeric()?);
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for Datum {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Datum::Null, Datum::Null) => true,
            _ => self.sql_cmp(other) == Some(Ordering::Equal),
        }
    }
}

impl Eq for Datum {}

/// Total order used by sorts and indexes: NULL sorts first; across types we
/// fall back to a type-rank order (never hit by well-typed plans).
impl Ord for Datum {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        if let Some(ord) = self.sql_cmp(other) {
            return ord;
        }
        self.type_rank().cmp(&other.type_rank())
    }
}

impl PartialOrd for Datum {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Datum {
    fn type_rank(&self) -> u8 {
        match self {
            Datum::Null => 0,
            Datum::Bool(_) => 1,
            Datum::Int(_) => 2,
            Datum::Double(_) => 3,
            Datum::Date(_) => 4,
            Datum::Str(_) => 5,
        }
    }
}

impl Hash for Datum {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Datum::Null => 0u8.hash(state),
            Datum::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Double that compare equal must hash equal: hash every
            // numeric through its f64 bits when it is representable, and the
            // raw i64 otherwise.
            Datum::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Datum::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Datum::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            // Date compares equal to Int of the same day count, so it must
            // hash identically (numeric tag).
            Datum::Date(d) => {
                2u8.hash(state);
                (*d as f64).to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => f.write_str("NULL"),
            Datum::Bool(b) => write!(f, "{b}"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Double(d) => write!(f, "{d:.4}"),
            Datum::Str(s) => write!(f, "{s}"),
            Datum::Date(d) => {
                let (y, m, dd) = crate::dates::from_epoch_days(*d);
                write!(f, "{y:04}-{m:02}-{dd:02}")
            }
        }
    }
}

impl From<i64> for Datum {
    fn from(v: i64) -> Self {
        Datum::Int(v)
    }
}
impl From<f64> for Datum {
    fn from(v: f64) -> Self {
        Datum::Double(v)
    }
}
impl From<bool> for Datum {
    fn from(v: bool) -> Self {
        Datum::Bool(v)
    }
}
impl From<&str> for Datum {
    fn from(v: &str) -> Self {
        Datum::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(d: &Datum) -> u64 {
        let mut h = DefaultHasher::new();
        d.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_ordering_is_first() {
        assert!(Datum::Null < Datum::Int(i64::MIN));
        assert_eq!(Datum::Null.cmp(&Datum::Null), Ordering::Equal);
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Datum::Null.sql_cmp(&Datum::Int(1)), None);
        assert_eq!(Datum::Int(1).sql_cmp(&Datum::Null), None);
    }

    #[test]
    fn mixed_numeric_compare() {
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Double(2.0)), Some(Ordering::Equal));
        assert_eq!(Datum::Int(2).sql_cmp(&Datum::Double(2.5)), Some(Ordering::Less));
        assert_eq!(Datum::Double(3.0).sql_cmp(&Datum::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn int_double_equal_hash_equal() {
        let a = Datum::Int(7);
        let b = Datum::Double(7.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn string_ordering() {
        assert!(Datum::str("apple") < Datum::str("banana"));
        assert_eq!(Datum::str("x"), Datum::str("x"));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Datum::Int(1).byte_size(), 8);
        assert_eq!(Datum::str("abcd").byte_size(), 4);
        assert_eq!(Datum::Date(0).byte_size(), 4);
    }

    #[test]
    fn date_display() {
        assert_eq!(Datum::Date(0).to_string(), "1970-01-01");
    }

    #[test]
    fn data_types() {
        assert_eq!(Datum::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Datum::Null.data_type(), None);
        assert_eq!(DataType::Str.to_string(), "VARCHAR");
    }
}
