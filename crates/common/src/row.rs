//! Rows and batches — the unit of data flow between operators.

use crate::datum::Datum;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single tuple. Cloning is cheap-ish: fixed-width datums copy, strings
/// bump a refcount.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row(pub Vec<Datum>);

impl Row {
    /// Build a row from its datums.
    pub fn new(values: Vec<Datum>) -> Row {
        Row(values)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The datum in column `i` (panics when out of range).
    pub fn get(&self, i: usize) -> &Datum {
        &self.0[i]
    }

    /// Approximate wire/memory size in bytes (used by the network simulator
    /// and the baseline byte-based cost model).
    pub fn byte_size(&self) -> usize {
        self.0.iter().map(Datum::byte_size).sum()
    }

    /// Concatenate two rows (join output).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Project the given column indices into a new row.
    pub fn project(&self, cols: &[usize]) -> Row {
        Row(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Stable hash of a key projection, used for hash partitioning and hash
    /// joins. Must agree between the build and probe side and between the
    /// planner's hash-distribution routing and the executor — all three go
    /// through this one function, and [`crate::hash::FxHasher`] is
    /// deterministic, so swapping the hasher stays coherent across layers.
    /// `Datum`'s `Hash` impl canonicalizes equal numerics (Int 7, Double
    /// 7.0, dates) to the same bits, which this inherits.
    #[inline]
    pub fn hash_key(&self, cols: &[usize]) -> u64 {
        let mut h = crate::hash::FxHasher::default();
        for &c in cols {
            self.0[c].hash(&mut h);
        }
        h.finish()
    }
}

impl fmt::Debug for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "|")?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl From<Vec<Datum>> for Row {
    fn from(v: Vec<Datum>) -> Self {
        Row(v)
    }
}

/// A batch of rows: the unit shipped over exchanges. Batching amortizes
/// channel and simulated-network overhead, like Ignite's message batching.
pub type Batch = Vec<Row>;

/// Default number of rows per batch at exchange boundaries.
pub const BATCH_SIZE: usize = 1024;

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Row {
        Row(vals.iter().map(|&v| Datum::Int(v)).collect())
    }

    #[test]
    fn concat_and_project() {
        let a = r(&[1, 2]);
        let b = r(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.project(&[2, 0]), r(&[3, 1]));
    }

    #[test]
    fn hash_key_depends_only_on_projection() {
        let a = Row(vec![Datum::Int(1), Datum::str("x")]);
        let b = Row(vec![Datum::Int(1), Datum::str("y")]);
        assert_eq!(a.hash_key(&[0]), b.hash_key(&[0]));
        assert_ne!(a.hash_key(&[1]), b.hash_key(&[1]));
    }

    #[test]
    fn byte_size_sums() {
        let a = Row(vec![Datum::Int(1), Datum::str("abc")]);
        assert_eq!(a.byte_size(), 11);
    }

    #[test]
    fn row_ordering() {
        assert!(r(&[1, 2]) < r(&[1, 3]));
        assert!(r(&[1]) < r(&[2]));
    }
}
