//! The per-query trace: hierarchical spans, instant events, and per-attempt
//! operator aggregates, all timestamped from one monotonic clock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of a span within one [`Trace`], allocated in open order.
///
/// Parents are always opened before their children, so `parent.0 < child.0`
/// for every recorded edge — a property the well-formedness checker
/// ([`Trace::validate`]) relies on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u32);

/// A closed span: one timed interval in the query's execution.
#[derive(Debug, Clone)]
pub struct SpanRec {
    /// Open-order id, unique within the trace.
    pub id: SpanId,
    /// Enclosing span, if any. Roots (the `query` span) have `None`.
    pub parent: Option<SpanId>,
    /// Human-readable name, e.g. `"HashJoin"` or `"fragment f1"`.
    pub name: String,
    /// Coarse category used for Chrome-trace colouring and filtering:
    /// `"query"`, `"plan"`, `"exec"`, `"fragment"`, `"operator"`, `"net"`.
    pub cat: &'static str,
    /// Lane (Chrome-trace `tid`): one per fragment-instance thread.
    pub lane: u32,
    /// Start offset from the trace epoch, nanoseconds.
    pub start_ns: u64,
    /// End offset from the trace epoch, nanoseconds.
    pub end_ns: u64,
    /// Attached counters, e.g. `("rows", 1024)`.
    pub args: Vec<(&'static str, u64)>,
}

/// An instant event: something that happened at a point in time
/// (a shed decision, a lease revocation, an injected fault).
#[derive(Debug, Clone)]
pub struct EventRec {
    /// Event name, e.g. `"governor.shed"` or `"net.fault"`.
    pub name: String,
    /// Category, same vocabulary as [`SpanRec::cat`].
    pub cat: &'static str,
    /// Lane the event belongs to.
    pub lane: u32,
    /// Offset from the trace epoch, nanoseconds.
    pub ts_ns: u64,
    /// Free-form detail string (kept out of hot paths).
    pub detail: String,
}

/// Static description of one physical plan node, captured when an execution
/// attempt registers its plan with the trace.
#[derive(Debug, Clone)]
pub struct OpMeta {
    /// Operator label as printed by `plan::explain` (e.g. `"HashJoin"`).
    pub label: String,
    /// Distribution / detail suffix rendered after the label.
    pub detail: String,
    /// Pre-order index of the parent node; `None` for the root.
    pub parent: Option<u32>,
    /// Depth in the plan tree (root = 0); drives indentation.
    pub depth: u32,
    /// Optimizer's row-count estimate for this node.
    pub est_rows: f64,
}

/// Per-node observed totals, accumulated across all parallel instances of
/// the operator (fragments × sites × variants). All counters are atomics
/// bumped at batch granularity — never per row.
#[derive(Debug, Default)]
struct OpAgg {
    rows: AtomicU64,
    batches: AtomicU64,
    busy_ns: AtomicU64,
    shipped_bytes: AtomicU64,
    instances: AtomicU64,
}

/// Estimated-vs-actual table for one execution attempt.
///
/// A failover retry re-plans against the surviving sites, so each attempt
/// registers its own `AttemptStats`; `EXPLAIN ANALYZE` renders the last
/// one (the attempt that produced the result).
pub struct AttemptStats {
    ops: Vec<OpMeta>,
    aggs: Vec<OpAgg>,
}

impl fmt::Debug for AttemptStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttemptStats").field("ops", &self.ops.len()).finish()
    }
}

impl AttemptStats {
    /// Build an empty aggregate table over a pre-order enumeration of the
    /// physical plan.
    pub fn new(ops: Vec<OpMeta>) -> AttemptStats {
        let aggs = ops.iter().map(|_| OpAgg::default()).collect();
        AttemptStats { ops, aggs }
    }

    /// The registered plan nodes, in pre-order.
    pub fn ops(&self) -> &[OpMeta] {
        &self.ops
    }

    /// Record one `next_batch` call against node `node`: `rows` rows
    /// emitted (0 at EOF), `busy_ns` spent inside the operator subtree,
    /// `produced` whether a batch came back.
    pub fn record_next(&self, node: u32, rows: u64, busy_ns: u64, produced: bool) {
        if let Some(agg) = self.aggs.get(node as usize) {
            agg.rows.fetch_add(rows, Ordering::Relaxed);
            agg.busy_ns.fetch_add(busy_ns, Ordering::Relaxed);
            if produced {
                agg.batches.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Credit `bytes` of network payload received on behalf of node `node`
    /// (an Exchange consumer).
    pub fn record_shipped(&self, node: u32, bytes: u64) {
        if let Some(agg) = self.aggs.get(node as usize) {
            agg.shipped_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Count one runtime instance of node `node` (an operator is
    /// instantiated once per fragment × site × variant).
    pub fn record_instance(&self, node: u32) {
        if let Some(agg) = self.aggs.get(node as usize) {
            agg.instances.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total rows emitted by node `node` across all instances.
    pub fn rows(&self, node: u32) -> u64 {
        self.aggs.get(node as usize).map_or(0, |a| a.rows.load(Ordering::Relaxed))
    }

    /// Total non-empty batches emitted by node `node`.
    pub fn batches(&self, node: u32) -> u64 {
        self.aggs.get(node as usize).map_or(0, |a| a.batches.load(Ordering::Relaxed))
    }

    /// Total time spent inside node `node`'s subtree (inclusive), ns.
    pub fn busy_ns(&self, node: u32) -> u64 {
        self.aggs.get(node as usize).map_or(0, |a| a.busy_ns.load(Ordering::Relaxed))
    }

    /// Network bytes received on behalf of node `node`.
    pub fn shipped_bytes(&self, node: u32) -> u64 {
        self.aggs.get(node as usize).map_or(0, |a| a.shipped_bytes.load(Ordering::Relaxed))
    }

    /// Number of runtime instances of node `node` that were built.
    pub fn instances(&self, node: u32) -> u64 {
        self.aggs.get(node as usize).map_or(0, |a| a.instances.load(Ordering::Relaxed))
    }

    /// Exclusive (self) time of node `node`: inclusive busy time minus the
    /// inclusive busy time of its direct children, clamped at zero.
    ///
    /// Across an Exchange boundary producer and consumer run on different
    /// threads, so a consumer's self-time includes waiting for the wire —
    /// which is exactly the shipping cost the paper attributes there.
    pub fn self_ns(&self, node: u32) -> u64 {
        let mut child_ns = 0u64;
        for (i, op) in self.ops.iter().enumerate() {
            if op.parent == Some(node) {
                child_ns = child_ns.saturating_add(self.busy_ns(i as u32));
            }
        }
        self.busy_ns(node).saturating_sub(child_ns)
    }
}

#[derive(Default)]
struct TraceState {
    spans: Vec<SpanRec>,
    events: Vec<EventRec>,
    lanes: Vec<String>,
    next_span: u32,
    open_spans: u32,
    attempts: Vec<Arc<AttemptStats>>,
}

/// A per-query trace. Cheap to share (`Arc`), safe to record into from
/// every fragment thread; all timestamps are offsets from a single epoch
/// captured at construction, read through [`Trace::now_ns`].
pub struct Trace {
    epoch: Instant,
    state: Mutex<TraceState>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.lock();
        f.debug_struct("Trace")
            .field("spans", &st.spans.len())
            .field("events", &st.events.len())
            .field("open", &st.open_spans)
            .finish()
    }
}

impl Trace {
    /// Lane 0: the coordinator thread (parse, plan, admission, root
    /// fragment).
    pub const COORD_LANE: u32 = 0;

    /// Start a new trace; the epoch (timestamp zero) is now.
    pub fn new() -> Arc<Trace> {
        // ic-lint: allow(L007) because this epoch anchor is the single sanctioned wall-clock read that every span timestamp derives from
        let epoch = Instant::now();
        Arc::new(Trace {
            epoch,
            state: Mutex::new(TraceState {
                lanes: vec!["coordinator".to_string()],
                ..TraceState::default()
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Nanoseconds since the trace epoch — the clock every span and event
    /// in this trace is keyed to. This is the only sanctioned time source
    /// in traced code paths (ic-lint rule L007).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Allocate a named lane (Chrome-trace `tid`) for a worker thread.
    pub fn lane(&self, name: impl Into<String>) -> u32 {
        let mut st = self.lock();
        st.lanes.push(name.into());
        (st.lanes.len() - 1) as u32
    }

    /// Open a span; it closes (and is recorded) when the returned guard
    /// drops. The guard may move across threads.
    pub fn span(
        self: &Arc<Self>,
        name: impl Into<String>,
        cat: &'static str,
        parent: Option<SpanId>,
        lane: u32,
    ) -> SpanGuard {
        let id = {
            let mut st = self.lock();
            let id = st.next_span;
            st.next_span += 1;
            st.open_spans += 1;
            SpanId(id)
        };
        SpanGuard {
            trace: Arc::clone(self),
            id,
            parent,
            name: name.into(),
            cat,
            lane,
            start_ns: self.now_ns(),
            args: Vec::new(),
        }
    }

    /// Record an already-timed interval directly (used for per-transfer
    /// network spans where the open/close pairing is a single call site).
    #[allow(clippy::too_many_arguments)]
    pub fn record_span(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        parent: Option<SpanId>,
        lane: u32,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        let mut st = self.lock();
        let id = SpanId(st.next_span);
        st.next_span += 1;
        st.spans.push(SpanRec {
            id,
            parent,
            name: name.into(),
            cat,
            lane,
            start_ns,
            end_ns,
            args,
        });
    }

    /// Record an instant event at the current trace time.
    pub fn event(&self, name: impl Into<String>, cat: &'static str, lane: u32, detail: impl Into<String>) {
        let ts_ns = self.now_ns();
        let mut st = self.lock();
        st.events.push(EventRec { name: name.into(), cat, lane, ts_ns, detail: detail.into() });
    }

    /// Register the per-operator aggregate table for one execution attempt.
    pub fn register_attempt(&self, ops: Vec<OpMeta>) -> Arc<AttemptStats> {
        let attempt = Arc::new(AttemptStats::new(ops));
        self.lock().attempts.push(Arc::clone(&attempt));
        attempt
    }

    /// All registered attempts, in order; the last one produced the result.
    pub fn attempts(&self) -> Vec<Arc<AttemptStats>> {
        self.lock().attempts.clone()
    }

    /// Snapshot of all closed spans (open guards are not included).
    pub fn spans(&self) -> Vec<SpanRec> {
        self.lock().spans.clone()
    }

    /// Snapshot of all instant events.
    pub fn events(&self) -> Vec<EventRec> {
        self.lock().events.clone()
    }

    /// Lane names, indexed by lane id.
    pub fn lanes(&self) -> Vec<String> {
        self.lock().lanes.clone()
    }

    /// Number of spans currently open (guards alive). Zero once the query
    /// has fully finished.
    pub fn open_spans(&self) -> u32 {
        self.lock().open_spans
    }

    /// Check span-tree well-formedness: every opened span was closed, every
    /// interval is non-negative, every parent exists, and every child
    /// interval nests inside its parent's. Returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let st = self.lock();
        if st.open_spans != 0 {
            return Err(format!("{} spans still open", st.open_spans));
        }
        let mut by_id: Vec<Option<&SpanRec>> = vec![None; st.next_span as usize];
        for s in &st.spans {
            by_id[s.id.0 as usize] = Some(s);
        }
        for s in &st.spans {
            if s.end_ns < s.start_ns {
                return Err(format!("span {:?} `{}` ends before it starts", s.id, s.name));
            }
            if let Some(pid) = s.parent {
                let p = by_id
                    .get(pid.0 as usize)
                    .copied()
                    .flatten()
                    .ok_or_else(|| format!("span {:?} `{}` has unknown parent {:?}", s.id, s.name, pid))?;
                if pid.0 >= s.id.0 {
                    return Err(format!("span {:?} `{}` opened before its parent {:?}", s.id, s.name, pid));
                }
                if s.start_ns < p.start_ns || s.end_ns > p.end_ns {
                    return Err(format!(
                        "span {:?} `{}` [{}, {}] escapes parent `{}` [{}, {}]",
                        s.id, s.name, s.start_ns, s.end_ns, p.name, p.start_ns, p.end_ns
                    ));
                }
            }
        }
        Ok(())
    }
}

/// RAII handle for an open span; records the closed [`SpanRec`] on drop.
pub struct SpanGuard {
    trace: Arc<Trace>,
    id: SpanId,
    parent: Option<SpanId>,
    name: String,
    cat: &'static str,
    lane: u32,
    start_ns: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard {
    /// This span's id, for use as a child's `parent`.
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach a named counter to the span (rendered in Chrome-trace args).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        self.args.push((key, value));
    }

    /// Close the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_ns = self.trace.now_ns();
        let rec = SpanRec {
            id: self.id,
            parent: self.parent,
            name: std::mem::take(&mut self.name),
            cat: self.cat,
            lane: self.lane,
            start_ns: self.start_ns,
            end_ns,
            args: std::mem::take(&mut self.args),
        };
        let mut st = self.trace.lock();
        st.open_spans = st.open_spans.saturating_sub(1);
        st.spans.push(rec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_validate() {
        let t = Trace::new();
        {
            let root = t.span("query", "query", None, Trace::COORD_LANE);
            {
                let mut child = t.span("plan", "plan", Some(root.id()), Trace::COORD_LANE);
                child.arg("rules", 7);
            }
            let lane = t.lane("worker");
            let frag = t.span("fragment f1", "fragment", Some(root.id()), lane);
            drop(frag);
        }
        assert_eq!(t.open_spans(), 0);
        t.validate().expect("well-formed");
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().any(|s| s.name == "plan" && s.args == vec![("rules", 7)]));
    }

    #[test]
    fn validate_catches_open_span() {
        let t = Trace::new();
        let guard = t.span("query", "query", None, 0);
        assert!(t.validate().is_err());
        drop(guard);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn attempt_stats_aggregate() {
        let t = Trace::new();
        let ops = vec![
            OpMeta { label: "Agg".into(), detail: String::new(), parent: None, depth: 0, est_rows: 10.0 },
            OpMeta { label: "Scan".into(), detail: String::new(), parent: Some(0), depth: 1, est_rows: 100.0 },
        ];
        let a = t.register_attempt(ops);
        a.record_instance(0);
        a.record_instance(1);
        a.record_next(1, 100, 2_000, true);
        a.record_next(1, 0, 50, false);
        a.record_next(0, 10, 5_000, true);
        a.record_shipped(1, 800);
        assert_eq!(a.rows(1), 100);
        assert_eq!(a.batches(1), 1);
        assert_eq!(a.shipped_bytes(1), 800);
        assert_eq!(a.self_ns(0), 5_000 - 2_050);
        assert_eq!(t.attempts().len(), 1);
    }

    #[test]
    fn events_are_timestamped_in_order() {
        let t = Trace::new();
        t.event("governor.shed", "query", 0, "queue full");
        t.event("net.fault", "net", 1, "s1->s2 link drop");
        let ev = t.events();
        assert_eq!(ev.len(), 2);
        assert!(ev[0].ts_ns <= ev[1].ts_ns);
    }
}
