//! Query-level observability: per-query traces, process-wide metrics, and
//! renderers (`EXPLAIN ANALYZE`, Chrome-trace JSON).
//!
//! Three pieces, all std-only and allocation-light:
//!
//! * [`Trace`] — a per-query tree of *spans* (plan, admission, attempt,
//!   fragment instance, operator lifetime, network transfer) plus instant
//!   *events* (faults, sheds, revocations). Every timestamp comes from the
//!   trace's own monotonic clock ([`Trace::now_ns`]); the single wall-clock
//!   read behind it is the sanctioned boundary enforced by ic-lint rule
//!   L007 — traced code never calls `std::time::Instant` directly.
//! * [`MetricsRegistry`] — process-wide named counters / gauges /
//!   histograms (`exec.op.rows`, `mem.lease.revocations`, …), updated at
//!   batch/operation granularity, never per row. See OBSERVABILITY.md for
//!   the naming convention.
//! * [`TraceSink`] — renders a finished trace as (a) an `EXPLAIN ANALYZE`
//!   tree (the optimizer's estimates printed side-by-side with observed
//!   rows, batches, self-time and shipped bytes per operator) and (b) a
//!   Chrome-trace-format JSON that loads in `chrome://tracing`.
//!
//! The executor aggregates per-operator actuals into an [`AttemptStats`]
//! table registered per execution attempt (failover replans re-register),
//! so `EXPLAIN ANALYZE` can join estimates and actuals by plan-node index
//! without keeping a span per batch.

mod metrics;
mod sink;
mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use sink::{chrome_trace_json, render_explain_analyze, TraceSink};
pub use trace::{AttemptStats, EventRec, OpMeta, SpanGuard, SpanId, SpanRec, Trace};
