//! Process-wide named metrics: counters, gauges, and power-of-two-bucket
//! histograms, interned in a registry and updated lock-free.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a value that can move in both directions.
#[derive(Debug, Default)]
pub struct Gauge {
    v: AtomicI64,
}

impl Gauge {
    /// Set the gauge to `n`.
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets; bucket `i` counts values whose
/// most-significant bit is `i` (i.e. value in `[2^i, 2^(i+1))`), with the
/// last bucket absorbing the tail.
pub const HIST_BUCKETS: usize = 32;

/// A fixed-shape power-of-two histogram (no allocation on record).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        let idx = (63 - u64::leading_zeros(value.max(1)) as usize).min(HIST_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Consistent-enough point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` ≈ values in `[2^i, 2^(i+1))`).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (`2^(i+1) - 1`) of the bucket containing the `q`-quantile
    /// observation, `q` in `[0, 1]`. Returns 0 when empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
            }
        }
        u64::MAX
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A registry interning metrics by name. Lookup takes a lock; updates on
/// the returned handles are lock-free, so callers resolve handles once
/// (per query / per object) and bump them at batch granularity.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (used by tests; production code shares
    /// [`MetricsRegistry::global`]).
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<(String, Metric)>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.lock();
        for (n, metric) in m.iter() {
            if n == name {
                if let Metric::Counter(c) = metric {
                    return Arc::clone(c);
                }
            }
        }
        let c = Arc::new(Counter::default());
        m.push((name.to_string(), Metric::Counter(Arc::clone(&c))));
        c
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.lock();
        for (n, metric) in m.iter() {
            if n == name {
                if let Metric::Gauge(g) = metric {
                    return Arc::clone(g);
                }
            }
        }
        let g = Arc::new(Gauge::default());
        m.push((name.to_string(), Metric::Gauge(Arc::clone(&g))));
        g
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.lock();
        for (n, metric) in m.iter() {
            if n == name {
                if let Metric::Histogram(h) = metric {
                    return Arc::clone(h);
                }
            }
        }
        let h = Arc::new(Histogram::default());
        m.push((name.to_string(), Metric::Histogram(Arc::clone(&h))));
        h
    }

    /// Render every metric as one `name value` line, sorted by name.
    /// Histograms render as `name count=N sum=S mean=M p99<=B`.
    pub fn render_text(&self) -> String {
        let mut lines: Vec<String> = self
            .lock()
            .iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => format!("{name} {}", c.get()),
                Metric::Gauge(g) => format!("{name} {}", g.get()),
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    format!(
                        "{name} count={} sum={} mean={:.1} p99<={}",
                        s.count,
                        s.sum,
                        s.mean(),
                        s.quantile_upper_bound(0.99)
                    )
                }
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_intern_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("exec.op.rows");
        let b = r.counter("exec.op.rows");
        a.add(5);
        b.inc();
        assert_eq!(a.get(), 6);
        let g = r.gauge("pool.in_use");
        g.add(10);
        g.add(-3);
        assert_eq!(r.gauge("pool.in_use").get(), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 700, 700, 700] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 2106);
        // Half the observations are <= 3, so the median bucket bound is small.
        assert!(s.quantile_upper_bound(0.5) <= 3);
        // 700 lands in bucket 9 ([512, 1024)).
        assert_eq!(s.quantile_upper_bound(1.0), 1023);
    }

    #[test]
    fn render_text_is_sorted_and_complete() {
        let r = MetricsRegistry::new();
        r.counter("b.second").add(2);
        r.counter("a.first").inc();
        r.histogram("c.waits").record(100);
        let text = r.render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a.first 1"));
        assert!(lines[2].contains("count=1"));
    }
}
