//! Renderers over a finished [`Trace`]: the `EXPLAIN ANALYZE` tree and the
//! Chrome-trace-format JSON export.

use super::trace::{AttemptStats, Trace};
use std::fmt::Write as _;
use std::sync::Arc;

/// Render one attempt's estimated-vs-actual table as an annotated plan
/// tree, mirroring `plan::explain` indentation.
///
/// Each line reads:
///
/// ```text
/// HashJoin (dist=hash[0], rows est=1000 act=998, batches=2, self=0.412 ms)
/// ```
///
/// with `shipped=<bytes> B` appended on Exchange consumers. `act` sums all
/// parallel instances of the operator; `self` is inclusive busy time minus
/// the children's inclusive busy time (an Exchange consumer's self-time
/// therefore includes time blocked on the wire).
pub fn render_explain_analyze(attempt: &AttemptStats) -> String {
    let mut out = String::new();
    for (i, op) in attempt.ops().iter().enumerate() {
        let node = i as u32;
        let pad = "  ".repeat(op.depth as usize);
        let sep = if op.detail.is_empty() { "" } else { ", " };
        let _ = write!(
            out,
            "{pad}{} ({}{}rows est={:.0} act={}, batches={}, self={:.3} ms",
            op.label,
            op.detail,
            sep,
            op.est_rows,
            attempt.rows(node),
            attempt.batches(node),
            attempt.self_ns(node) as f64 / 1e6,
        );
        let shipped = attempt.shipped_bytes(node);
        if shipped > 0 {
            let _ = write!(out, ", shipped={shipped} B");
        }
        let inst = attempt.instances(node);
        if inst > 1 {
            let _ = write!(out, ", instances={inst}");
        }
        out.push_str(")\n");
    }
    out
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize the trace in Chrome trace-event format (the JSON object form,
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` or Perfetto.
///
/// Spans become `ph:"X"` complete events (microsecond `ts`/`dur`), instant
/// events become `ph:"i"`, and lane names are emitted as `thread_name`
/// metadata so each fragment instance gets its own labelled row.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for (lane, name) in trace.lanes().iter().enumerate() {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{lane}");
        out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":");
        push_json_str(&mut out, name);
        out.push_str("}}");
    }
    for s in trace.spans() {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", s.lane);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &s.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, s.cat);
        let _ = write!(
            out,
            ",\"ts\":{:.3},\"dur\":{:.3}",
            s.start_ns as f64 / 1e3,
            (s.end_ns - s.start_ns) as f64 / 1e3
        );
        out.push_str(",\"args\":{");
        let _ = write!(out, "\"span_id\":{}", s.id.0);
        if let Some(p) = s.parent {
            let _ = write!(out, ",\"parent\":{}", p.0);
        }
        for (k, v) in &s.args {
            out.push(',');
            push_json_str(&mut out, k);
            let _ = write!(out, ":{v}");
        }
        out.push_str("}}");
    }
    for e in trace.events() {
        sep(&mut out, &mut first);
        out.push_str("{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", e.lane);
        out.push_str(",\"name\":");
        push_json_str(&mut out, &e.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, e.cat);
        let _ = write!(out, ",\"ts\":{:.3}", e.ts_ns as f64 / 1e3);
        out.push_str(",\"args\":{\"detail\":");
        push_json_str(&mut out, &e.detail);
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Renders a finished trace: `EXPLAIN ANALYZE` text and Chrome-trace JSON.
pub struct TraceSink {
    trace: Arc<Trace>,
}

impl TraceSink {
    /// Wrap a trace for rendering.
    pub fn new(trace: Arc<Trace>) -> TraceSink {
        TraceSink { trace }
    }

    /// The annotated plan tree for the attempt that produced the result
    /// (the last registered attempt), or `None` if no attempt executed.
    pub fn explain_analyze(&self) -> Option<String> {
        self.trace.attempts().last().map(|a| render_explain_analyze(a))
    }

    /// The full trace as Chrome-trace JSON.
    pub fn chrome_json(&self) -> String {
        chrome_trace_json(&self.trace)
    }

    /// Write the Chrome-trace JSON to `path` (creating parent directories).
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        std::fs::write(path, self.chrome_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::OpMeta;

    fn sample_trace() -> Arc<Trace> {
        let t = Trace::new();
        let root = t.span("query", "query", None, 0);
        let lane = t.lane("f1 @s2");
        let frag = t.span("fragment f1", "fragment", Some(root.id()), lane);
        t.event("net.fault", "net", lane, "s1->s2: link \"drop\"");
        drop(frag);
        drop(root);
        t
    }

    #[test]
    fn chrome_json_is_structurally_sound() {
        let t = sample_trace();
        let json = chrome_trace_json(&t);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // Balanced braces and quotes-escaped payload.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("link \\\"drop\\\""));
    }

    #[test]
    fn explain_analyze_renders_est_vs_act() {
        let t = Trace::new();
        let attempt = t.register_attempt(vec![
            OpMeta {
                label: "HashJoin".into(),
                detail: "dist=hash[0]".into(),
                parent: None,
                depth: 0,
                est_rows: 1000.0,
            },
            OpMeta {
                label: "Scan lineitem".into(),
                detail: "dist=hash[0]".into(),
                parent: Some(0),
                depth: 1,
                est_rows: 6000.0,
            },
        ]);
        attempt.record_next(0, 998, 3_000_000, true);
        attempt.record_next(1, 6005, 1_000_000, true);
        attempt.record_shipped(1, 4096);
        let text = TraceSink::new(t).explain_analyze().expect("one attempt");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("rows est=1000 act=998"));
        assert!(lines[0].contains("self=2.000 ms"));
        assert!(lines[1].starts_with("  Scan lineitem"));
        assert!(lines[1].contains("shipped=4096 B"));
    }
}
