//! Common error type shared across the whole stack.

use std::fmt;

/// Result alias used throughout the workspace.
pub type IcResult<T> = Result<T, IcError>;

/// Errors raised anywhere in the composed system.
///
/// The variants mirror the failure classes observed in the paper's study of
/// Ignite+Calcite: parse/validation errors, planner failures (including the
/// exploration-budget timeouts of §4.3 and §6.4), unsupported features
/// (e.g. SQL views for TPC-H Q15), and execution-time faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcError {
    /// SQL lexing/parsing failure.
    Parse(String),
    /// Name resolution / type checking failure.
    Bind(String),
    /// The planner could not produce an execution plan.
    Plan(String),
    /// The cost-based planner exceeded its exploration budget
    /// (the paper's "search space too large" Calcite timeout, §6.4).
    PlannerBudgetExceeded {
        /// Rule firings consumed before giving up.
        rules_fired: u64,
        /// The configured firing budget.
        budget: u64,
    },
    /// A feature the composed system does not support (e.g. VIEWs, §6).
    Unsupported(String),
    /// Execution-time failure.
    Exec(String),
    /// Query execution exceeded the configured wall-clock limit
    /// (the paper's four-hour runtime cap, §5.2).
    ExecTimeout {
        /// The configured wall-clock cap in milliseconds.
        limit_ms: u64,
    },
    /// Query execution exceeded the configured memory budget — the
    /// "system resource limit" failures the paper observes on the
    /// baseline's unoptimized plans.
    MemoryLimit {
        /// The limit (cells) that fired — per-query cap or pool capacity.
        limit_rows: u64,
    },
    /// Catalog errors: unknown table/column/index, duplicate definitions.
    Catalog(String),
    /// A site needed by the query is crashed/unreachable, or a link fault
    /// lost an exchange message. Retryable: the coordinator replans
    /// against the surviving topology (backup partition owners substituted
    /// for dead sites) and tries again.
    SiteUnavailable {
        /// The crashed/unreachable site's id.
        site: usize,
        /// What failed (lost exchange message, dead partition owner, …).
        detail: String,
    },
    /// The admission controller shed this query: the wait queue is full or
    /// the deadline cannot be met at the current load. Retryable by the
    /// *client* after `retry_after_ms` — the coordinator's failover loop
    /// deliberately does not retry it (that would defeat the shedding).
    Overloaded {
        /// Suggested client back-off before resubmitting.
        retry_after_ms: u64,
    },
    /// The cluster memory governor revoked this query's lease under
    /// pressure (it held the largest grant when another query could not be
    /// served). `lease_cells` is the grant reclaimed. Retryable by the
    /// client once the pressure subsides; never retried by the failover
    /// loop, so a revoked query frees its budget immediately.
    ResourcesRevoked {
        /// The grant (cells) reclaimed from the revoked lease.
        lease_cells: u64,
    },
    /// The bounded failover loop gave up: every attempt failed with a
    /// retryable error. `chain` records each attempt's failure in order.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// Each attempt's failure, in order.
        chain: Vec<String>,
    },
    /// A replicated write observed a different per-partition version than
    /// the one it was prepared against: a concurrent writer (or a promotion
    /// that surfaced a stale replica) moved the partition underneath it.
    /// Retryable: the writer re-reads the current version and re-applies.
    WriteConflict {
        /// The partition whose version check failed.
        partition: usize,
        /// The version the write was prepared against.
        expected_version: u64,
        /// The version actually found at commit time.
        found_version: u64,
    },
    /// The partition addressed by a read or write is mid-migration (its
    /// ownership epoch changed between planning and execution, or its data
    /// is being copied to a joining site). Retryable: the coordinator
    /// refreshes the membership snapshot and re-routes.
    RebalanceInProgress {
        /// The partition being migrated/promoted.
        partition: usize,
    },
    /// An internal invariant was broken (a "this cannot happen" state such
    /// as an operator polled before open or an unregistered exchange node).
    /// Not retryable: the bug is in the engine, not the topology.
    Internal(String),
}

impl fmt::Display for IcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcError::Parse(m) => write!(f, "parse error: {m}"),
            IcError::Bind(m) => write!(f, "bind error: {m}"),
            IcError::Plan(m) => write!(f, "planner error: {m}"),
            IcError::PlannerBudgetExceeded { rules_fired, budget } => write!(
                f,
                "planner exploration budget exceeded: {rules_fired} rule firings (budget {budget})"
            ),
            IcError::Unsupported(m) => write!(f, "unsupported: {m}"),
            IcError::Exec(m) => write!(f, "execution error: {m}"),
            IcError::ExecTimeout { limit_ms } => {
                write!(f, "execution exceeded the {limit_ms} ms runtime limit")
            }
            IcError::MemoryLimit { limit_rows } => {
                write!(f, "execution exceeded the {limit_rows}-row buffered-memory limit")
            }
            IcError::Catalog(m) => write!(f, "catalog error: {m}"),
            IcError::SiteUnavailable { site, detail } => {
                write!(f, "site{site} unavailable: {detail}")
            }
            IcError::Overloaded { retry_after_ms } => {
                write!(f, "cluster overloaded: query shed by admission control, retry after {retry_after_ms} ms")
            }
            IcError::ResourcesRevoked { lease_cells } => {
                write!(
                    f,
                    "memory lease revoked under cluster pressure ({lease_cells} buffered cells reclaimed); retry later"
                )
            }
            IcError::RetriesExhausted { attempts, chain } => {
                write!(f, "failover exhausted after {attempts} attempt(s): ")?;
                write!(f, "{}", chain.join(" -> "))
            }
            IcError::WriteConflict { partition, expected_version, found_version } => write!(
                f,
                "write conflict on partition {partition}: expected version {expected_version}, found {found_version}"
            ),
            IcError::RebalanceInProgress { partition } => {
                write!(f, "partition {partition} is rebalancing; retry against the new owner map")
            }
            IcError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for IcError {}

impl IcError {
    /// True when the error represents a planner failure rather than a user
    /// error — the class the paper counts as "failed to generate execution
    /// plans" (Q2, Q5, Q9 on the baseline).
    pub fn is_planner_failure(&self) -> bool {
        matches!(
            self,
            IcError::Plan(_) | IcError::PlannerBudgetExceeded { .. }
        )
    }

    /// True when the *client* may usefully resubmit the query: the failure
    /// was transient (a dead site, admission-control shedding, or a revoked
    /// memory lease) rather than a property of the query itself.
    ///
    /// Every variant is classified explicitly — no wildcard arm — so adding
    /// a variant is a compile-time (and L009 lint-time) forcing function to
    /// decide whether the new failure is transient or terminal. A wildcard
    /// here once silently classified a new transient variant as terminal,
    /// which the failover loop then surfaced to clients as a hard error.
    pub fn is_retryable(&self) -> bool {
        match self {
            // Transient: the cluster state that failed the query can change
            // without the query changing. Write conflicts resolve once the
            // competing writer commits; rebalance windows close once the
            // chunked migration or promotion finishes.
            IcError::SiteUnavailable { .. }
            | IcError::Overloaded { .. }
            | IcError::ResourcesRevoked { .. }
            | IcError::WriteConflict { .. }
            | IcError::RebalanceInProgress { .. } => true,
            // Terminal: properties of the query text, the plan space, or
            // the configured limits — resubmitting the same query hits the
            // same wall.
            IcError::Parse(_)
            | IcError::Bind(_)
            | IcError::Plan(_)
            | IcError::PlannerBudgetExceeded { .. }
            | IcError::Unsupported(_)
            | IcError::Exec(_)
            | IcError::ExecTimeout { .. }
            | IcError::MemoryLimit { .. }
            | IcError::Catalog(_)
            | IcError::RetriesExhausted { .. }
            | IcError::Internal(_) => false,
        }
    }

    /// True when the coordinator's *internal* failover loop should replan
    /// and retry. Strictly narrower than [`is_retryable`](Self::is_retryable):
    /// shed ([`Overloaded`](IcError::Overloaded)) and revoked
    /// ([`ResourcesRevoked`](IcError::ResourcesRevoked)) queries must exit
    /// the cluster immediately — retrying them in-process would hold their
    /// admission slot and defeat the governor's back-pressure.
    ///
    /// Exhaustive for the same reason as [`is_retryable`](Self::is_retryable):
    /// the failover loop in `Cluster::query` loops exactly on this predicate,
    /// so a misclassified variant either spins on a terminal error or gives
    /// up on a recoverable one.
    pub fn is_failover_retryable(&self) -> bool {
        match self {
            // Replan-and-retry in-process: the coordinator refreshes its
            // membership/version snapshot and the next attempt can succeed
            // without the client resubmitting.
            IcError::SiteUnavailable { .. }
            | IcError::WriteConflict { .. }
            | IcError::RebalanceInProgress { .. } => true,
            // Shed/revoked: retryable by the client, not in-process.
            IcError::Overloaded { .. } | IcError::ResourcesRevoked { .. } => false,
            IcError::Parse(_)
            | IcError::Bind(_)
            | IcError::Plan(_)
            | IcError::PlannerBudgetExceeded { .. }
            | IcError::Unsupported(_)
            | IcError::Exec(_)
            | IcError::ExecTimeout { .. }
            | IcError::MemoryLimit { .. }
            | IcError::Catalog(_)
            | IcError::RetriesExhausted { .. }
            | IcError::Internal(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert!(IcError::Parse("x".into()).to_string().contains("parse"));
        assert!(IcError::PlannerBudgetExceeded { rules_fired: 10, budget: 5 }
            .to_string()
            .contains("budget"));
        assert!(IcError::ExecTimeout { limit_ms: 100 }.to_string().contains("100"));
    }

    #[test]
    fn planner_failure_classification() {
        assert!(IcError::Plan("no plan".into()).is_planner_failure());
        assert!(IcError::PlannerBudgetExceeded { rules_fired: 1, budget: 1 }.is_planner_failure());
        assert!(!IcError::Parse("p".into()).is_planner_failure());
        assert!(!IcError::ExecTimeout { limit_ms: 1 }.is_planner_failure());
    }

    #[test]
    fn retryable_classification() {
        let site = IcError::SiteUnavailable { site: 2, detail: "crashed".into() };
        assert!(site.is_retryable());
        assert!(site.is_failover_retryable());
        assert!(site.to_string().contains("site2"));
        let shed = IcError::Overloaded { retry_after_ms: 25 };
        assert!(shed.is_retryable());
        assert!(!shed.is_failover_retryable());
        assert!(shed.to_string().contains("25 ms"));
        let revoked = IcError::ResourcesRevoked { lease_cells: 4096 };
        assert!(revoked.is_retryable());
        assert!(!revoked.is_failover_retryable());
        assert!(revoked.to_string().contains("4096"));
        assert!(!IcError::Exec("boom".into()).is_retryable());
        assert!(!IcError::Internal("bad state".into()).is_retryable());
        assert!(IcError::Internal("bad state".into()).to_string().contains("internal"));
        assert!(!IcError::ExecTimeout { limit_ms: 1 }.is_retryable());
        let exhausted = IcError::RetriesExhausted {
            attempts: 3,
            chain: vec!["a".into(), "b".into(), "c".into()],
        };
        assert!(!exhausted.is_retryable());
        let msg = exhausted.to_string();
        assert!(msg.contains("3 attempt"));
        assert!(msg.contains("a -> b -> c"));
    }

    /// Pinned semantics for the DML-era variants: both are transient *and*
    /// safe to retry inside the coordinator's failover loop (unlike
    /// shed/revoked errors, retrying them does not defeat back-pressure —
    /// the conflicting writer or the migration makes progress regardless).
    #[test]
    fn write_conflict_retry_semantics() {
        let conflict =
            IcError::WriteConflict { partition: 7, expected_version: 3, found_version: 5 };
        assert!(conflict.is_retryable());
        assert!(conflict.is_failover_retryable());
        assert!(!conflict.is_planner_failure());
        let msg = conflict.to_string();
        assert!(msg.contains("partition 7"));
        assert!(msg.contains("expected version 3"));
        assert!(msg.contains("found 5"));
    }

    #[test]
    fn rebalance_in_progress_retry_semantics() {
        let moving = IcError::RebalanceInProgress { partition: 12 };
        assert!(moving.is_retryable());
        assert!(moving.is_failover_retryable());
        assert!(!moving.is_planner_failure());
        assert!(moving.to_string().contains("partition 12"));
    }
}
