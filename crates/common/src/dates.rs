//! Proleptic-Gregorian date arithmetic on epoch-day integers.
//!
//! TPC-H and SSB predicates do date literal arithmetic
//! (`date '1995-01-01' + interval '3' month`); the binder constant-folds
//! those using these helpers. No external chrono dependency is needed.

/// True for leap years in the Gregorian calendar.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in the given 1-based month.
pub fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => panic!("invalid month {month}"),
    }
}

/// Convert a calendar date to days since 1970-01-01. Panics on invalid dates.
pub fn to_epoch_days(year: i32, month: u32, day: u32) -> i32 {
    assert!((1..=12).contains(&month), "invalid month {month}");
    assert!(day >= 1 && day <= days_in_month(year, month), "invalid day {day}");
    // Days from civil algorithm (Howard Hinnant's days_from_civil).
    let y = if month <= 2 { year - 1 } else { year } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (month as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Convert days since 1970-01-01 back to (year, month, day).
pub fn from_epoch_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 }; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m as u32, d as u32)
}

/// Add whole months to an epoch-day date, clamping the day-of-month
/// (e.g. Jan 31 + 1 month = Feb 28/29), matching SQL interval semantics.
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = from_epoch_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = (total.rem_euclid(12) + 1) as u32;
    let nd = d.min(days_in_month(ny, nm));
    to_epoch_days(ny, nm, nd)
}

/// Add whole years (12-month intervals).
pub fn add_years(days: i32, years: i32) -> i32 {
    add_months(days, years * 12)
}

/// Extract the year of an epoch-day date.
pub fn year_of(days: i32) -> i32 {
    from_epoch_days(days).0
}

/// Extract the 1-based month of an epoch-day date.
pub fn month_of(days: i32) -> u32 {
    from_epoch_days(days).1
}

/// Parse a `YYYY-MM-DD` string to epoch days.
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return None;
    }
    Some(to_epoch_days(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_roundtrip() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1992, 2, 29),
            (1998, 12, 1),
            (1995, 3, 15),
            (2000, 2, 29),
            (1900, 3, 1),
            (2024, 12, 31),
        ] {
            let e = to_epoch_days(y, m, d);
            assert_eq!(from_epoch_days(e), (y, m, d), "roundtrip {y}-{m}-{d}");
        }
    }

    #[test]
    fn known_epochs() {
        assert_eq!(to_epoch_days(1970, 1, 1), 0);
        assert_eq!(to_epoch_days(1970, 1, 2), 1);
        assert_eq!(to_epoch_days(1969, 12, 31), -1);
        assert_eq!(to_epoch_days(2000, 1, 1), 10957);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1995));
    }

    #[test]
    fn month_arith_clamps() {
        let jan31 = to_epoch_days(1995, 1, 31);
        assert_eq!(from_epoch_days(add_months(jan31, 1)), (1995, 2, 28));
        let d = to_epoch_days(1995, 1, 1);
        assert_eq!(from_epoch_days(add_months(d, 3)), (1995, 4, 1));
        assert_eq!(from_epoch_days(add_years(d, 1)), (1996, 1, 1));
        assert_eq!(from_epoch_days(add_months(d, -1)), (1994, 12, 1));
    }

    #[test]
    fn parses() {
        assert_eq!(parse_date("1995-03-15"), Some(to_epoch_days(1995, 3, 15)));
        assert_eq!(parse_date("1995-13-01"), None);
        assert_eq!(parse_date("1995-02-30"), None);
        assert_eq!(parse_date("garbage"), None);
    }

    #[test]
    fn extracts() {
        let d = to_epoch_days(1997, 6, 9);
        assert_eq!(year_of(d), 1997);
        assert_eq!(month_of(d), 6);
    }
}
