//! Schemas: named, typed column lists attached to every plan node.

use crate::datum::DataType;
use std::fmt;
use std::sync::Arc;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name (folded case-insensitively on lookup).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Field {
    /// Build a field from a name and type.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Field {
        Field { name: name.into(), dtype }
    }
}

/// An ordered list of fields. Cheap to clone (Arc'd), like Calcite's
/// `RelDataType` row types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema from an ordered field list.
    pub fn new(fields: Vec<Field>) -> Schema {
        Schema { fields: Arc::new(fields) }
    }

    /// The zero-column schema.
    pub fn empty() -> Schema {
        Schema::new(Vec::new())
    }

    /// All fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// The field at position `i` (panics when out of range).
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Case-insensitive column lookup, as SQL identifiers are folded.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name.eq_ignore_ascii_case(name))
    }

    /// Concatenate two schemas (join output schema).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = (*self.fields).clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Project a subset of fields.
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema::new(cols.iter().map(|&c| self.fields[c].clone()).collect())
    }

    /// Average row width in columns — `deg(A)` in the paper's Eq. 4.
    pub fn degree(&self) -> usize {
        self.arity()
    }

    /// Rough per-row byte width estimate for this schema, used by the
    /// baseline cost model (AFS × deg) and the network simulator defaults.
    pub fn est_row_bytes(&self) -> usize {
        self.fields
            .iter()
            .map(|f| match f.dtype {
                DataType::Bool => 1,
                DataType::Int => 8,
                DataType::Double => 8,
                DataType::Str => 16,
                DataType::Date => 4,
            })
            .sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fl) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", fl.name, fl.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::Str),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert_eq!(s().index_of("ID"), Some(0));
        assert_eq!(s().index_of("Name"), Some(1));
        assert_eq!(s().index_of("missing"), None);
    }

    #[test]
    fn join_concats() {
        let j = s().join(&s());
        assert_eq!(j.arity(), 4);
        assert_eq!(j.field(2).name, "id");
    }

    #[test]
    fn project_selects() {
        let p = s().project(&[1]);
        assert_eq!(p.arity(), 1);
        assert_eq!(p.field(0).name, "name");
    }

    #[test]
    fn degree_and_bytes() {
        assert_eq!(s().degree(), 2);
        assert_eq!(s().est_row_bytes(), 24);
    }
}
