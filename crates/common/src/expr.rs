//! Scalar expressions and their interpreter — the analogue of Calcite's
//! `RexNode` layer.
//!
//! Expressions reference input columns positionally ([`Expr::Col`]), so plan
//! rewrites (pushdowns, join input permutations) manipulate them with the
//! [`Expr::shift`] / [`Expr::remap`] helpers. Evaluation implements SQL
//! three-valued logic: any comparison over NULL yields NULL, AND/OR follow
//! Kleene semantics, and filters keep a row only when the predicate is
//! `TRUE`.

use crate::datum::{DataType, Datum};
use crate::dates;
use crate::error::{IcError, IcResult};
use crate::row::Row;
use std::collections::BTreeSet;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical AND (Kleene).
    And,
    /// Logical OR (Kleene).
    Or,
}

impl BinOp {
    /// Is this one of the six comparison operators?
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// The comparison with swapped operands (`a < b` ⇔ `b > a`).
    pub fn commute(&self) -> Option<BinOp> {
        Some(match self {
            BinOp::Eq => BinOp::Eq,
            BinOp::Ne => BinOp::Ne,
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            _ => return None,
        })
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        };
        f.write_str(s)
    }
}

/// Built-in scalar functions needed by TPC-H / SSB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncKind {
    /// EXTRACT(YEAR FROM d)
    ExtractYear,
    /// EXTRACT(MONTH FROM d)
    ExtractMonth,
    /// SUBSTRING(s, start, len) — 1-based start.
    Substring,
    /// Cast to double.
    CastDouble,
    /// Cast to int (truncating).
    CastInt,
    /// Absolute value.
    Abs,
    /// Date + n months (constant-folded interval arithmetic helper).
    AddMonths,
}

impl fmt::Display for FuncKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuncKind::ExtractYear => "EXTRACT_YEAR",
            FuncKind::ExtractMonth => "EXTRACT_MONTH",
            FuncKind::Substring => "SUBSTRING",
            FuncKind::CastDouble => "CAST_DOUBLE",
            FuncKind::CastInt => "CAST_INT",
            FuncKind::Abs => "ABS",
            FuncKind::AddMonths => "ADD_MONTHS",
        };
        f.write_str(s)
    }
}

/// A scalar expression over an input row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Positional input column reference.
    Col(usize),
    /// Literal value.
    Lit(Datum),
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation (three-valued).
    Not(Box<Expr>),
    /// IS NULL / IS NOT NULL.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for IS NOT NULL.
        negated: bool,
    },
    /// SQL LIKE with `%` and `_` wildcards.
    Like {
        /// The matched expression.
        expr: Box<Expr>,
        /// The pattern (usually a literal).
        pattern: Box<Expr>,
        /// True for NOT LIKE.
        negated: bool,
    },
    /// `expr IN (lit, lit, ...)` — list form only; subqueries are
    /// decorrelated into joins by the frontend.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for NOT IN.
        negated: bool,
    },
    /// Searched CASE: WHEN cond THEN value ... ELSE else_.
    Case {
        /// (condition, value) arms in order.
        whens: Vec<(Expr, Expr)>,
        /// The ELSE value (NULL literal when omitted).
        else_: Box<Expr>,
    },
    /// Built-in scalar function call.
    Func {
        /// Which function.
        kind: FuncKind,
        /// Arguments in order.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(i: usize) -> Expr {
        Expr::Col(i)
    }

    /// Literal shorthand.
    pub fn lit(d: impl Into<Datum>) -> Expr {
        Expr::Lit(d.into())
    }

    /// Binary-operation shorthand.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary { op, left: Box::new(left), right: Box::new(right) }
    }

    /// `left = right` shorthand.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Eq, left, right)
    }

    /// `left AND right` shorthand.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::And, left, right)
    }

    /// `left OR right` shorthand.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinOp::Or, left, right)
    }

    /// Conjoin a list of predicates; empty list means TRUE.
    pub fn conjunction(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::Lit(Datum::Bool(true)),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, Expr::and)
            }
        }
    }

    /// Disjoin a list of predicates; empty list means FALSE.
    pub fn disjunction(mut preds: Vec<Expr>) -> Expr {
        match preds.len() {
            0 => Expr::Lit(Datum::Bool(false)),
            1 => preds.pop().unwrap(),
            _ => {
                let mut it = preds.into_iter();
                let first = it.next().unwrap();
                it.fold(first, Expr::or)
            }
        }
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjunction(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary { op: BinOp::And, left, right } = e {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Split a predicate into its top-level OR disjuncts.
    pub fn split_disjunction(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::Binary { op: BinOp::Or, left, right } = e {
                walk(left, out);
                walk(right, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Is this the constant TRUE?
    pub fn is_true_literal(&self) -> bool {
        matches!(self, Expr::Lit(Datum::Bool(true)))
    }

    /// All input columns referenced by the expression.
    pub fn columns(&self) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Col(c) = e {
                set.insert(*c);
            }
        });
        set
    }

    /// Maximum referenced column + 1 (0 for column-free expressions).
    pub fn max_col_bound(&self) -> usize {
        self.columns().iter().next_back().map_or(0, |c| c + 1)
    }

    /// Visit every node pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Col(_) | Expr::Lit(_) => {}
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Not(e) | Expr::IsNull { expr: e, .. } => e.visit(f),
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::Case { whens, else_ } => {
                for (c, v) in whens {
                    c.visit(f);
                    v.visit(f);
                }
                else_.visit(f);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }

    /// Rewrite column references through `f`.
    pub fn map_cols(&self, f: &impl Fn(usize) -> usize) -> Expr {
        self.transform(&|e| match e {
            Expr::Col(c) => Some(Expr::Col(f(*c))),
            _ => None,
        })
    }

    /// Shift every column reference >= `from` by `delta` (may be negative).
    pub fn shift(&self, from: usize, delta: isize) -> Expr {
        self.map_cols(&|c| {
            if c >= from {
                (c as isize + delta) as usize
            } else {
                c
            }
        })
    }

    /// Remap columns via an explicit table (`new = table[old]`).
    pub fn remap(&self, table: &[usize]) -> Expr {
        self.map_cols(&|c| table[c])
    }

    /// Bottom-up transformation: `f` returning `Some` replaces the node
    /// (children of the replacement are not revisited).
    pub fn transform(&self, f: &impl Fn(&Expr) -> Option<Expr>) -> Expr {
        if let Some(replaced) = f(self) {
            return replaced;
        }
        match self {
            Expr::Col(_) | Expr::Lit(_) => self.clone(),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            Expr::Not(e) => Expr::Not(Box::new(e.transform(f))),
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated: *negated,
            },
            Expr::Like { expr, pattern, negated } => Expr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated: *negated,
            },
            Expr::InList { expr, list, negated } => Expr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.iter().map(|e| e.transform(f)).collect(),
                negated: *negated,
            },
            Expr::Case { whens, else_ } => Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, v)| (c.transform(f), v.transform(f)))
                    .collect(),
                else_: Box::new(else_.transform(f)),
            },
            Expr::Func { kind, args } => Expr::Func {
                kind: *kind,
                args: args.iter().map(|a| a.transform(f)).collect(),
            },
        }
    }

    /// Evaluate against a row. NULL propagates per SQL semantics.
    pub fn eval(&self, row: &Row) -> IcResult<Datum> {
        match self {
            Expr::Col(i) => row
                .0
                .get(*i)
                .cloned()
                .ok_or_else(|| IcError::Exec(format!("column {i} out of bounds (arity {})", row.arity()))),
            Expr::Lit(d) => Ok(d.clone()),
            Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            Expr::Not(e) => Ok(match e.eval(row)? {
                Datum::Null => Datum::Null,
                Datum::Bool(b) => Datum::Bool(!b),
                other => return Err(IcError::Exec(format!("NOT on non-boolean {other}"))),
            }),
            Expr::IsNull { expr, negated } => {
                let isnull = expr.eval(row)?.is_null();
                Ok(Datum::Bool(isnull != *negated))
            }
            Expr::Like { expr, pattern, negated } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                match (&v, &p) {
                    (Datum::Null, _) | (_, Datum::Null) => Ok(Datum::Null),
                    (Datum::Str(s), Datum::Str(p)) => {
                        Ok(Datum::Bool(like_match(s, p) != *negated))
                    }
                    _ => Err(IcError::Exec("LIKE requires string operands".into())),
                }
            }
            Expr::InList { expr, list, negated } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Datum::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if iv == v {
                        return Ok(Datum::Bool(!*negated));
                    }
                }
                if saw_null {
                    Ok(Datum::Null)
                } else {
                    Ok(Datum::Bool(*negated))
                }
            }
            Expr::Case { whens, else_ } => {
                for (cond, val) in whens {
                    if cond.eval(row)?.as_bool() == Some(true) {
                        return val.eval(row);
                    }
                }
                else_.eval(row)
            }
            Expr::Func { kind, args } => eval_func(*kind, args, row),
        }
    }

    /// Evaluate as a filter predicate: NULL and FALSE both reject the row.
    pub fn eval_filter(&self, row: &Row) -> IcResult<bool> {
        Ok(self.eval(row)?.as_bool() == Some(true))
    }

    /// Best-effort static output type given the input schema field types.
    pub fn output_type(&self, input: &crate::schema::Schema) -> DataType {
        match self {
            Expr::Col(i) => {
                if *i < input.arity() {
                    input.field(*i).dtype
                } else {
                    DataType::Int
                }
            }
            Expr::Lit(d) => d.data_type().unwrap_or(DataType::Int),
            Expr::Binary { op, left, right } => match op {
                BinOp::And | BinOp::Or => DataType::Bool,
                o if o.is_comparison() => DataType::Bool,
                BinOp::Div => DataType::Double,
                _ => {
                    let (lt, rt) = (left.output_type(input), right.output_type(input));
                    if lt == DataType::Double || rt == DataType::Double {
                        DataType::Double
                    } else if lt == DataType::Date || rt == DataType::Date {
                        DataType::Date
                    } else {
                        DataType::Int
                    }
                }
            },
            Expr::Not(_) | Expr::IsNull { .. } | Expr::Like { .. } | Expr::InList { .. } => {
                DataType::Bool
            }
            Expr::Case { whens, else_ } => whens
                .first()
                .map(|(_, v)| v.output_type(input))
                .unwrap_or_else(|| else_.output_type(input)),
            Expr::Func { kind, .. } => match kind {
                FuncKind::ExtractYear | FuncKind::ExtractMonth | FuncKind::CastInt => DataType::Int,
                FuncKind::Substring => DataType::Str,
                FuncKind::CastDouble | FuncKind::Abs => DataType::Double,
                FuncKind::AddMonths => DataType::Date,
            },
        }
    }
}

fn eval_binary(op: BinOp, left: &Expr, right: &Expr, row: &Row) -> IcResult<Datum> {
    // Kleene AND/OR must short-circuit around NULLs correctly.
    if matches!(op, BinOp::And | BinOp::Or) {
        let l = left.eval(row)?;
        let lb = l.as_bool();
        match (op, lb, l.is_null()) {
            (BinOp::And, Some(false), _) => return Ok(Datum::Bool(false)),
            (BinOp::Or, Some(true), _) => return Ok(Datum::Bool(true)),
            _ => {}
        }
        let r = right.eval(row)?;
        let rb = r.as_bool();
        return Ok(match op {
            BinOp::And => match (lb, rb) {
                (Some(true), Some(true)) => Datum::Bool(true),
                (_, Some(false)) => Datum::Bool(false),
                _ => Datum::Null,
            },
            BinOp::Or => match (lb, rb) {
                (_, Some(true)) => Datum::Bool(true),
                (Some(false), Some(false)) => Datum::Bool(false),
                _ => Datum::Null,
            },
            _ => unreachable!(),
        });
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;
    apply_binary(op, &l, &r)
}

/// Apply a non-logical binary operator to two already-evaluated operands:
/// SQL NULL propagation, comparison via [`Datum::sql_cmp`], arithmetic with
/// Int/Double coercion and `x / 0 → NULL`. Shared by the row interpreter
/// and the vectorized evaluator's per-row fallback paths so both planes
/// agree bit-for-bit.
pub fn apply_binary(op: BinOp, l: &Datum, r: &Datum) -> IcResult<Datum> {
    if l.is_null() || r.is_null() {
        return Ok(Datum::Null);
    }
    if op.is_comparison() {
        let ord = l
            .sql_cmp(r)
            .ok_or_else(|| IcError::Exec(format!("cannot compare {l} and {r}")))?;
        let b = match op {
            BinOp::Eq => ord == std::cmp::Ordering::Equal,
            BinOp::Ne => ord != std::cmp::Ordering::Equal,
            BinOp::Lt => ord == std::cmp::Ordering::Less,
            BinOp::Le => ord != std::cmp::Ordering::Greater,
            BinOp::Gt => ord == std::cmp::Ordering::Greater,
            BinOp::Ge => ord != std::cmp::Ordering::Less,
            _ => unreachable!(),
        };
        return Ok(Datum::Bool(b));
    }
    // Arithmetic. Int op Int stays Int except Div; anything with Double is Double.
    match (&l, &r) {
        (Datum::Int(a), Datum::Int(b)) if op != BinOp::Div => Ok(Datum::Int(match op {
            BinOp::Add => a.wrapping_add(*b),
            BinOp::Sub => a.wrapping_sub(*b),
            BinOp::Mul => a.wrapping_mul(*b),
            _ => unreachable!(),
        })),
        _ => {
            let a = l
                .as_double()
                .ok_or_else(|| IcError::Exec(format!("arithmetic on non-numeric {l}")))?;
            let b = r
                .as_double()
                .ok_or_else(|| IcError::Exec(format!("arithmetic on non-numeric {r}")))?;
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Ok(Datum::Null);
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Datum::Double(v))
        }
    }
}

fn eval_func(kind: FuncKind, args: &[Expr], row: &Row) -> IcResult<Datum> {
    let argv: Vec<Datum> = args.iter().map(|a| a.eval(row)).collect::<IcResult<_>>()?;
    if argv.iter().any(Datum::is_null) {
        return Ok(Datum::Null);
    }
    match kind {
        FuncKind::ExtractYear => match &argv[0] {
            Datum::Date(d) => Ok(Datum::Int(dates::year_of(*d) as i64)),
            other => Err(IcError::Exec(format!("EXTRACT YEAR on {other}"))),
        },
        FuncKind::ExtractMonth => match &argv[0] {
            Datum::Date(d) => Ok(Datum::Int(dates::month_of(*d) as i64)),
            other => Err(IcError::Exec(format!("EXTRACT MONTH on {other}"))),
        },
        FuncKind::Substring => {
            let s = argv[0]
                .as_str()
                .ok_or_else(|| IcError::Exec("SUBSTRING on non-string".into()))?;
            let start = argv[1]
                .as_int()
                .ok_or_else(|| IcError::Exec("SUBSTRING start not int".into()))?
                .max(1) as usize;
            let len = argv[2]
                .as_int()
                .ok_or_else(|| IcError::Exec("SUBSTRING length not int".into()))?
                .max(0) as usize;
            let chars: Vec<char> = s.chars().collect();
            let from = (start - 1).min(chars.len());
            let to = (from + len).min(chars.len());
            Ok(Datum::str(chars[from..to].iter().collect::<String>()))
        }
        FuncKind::CastDouble => argv[0]
            .as_double()
            .map(Datum::Double)
            .ok_or_else(|| IcError::Exec("CAST to double failed".into())),
        FuncKind::CastInt => match &argv[0] {
            Datum::Int(i) => Ok(Datum::Int(*i)),
            Datum::Double(d) => Ok(Datum::Int(*d as i64)),
            Datum::Str(s) => s
                .trim()
                .parse::<i64>()
                .map(Datum::Int)
                .map_err(|_| IcError::Exec(format!("CAST('{s}' AS INT) failed"))),
            other => Err(IcError::Exec(format!("CAST {other} to int failed"))),
        },
        FuncKind::Abs => argv[0]
            .as_double()
            .map(|d| Datum::Double(d.abs()))
            .ok_or_else(|| IcError::Exec("ABS on non-numeric".into())),
        FuncKind::AddMonths => match (&argv[0], &argv[1]) {
            (Datum::Date(d), Datum::Int(m)) => Ok(Datum::Date(dates::add_months(*d, *m as i32))),
            _ => Err(IcError::Exec("ADD_MONTHS(date, int) type error".into())),
        },
    }
}

/// SQL LIKE matcher: `%` matches any run, `_` matches one character.
/// Iterative two-pointer algorithm, O(len(s) × len(p)) worst case.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        // The wildcard test must precede the literal test: a '%' in the
        // *subject* must not consume a '%' in the pattern as a literal.
        if pi < p.len() && p[pi] != '%' && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if star_p != usize::MAX {
            star_s += 1;
            si = star_s;
            pi = star_p + 1;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                Expr::Col(i) => write!(f, "${i}"),
                Expr::Lit(d) => match d {
                    Datum::Str(s) => write!(f, "'{s}'"),
                    other => write!(f, "{other}"),
                },
                Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
                Expr::Not(e) => write!(f, "NOT ({e})"),
                Expr::IsNull { expr, negated } => {
                    if *negated {
                        write!(f, "({expr} IS NOT NULL)")
                    } else {
                        write!(f, "({expr} IS NULL)")
                    }
                }
                Expr::Like { expr, pattern, negated } => {
                    if *negated {
                        write!(f, "({expr} NOT LIKE {pattern})")
                    } else {
                        write!(f, "({expr} LIKE {pattern})")
                    }
                }
                Expr::InList { expr, list, negated } => {
                    write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                    for (i, e) in list.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, "))")
                }
                Expr::Case { whens, else_ } => {
                    write!(f, "CASE")?;
                    for (c, v) in whens {
                        write!(f, " WHEN {c} THEN {v}")?;
                    }
                    write!(f, " ELSE {else_} END")
                }
                Expr::Func { kind, args } => {
                    write!(f, "{kind}(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")
                }
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<Datum>) -> Row {
        Row(vals)
    }

    #[test]
    fn arithmetic() {
        let r = row(vec![Datum::Int(6), Datum::Int(4)]);
        let e = Expr::binary(BinOp::Add, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&r).unwrap(), Datum::Int(10));
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::col(1));
        assert_eq!(e.eval(&r).unwrap(), Datum::Double(1.5));
        let e = Expr::binary(BinOp::Div, Expr::col(0), Expr::lit(0i64));
        assert_eq!(e.eval(&r).unwrap(), Datum::Null);
    }

    #[test]
    fn three_valued_logic() {
        let r = row(vec![Datum::Null]);
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
        let null_cmp = Expr::eq(Expr::col(0), Expr::lit(1i64));
        assert_eq!(null_cmp.eval(&r).unwrap(), Datum::Null);
        let e = Expr::and(null_cmp.clone(), Expr::lit(false));
        assert_eq!(e.eval(&r).unwrap(), Datum::Bool(false));
        let e = Expr::or(null_cmp.clone(), Expr::lit(true));
        assert_eq!(e.eval(&r).unwrap(), Datum::Bool(true));
        let e = Expr::and(null_cmp.clone(), Expr::lit(true));
        assert_eq!(e.eval(&r).unwrap(), Datum::Null);
        assert!(!null_cmp.eval_filter(&r).unwrap());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("PROMO BRASS", "PROMO%"));
        assert!(like_match("anything", "%"));
        assert!(like_match("forest green", "%green%"));
        assert!(!like_match("forest green", "green%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("%special%", "%special%"));
        assert!(like_match("MEDIUM POLISHED BRASS", "MEDIUM POLISHED%"));
    }

    #[test]
    fn in_list_null_semantics() {
        let r = row(vec![Datum::Int(5)]);
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Expr::lit(1i64), Expr::Lit(Datum::Null)],
            negated: false,
        };
        // 5 IN (1, NULL) => NULL
        assert_eq!(e.eval(&r).unwrap(), Datum::Null);
        let e = Expr::InList {
            expr: Box::new(Expr::col(0)),
            list: vec![Expr::lit(5i64), Expr::Lit(Datum::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&r).unwrap(), Datum::Bool(true));
    }

    #[test]
    fn case_expr() {
        let r = row(vec![Datum::Int(3)]);
        let e = Expr::Case {
            whens: vec![(Expr::binary(BinOp::Lt, Expr::col(0), Expr::lit(2i64)), Expr::lit(10i64))],
            else_: Box::new(Expr::lit(20i64)),
        };
        assert_eq!(e.eval(&r).unwrap(), Datum::Int(20));
    }

    #[test]
    fn funcs() {
        let d = crate::dates::to_epoch_days(1995, 7, 4);
        let r = row(vec![Datum::Date(d), Datum::str("PROMO BRASS")]);
        let e = Expr::Func { kind: FuncKind::ExtractYear, args: vec![Expr::col(0)] };
        assert_eq!(e.eval(&r).unwrap(), Datum::Int(1995));
        let e = Expr::Func {
            kind: FuncKind::Substring,
            args: vec![Expr::col(1), Expr::lit(1i64), Expr::lit(5i64)],
        };
        assert_eq!(e.eval(&r).unwrap(), Datum::str("PROMO"));
    }

    #[test]
    fn split_and_rebuild_conjunction() {
        let e = Expr::and(
            Expr::eq(Expr::col(0), Expr::lit(1i64)),
            Expr::and(
                Expr::eq(Expr::col(1), Expr::lit(2i64)),
                Expr::eq(Expr::col(2), Expr::lit(3i64)),
            ),
        );
        assert_eq!(e.split_conjunction().len(), 3);
        let rebuilt = Expr::conjunction(e.split_conjunction().into_iter().cloned().collect());
        assert_eq!(rebuilt.split_conjunction().len(), 3);
    }

    #[test]
    fn shift_and_columns() {
        let e = Expr::eq(Expr::col(2), Expr::col(5));
        assert_eq!(e.columns().into_iter().collect::<Vec<_>>(), vec![2, 5]);
        let shifted = e.shift(3, -3);
        assert_eq!(shifted.columns().into_iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(e.max_col_bound(), 6);
    }

    #[test]
    fn display_roundtrip_smoke() {
        let e = Expr::and(
            Expr::eq(Expr::col(0), Expr::lit("x")),
            Expr::Not(Box::new(Expr::col(1))),
        );
        let s = e.to_string();
        assert!(s.contains("AND") && s.contains("'x'"));
    }
}
