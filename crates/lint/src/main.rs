//! `ic-lint` CLI.
//!
//! ```text
//! ic-lint [--deny-all] [--verbose] [--root DIR] [files...]
//! ```
//!
//! With no file arguments, lints the whole workspace (found via
//! `--root`, `CARGO_MANIFEST_DIR/../..`, or the current directory).
//! Exits 1 if any unsuppressed violation is found.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // --deny-all is the default (and only) mode; accepted for CI clarity.
            "--deny-all" => {}
            "--verbose" | "-v" => verbose = true,
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("ic-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: ic-lint [--deny-all] [--verbose] [--root DIR] [files...]");
                println!("rules: {}", ic_lint::rules::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            _ => files.push(PathBuf::from(a)),
        }
    }

    let report = if files.is_empty() {
        let root = root
            .or_else(|| {
                std::env::var("CARGO_MANIFEST_DIR")
                    .ok()
                    .map(|d| PathBuf::from(d).join("../.."))
            })
            .unwrap_or_else(|| PathBuf::from("."));
        let root = root.canonicalize().unwrap_or(root);
        match ic_lint::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ic-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut inputs = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(source) => inputs.push(ic_lint::FileInput {
                    path: f.to_string_lossy().replace('\\', "/"),
                    source,
                }),
                Err(e) => {
                    eprintln!("ic-lint: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        ic_lint::lint_files(&inputs)
    };

    for v in &report.violations {
        println!("{v}");
    }
    if verbose {
        for s in &report.suppressed {
            println!(
                "note: {} suppressed ({})",
                s.violation, s.justification
            );
        }
    }
    eprintln!(
        "ic-lint: {} file(s), {} violation(s), {} suppressed",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
