//! `ic-lint` CLI.
//!
//! ```text
//! ic-lint [--deny-all] [--verbose] [--format text|json] [--root DIR] [files...]
//! ```
//!
//! With no file arguments, lints the whole workspace (found via
//! `--root`, `CARGO_MANIFEST_DIR/../..`, or the current directory).
//! Exits 1 if any unsuppressed violation is found.
//!
//! `--format json` emits one JSON object (`violations`, `suppressed`,
//! `files_scanned`) on stdout for tooling; the default text format is
//! `path:line: RULE message`, matched by the GitHub Actions problem
//! matcher in `.github/ic-lint-problem-matcher.json`.

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut verbose = false;
    let mut format = Format::Text;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            // --deny-all is the default (and only) mode; accepted for CI clarity.
            "--deny-all" => {}
            "--verbose" | "-v" => verbose = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "ic-lint: --format requires 'text' or 'json' (got {})",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("ic-lint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: ic-lint [--deny-all] [--verbose] [--format text|json] [--root DIR] [files...]"
                );
                println!("rules: {}", ic_lint::rules::RULES.join(", "));
                return ExitCode::SUCCESS;
            }
            _ => files.push(PathBuf::from(a)),
        }
    }

    let report = if files.is_empty() {
        let root = root
            .or_else(|| {
                std::env::var("CARGO_MANIFEST_DIR")
                    .ok()
                    .map(|d| PathBuf::from(d).join("../.."))
            })
            .unwrap_or_else(|| PathBuf::from("."));
        let root = root.canonicalize().unwrap_or(root);
        match ic_lint::lint_workspace(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ic-lint: failed to scan {}: {e}", root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut inputs = Vec::new();
        for f in &files {
            match std::fs::read_to_string(f) {
                Ok(source) => inputs.push(ic_lint::FileInput {
                    path: f.to_string_lossy().replace('\\', "/"),
                    source,
                }),
                Err(e) => {
                    eprintln!("ic-lint: cannot read {}: {e}", f.display());
                    return ExitCode::from(2);
                }
            }
        }
        ic_lint::lint_files(&inputs)
    };

    match format {
        Format::Text => {
            for v in &report.violations {
                println!("{v}");
            }
            if verbose {
                for s in &report.suppressed {
                    println!("note: {} suppressed ({})", s.violation, s.justification);
                }
            }
        }
        Format::Json => print!("{}", render_json(&report)),
    }
    eprintln!(
        "ic-lint: {} file(s), {} violation(s), {} suppressed",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Hand-rolled JSON rendering — the crate is std-only by design.
fn render_json(report: &ic_lint::Report) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn violation(v: &ic_lint::Violation) -> String {
        format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            v.rule,
            esc(&v.path),
            v.line,
            esc(&v.message)
        )
    }
    let violations: Vec<String> = report.violations.iter().map(violation).collect();
    let suppressed: Vec<String> = report
        .suppressed
        .iter()
        .map(|s| {
            format!(
                "{{\"violation\":{},\"justification\":\"{}\"}}",
                violation(&s.violation),
                esc(&s.justification)
            )
        })
        .collect();
    format!(
        "{{\"files_scanned\":{},\"violations\":[{}],\"suppressed\":[{}]}}\n",
        report.files_scanned,
        violations.join(","),
        suppressed.join(",")
    )
}
