//! The lint rules and their scopes.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L001 | no `unwrap()`/`expect()` in non-test code of `ic-net`/`ic-exec`/`ic-core`/`ic-sql` |
//! | L002 | single-hash contract: no hasher construction outside `ic_common::hash` |
//! | L003 | no std `HashMap`/`HashSet` in `ic-exec`/`ic-opt`/`ic-storage` hot paths |
//! | L004 | no wall-clock (`Instant::now`/`SystemTime`/`thread::sleep`) in simulation-clock code |
//! | L005 | no cycles in the cross-crate lock-acquisition-order graph |
//! | L006 | buffering operators in `ic-exec` grow buffers only through the `MemoryLease` protocol (no private `buffered_rows`/`buffered_cells` counters) |
//! | L007 | traced code paths (`ic_common::obs`, `ic-exec` operators) read time only via `Trace::now_ns`, never `Instant::now`/`SystemTime` |
//! | L008 | no per-row `Datum` materialization in `ic_exec::kernels` hot loops — kernels stay typed per-column loops; row shims live at operator boundaries |
//!
//! Any rule except L005 can be suppressed per-site with a pragma that must
//! carry a justification:
//!
//! ```text
//! // ic-lint: allow(L001) because the invariant X makes this infallible
//! ```
//!
//! The pragma covers its own line and the next line. A pragma without a
//! justification (no `because ...`) is itself a violation (`L000`).

use crate::tokenizer::{strip_test_regions, tokenize, Comment, Tok, TokKind};

pub const RULES: [&str; 8] =
    ["L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008"];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.rule, self.message)
    }
}

/// A finding suppressed by a pragma, kept for `--verbose` reporting.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub violation: Violation,
    pub justification: String,
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
    pub files_scanned: usize,
}

/// One source file handed to the engine. `path` should be workspace-relative
/// with forward slashes — rule scoping is derived from it.
#[derive(Debug, Clone)]
pub struct FileInput {
    pub path: String,
    pub source: String,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
struct FileCtx {
    /// Crate directory name under `crates/` (e.g. "net"), if any.
    krate: Option<String>,
    /// True for non-test production code (`src/`, not `tests/`/`benches/`).
    is_src: bool,
    /// File name (last path component).
    file: String,
}

fn classify(path: &str) -> FileCtx {
    let p = path.replace('\\', "/");
    let file = p.rsplit('/').next().unwrap_or("").to_string();
    let mut krate = None;
    let mut is_src = false;
    if let Some(rest) = p.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            krate = Some(name.to_string());
            is_src = tail.starts_with("src/");
        }
    } else if p.starts_with("src/") {
        krate = Some("root".to_string());
        is_src = true;
    }
    FileCtx { krate, is_src, file }
}

fn in_scope(rule: &str, ctx: &FileCtx, path: &str) -> bool {
    let krate = match &ctx.krate {
        Some(k) => k.as_str(),
        None => return false,
    };
    if krate == "lint" {
        return false; // the tool does not police itself
    }
    match rule {
        "L001" => ctx.is_src && matches!(krate, "net" | "exec" | "core" | "sql"),
        "L002" => ctx.is_src && krate != "common",
        "L003" => ctx.is_src && matches!(krate, "exec" | "opt" | "storage"),
        "L004" => {
            (ctx.is_src && krate == "net")
                || path.replace('\\', "/").ends_with("crates/exec/src/runtime.rs")
                || (krate == "exec" && ctx.is_src && ctx.file == "runtime.rs")
        }
        "L005" => ctx.is_src,
        "L006" => ctx.is_src && krate == "exec",
        "L007" => {
            (ctx.is_src
                && krate == "common"
                && path.replace('\\', "/").contains("src/obs/"))
                || (ctx.is_src && krate == "exec" && ctx.file == "operators.rs")
        }
        "L008" => ctx.is_src && krate == "exec" && ctx.file == "kernels.rs",
        _ => false,
    }
}

/// Pragmas parsed from a file's line comments.
#[derive(Debug, Default)]
struct Pragmas {
    /// (rule, line) pairs covered by an `allow` pragma, with justification.
    allows: Vec<(String, u32, String)>,
    /// Malformed pragmas (missing justification / unknown rule).
    errors: Vec<(u32, String)>,
}

fn parse_pragmas(comments: &[Comment]) -> Pragmas {
    let mut out = Pragmas::default();
    for c in comments {
        let Some(pos) = c.text.find("ic-lint:") else { continue };
        let body = c.text[pos + "ic-lint:".len()..].trim();
        let Some(args) = body.strip_prefix("allow") else {
            out.errors.push((c.line, format!("unknown ic-lint directive: '{body}'")));
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            out.errors.push((c.line, "malformed allow pragma: missing ')'".into()));
            continue;
        };
        let rules_part = args
            .strip_prefix('(')
            .map(|s| &s[..close.saturating_sub(1)])
            .unwrap_or("");
        let tail = args[close + 1..].trim();
        let justification = match tail.strip_prefix("because") {
            Some(j) if !j.trim().is_empty() => j.trim().to_string(),
            _ => {
                out.errors.push((
                    c.line,
                    "allow pragma requires a justification: `// ic-lint: allow(L00x) because ...`"
                        .into(),
                ));
                continue;
            }
        };
        for rule in rules_part.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            if !RULES.contains(&rule) {
                out.errors.push((c.line, format!("unknown rule '{rule}' in allow pragma")));
                continue;
            }
            out.allows.push((rule.to_string(), c.line, justification.clone()));
        }
    }
    out
}

impl Pragmas {
    /// Justification if `rule` is allowed at `line` (pragma on the same or
    /// the preceding line).
    fn allowed(&self, rule: &str, line: u32) -> Option<&str> {
        self.allows
            .iter()
            .find(|(r, l, _)| r == rule && (*l == line || l + 1 == line))
            .map(|(_, _, j)| j.as_str())
    }
}

/// Lint a set of files; rules are scoped by each file's path.
pub fn lint_files(files: &[FileInput]) -> Report {
    let mut report = Report::default();
    let mut lock_edges: Vec<crate::lockgraph::LockEdge> = Vec::new();
    for f in files {
        let ctx = classify(&f.path);
        if ctx.krate.as_deref() == Some("lint") {
            // The tool does not police itself (its sources and docs quote
            // the very patterns the rules ban).
            report.files_scanned += 1;
            continue;
        }
        let (all_toks, comments) = tokenize(&f.source);
        let toks = strip_test_regions(&all_toks);
        let pragmas = parse_pragmas(&comments);
        for (line, msg) in &pragmas.errors {
            report.violations.push(Violation {
                rule: "L000",
                path: f.path.clone(),
                line: *line,
                message: msg.clone(),
            });
        }

        let mut findings: Vec<(&'static str, u32, String)> = Vec::new();
        if in_scope("L001", &ctx, &f.path) {
            findings.extend(rule_l001(&toks));
        }
        if in_scope("L002", &ctx, &f.path) {
            findings.extend(rule_l002(&toks));
        }
        if in_scope("L003", &ctx, &f.path) {
            findings.extend(rule_l003(&toks));
        }
        if in_scope("L004", &ctx, &f.path) {
            findings.extend(rule_l004(&toks));
        }
        if in_scope("L006", &ctx, &f.path) {
            findings.extend(rule_l006(&toks));
        }
        if in_scope("L007", &ctx, &f.path) {
            findings.extend(rule_l007(&toks));
        }
        if in_scope("L008", &ctx, &f.path) {
            findings.extend(rule_l008(&toks));
        }
        if in_scope("L005", &ctx, &f.path) {
            lock_edges.extend(crate::lockgraph::extract_edges(&f.path, &toks));
        }

        for (rule, line, message) in findings {
            let v = Violation { rule, path: f.path.clone(), line, message };
            match pragmas.allowed(rule, line) {
                Some(j) => report
                    .suppressed
                    .push(Suppressed { violation: v, justification: j.to_string() }),
                None => report.violations.push(v),
            }
        }
        report.files_scanned += 1;
    }

    // L005 is cross-file: build the global graph and report cycles.
    for cycle in crate::lockgraph::find_cycles(&lock_edges) {
        report.violations.push(Violation {
            rule: "L005",
            path: cycle.path.clone(),
            line: cycle.line,
            message: cycle.message,
        });
    }
    report
}

/// L001: `.unwrap()` / `.expect(` calls.
fn rule_l001(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for w in toks.windows(3) {
        if w[0].is_punct('.')
            && w[1].kind == TokKind::Ident
            && (w[1].text == "unwrap" || w[1].text == "expect")
            && w[2].is_punct('(')
        {
            out.push((
                "L001",
                w[1].line,
                format!(
                    ".{}() in non-test code; return a typed IcError instead (or justify \
                     with an allow pragma)",
                    w[1].text
                ),
            ));
        }
    }
    out
}

/// L002: hasher construction outside `ic_common::hash` — the whole stack
/// must agree on one hash function (`Row::hash_key`) because partition
/// routing computes `hash(key) % partitions` on every site.
fn rule_l002(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    const BANNED: [&str; 6] = [
        "DefaultHasher",
        "RandomState",
        "SipHasher",
        "SipHasher13",
        "BuildHasherDefault",
        "FxHasher",
    ];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push((
                "L002",
                t.line,
                format!(
                    "`{}` outside ic_common::hash breaks the single-hash contract; \
                     hash rows via Row::hash_key / FxHashMap",
                    t.text
                ),
            ));
        }
        // `std :: hash` path reference.
        if t.is_ident("std")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && toks.get(i + 3).is_some_and(|c| c.is_ident("hash"))
        {
            out.push((
                "L002",
                t.line,
                "`std::hash` outside ic_common::hash breaks the single-hash contract".into(),
            ));
        }
    }
    out
}

/// L003: std `HashMap`/`HashSet` (SipHash + per-process random seed) in the
/// execution/planner/storage hot paths; use `FlatMap` in per-row kernels or
/// the deterministic `FxHashMap`/`FxHashSet` elsewhere.
fn rule_l003(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push((
                "L003",
                t.line,
                format!(
                    "std `{}` in a hot-path crate; use FlatMap (kernels) or Fx{} \
                     from ic_common",
                    t.text, t.text
                ),
            ));
        }
    }
    out
}

/// L004: wall-clock time in simulation-clock code. `ic-net`'s fault layer
/// and the exchange tick space are driven by logical ticks; real time there
/// makes fault schedules nondeterministic and figures untrustworthy.
fn rule_l004(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push(("L004", t.line, "`SystemTime` in simulation-clock code".into()));
        }
        let path2 = |a: &str, b: &str| {
            t.is_ident(a)
                && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && toks.get(i + 3).is_some_and(|x| x.is_ident(b))
        };
        if path2("Instant", "now") {
            out.push((
                "L004",
                t.line,
                "`Instant::now()` in simulation-clock code; use logical ticks".into(),
            ));
        }
        if path2("thread", "sleep") {
            out.push((
                "L004",
                t.line,
                "`thread::sleep` in simulation-clock code; advance the virtual clock".into(),
            ));
        }
    }
    out
}

/// L006: private buffer accounting in the execution crate. Every cell an
/// operator buffers must flow through the query's `MemoryLease` (via
/// `ControlBlock::reserve`/`reserve_batch`) so the cluster governor can see
/// — and revoke — it; a side-channel `buffered_rows` counter (the pre-lease
/// design) silently escapes the shared budget.
fn rule_l006(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "buffered_rows" || t.text == "buffered_cells") {
            out.push((
                "L006",
                t.line,
                format!(
                    "private `{}` counter in ic-exec; account buffered cells through the \
                     query's MemoryLease (ControlBlock::reserve) so the governor can revoke them",
                    t.text
                ),
            ));
        }
        // Atomic mutation of any *buffered* counter (`foo_buffered.fetch_add(...)`)
        // is the same escape hatch under a different name.
        if t.kind == TokKind::Ident
            && t.text.contains("buffered")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && toks.get(i + 2).is_some_and(|b| {
                b.kind == TokKind::Ident && b.text.starts_with("fetch_")
            })
        {
            out.push((
                "L006",
                t.line,
                format!(
                    "direct atomic update of `{}` bypasses the MemoryLease protocol",
                    t.text
                ),
            ));
        }
    }
    out
}

/// L007: raw wall-clock reads in traced code paths. Span timestamps must
/// all derive from one clock — the trace epoch ([`Trace::now_ns`]) — or
/// span intervals stop nesting and `Trace::validate` (and every duration in
/// `EXPLAIN ANALYZE`) becomes untrustworthy. A second motivation is cost:
/// the traced hot path budget is two clock reads per batch, and stray
/// `Instant::now()` calls sprinkled into operators silently grow it.
///
/// [`Trace::now_ns`]: ../../ic_common/obs/struct.Trace.html#method.now_ns
fn rule_l007(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push((
                "L007",
                t.line,
                "`SystemTime` in a traced code path; derive timestamps from Trace::now_ns".into(),
            ));
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident("now"))
        {
            out.push((
                "L007",
                t.line,
                "`Instant::now()` in a traced code path; use Trace::now_ns so every \
                 timestamp shares the trace epoch"
                    .into(),
            ));
        }
    }
    out
}

/// L008: per-row `Datum` materialization in the columnar kernels. The whole
/// point of `ic_exec::kernels` is that its inner loops are typed per-column
/// sweeps; a stray `datum_at`/`to_rows` call re-boxes every value into an
/// enum and quietly reverts the loop to row-at-a-time cost. Row shims belong
/// in the operators (scan boundary, final rowset), not here. The few
/// legitimate per-group (not per-row) materializations carry pragmas.
fn rule_l008(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    const BANNED: [&str; 6] =
        ["datum_at", "row_at", "to_rows", "from_rows", "push_datum", "eval_datum"];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && BANNED.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            out.push((
                "L008",
                t.line,
                format!(
                    "per-row `{}` in a kernel hot loop boxes a Datum per row; keep kernels \
                     as typed per-column loops (row shims live in the operators)",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Report {
        lint_files(&[FileInput { path: path.into(), source: src.into() }])
    }

    #[test]
    fn l001_flags_and_pragma_suppresses() {
        let bad = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        let r = lint_one("crates/net/src/a.rs", bad);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[0].rule, "L001");

        let ok = "// ic-lint: allow(L001) because infallible by construction\nfn f() { x.unwrap(); }";
        let r = lint_one("crates/net/src/a.rs", ok);
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.suppressed[0].justification.contains("infallible"));
    }

    #[test]
    fn l001_pragma_requires_justification() {
        let src = "// ic-lint: allow(L001)\nfn f() { x.unwrap(); }";
        let r = lint_one("crates/net/src/a.rs", src);
        // Both the malformed pragma and the (unsuppressed) unwrap fire.
        assert!(r.violations.iter().any(|v| v.rule == "L000"));
        assert!(r.violations.iter().any(|v| v.rule == "L001"));
    }

    #[test]
    fn l001_out_of_scope_crates_ignored() {
        let src = "fn f() { x.unwrap(); }";
        assert!(lint_one("crates/plan/src/a.rs", src).violations.is_empty());
        assert!(lint_one("crates/net/tests/a.rs", src).violations.is_empty());
        // crates/sql joined the L001 scope with the fuzzer front end.
        assert!(!lint_one("crates/sql/src/a.rs", src).violations.is_empty());
    }

    #[test]
    fn l002_flags_hashers() {
        let src = "use std::hash::Hasher; fn f() { let h = DefaultHasher::new(); }";
        let r = lint_one("crates/opt/src/a.rs", src);
        assert!(r.violations.iter().filter(|v| v.rule == "L002").count() >= 2);
        // ic_common::hash itself is exempt.
        let r = lint_one("crates/common/src/hash.rs", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn l003_flags_std_maps_in_hot_crates() {
        let src = "use std::collections::HashMap; fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let r = lint_one("crates/exec/src/kernels.rs", src);
        assert!(r.violations.iter().all(|v| v.rule == "L003"));
        assert_eq!(r.violations.len(), 3);
        // FxHashMap is fine.
        let r = lint_one("crates/exec/src/kernels.rs", "fn f() { let m = FxHashMap::default(); }");
        assert!(r.violations.is_empty());
        // ic-net is not in L003 scope.
        let r = lint_one("crates/net/src/fault.rs", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn l004_flags_wall_clock() {
        let src = "fn f() { let t = Instant::now(); std::thread::sleep(d); let s = SystemTime::now(); }";
        let r = lint_one("crates/net/src/fault.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L004").count(), 3);
        let r = lint_one("crates/exec/src/runtime.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L004").count(), 3);
        // Other exec files are out of L004 scope.
        let r = lint_one("crates/exec/src/operators.rs", src);
        assert!(r.violations.iter().all(|v| v.rule != "L004"));
    }

    #[test]
    fn l006_flags_private_buffer_counters_in_exec_only() {
        let src = "struct S { buffered_rows: AtomicU64 }\n\
                   fn f(s: &S) { s.total_buffered.fetch_add(1, Ordering::Relaxed); }";
        let r = lint_one("crates/exec/src/operators.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L006").count(), 2);
        // Lease-mediated accounting and the QueryStats field are fine.
        let ok = "fn f(ctrl: &ControlBlock) { ctrl.reserve(n)?; let p = peak_buffered_rows; }";
        assert!(lint_one("crates/exec/src/operators.rs", ok).violations.is_empty());
        // Outside ic-exec src the rule does not apply.
        assert!(lint_one("crates/core/src/cluster.rs", src).violations.is_empty());
        assert!(lint_one("crates/exec/tests/a.rs", src).violations.is_empty());
    }

    #[test]
    fn l007_flags_wall_clock_in_traced_paths() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let r = lint_one("crates/common/src/obs/trace.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L007").count(), 2);
        let r = lint_one("crates/exec/src/operators.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L007").count(), 2);
        // A bare `Instant` type reference (fields, signatures) is fine —
        // only the clock *read* is policed.
        let ok = "struct S { deadline: Option<Instant> } fn g(d: Instant) {}";
        assert!(lint_one("crates/exec/src/operators.rs", ok).violations.is_empty());
        // ic-common outside obs/ and other exec files are out of scope.
        assert!(lint_one("crates/common/src/lease.rs", src).violations.is_empty());
        assert!(lint_one("crates/exec/src/kernels.rs", src)
            .violations
            .iter()
            .all(|v| v.rule != "L007"));
    }

    #[test]
    fn l008_flags_per_row_datums_in_kernels_only() {
        let src = "fn f(b: &ColumnBatch) { let d = b.col(0).datum_at(i); let rs = b.to_rows(); }";
        let r = lint_one("crates/exec/src/kernels.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L008").count(), 2);
        // A justified pragma suppresses, keeping the why.
        let ok = "// ic-lint: allow(L008) because group keys materialize once per group\n\
                  fn f(b: &ColumnBatch) { keys.push(b.col(0).datum_at(i)); }";
        let r = lint_one("crates/exec/src/kernels.rs", ok);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        // Row shims in the operators (and everywhere else) are fine.
        assert!(lint_one("crates/exec/src/operators.rs", src).violations.is_empty());
        assert!(lint_one("crates/exec/tests/kernel_props.rs", src).violations.is_empty());
        // A bare ident without a call (doc text, field name) does not fire.
        let bare = "struct S { to_rows: u32 }";
        assert!(lint_one("crates/exec/src/kernels.rs", bare).violations.is_empty());
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            // x.unwrap() in a comment
            fn f() { let s = "y.unwrap() and HashMap and Instant::now"; }
        "#;
        let r = lint_one("crates/exec/src/runtime.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
