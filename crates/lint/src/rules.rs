//! The lint rules and their scopes.
//!
//! | Rule | Invariant |
//! |------|-----------|
//! | L001 | no `unwrap()`/`expect()` in non-test code of `ic-net`/`ic-exec`/`ic-core`/`ic-sql`/`ic-fuzz`/bench lib — **or in any fn reachable from a kernel/operator entry point** |
//! | L002 | single-hash contract: no hasher construction outside `ic_common::hash` |
//! | L003 | no std `HashMap`/`HashSet` in `ic-exec`/`ic-opt`/`ic-storage` hot paths |
//! | L004 | no wall-clock (`Instant::now`/`SystemTime`/`thread::sleep`) in simulation-clock code |
//! | L005 | no cycles in the cross-crate lock-acquisition-order graph (held sets flow through deferred closures) |
//! | L006 | buffering operators in `ic-exec` grow buffers only through the `MemoryLease` protocol (no private `buffered_rows`/`buffered_cells` counters) |
//! | L007 | traced code paths (`ic_common::obs`, `ic-exec` operators) read time only via `Trace::now_ns`, never `Instant::now`/`SystemTime` |
//! | L008 | no per-row `Datum` materialization in kernel hot paths — `ic_exec::kernels` itself plus every fn **call-graph-reachable** from a kernel |
//! | L009 | error-classification soundness: `IcError::is_retryable`/`is_failover_retryable` classify every variant explicitly (no `_` arm), and no retry loop can re-enter on an unclassified error |
//! | L010 | columnar-plane discipline: no raw `[]`/`get().unwrap()` indexing of column buffers or selection vectors outside `ic_common::col` + the kernel/eval plane; vectorized readers check validity |
//! | L011 | observability-name registry: every metric/event name literal appears in OBSERVABILITY.md and vice versa |
//! | L012 | no heap allocation reachable from kernel inner loops (the kernels-bench reuse contract) |
//!
//! L001/L008's hot-path classification is *semantic*: the engine parses every
//! file into items ([`crate::parser`]), builds a workspace symbol table
//! ([`crate::symbols`]) and call graph ([`crate::callgraph`]), and marks as
//! hot everything reachable from the kernel entry points
//! (`crates/exec/src/kernels.rs`, `crates/exec/src/eval.rs`) and the operator
//! entry points (`next_batch`/`next_rows` in `operators.rs`). A helper in any
//! crate called from a kernel is policed like the kernel itself.
//!
//! Any rule except L005 can be suppressed per-site with a pragma that must
//! carry a justification:
//!
//! ```text
//! // ic-lint: allow(L001) because the invariant X makes this infallible
//! ```
//!
//! The pragma covers its own line and the next line. A pragma without a
//! justification (no `because ...`) is itself a violation (`L000`).

use crate::callgraph::CallGraph;
use crate::dataflow;
use crate::parser::{parse_tokens, ParsedFile};
use crate::symbols::SymbolTable;
use crate::tokenizer::{strip_test_regions, tokenize, Comment, Tok, TokKind};
use std::collections::{HashMap, HashSet};

pub const RULES: [&str; 12] = [
    "L001", "L002", "L003", "L004", "L005", "L006", "L007", "L008", "L009", "L010", "L011",
    "L012",
];

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub path: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {} {}", self.path, self.line, self.rule, self.message)
    }
}

/// A finding suppressed by a pragma, kept for `--verbose` reporting.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub violation: Violation,
    pub justification: String,
}

/// Result of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    pub suppressed: Vec<Suppressed>,
    pub files_scanned: usize,
}

/// One source file handed to the engine. `path` should be workspace-relative
/// with forward slashes — rule scoping is derived from it.
#[derive(Debug, Clone)]
pub struct FileInput {
    pub path: String,
    pub source: String,
}

/// The observability-name registry (L011), parsed from OBSERVABILITY.md:
/// every backticked dotted lowercase name, with the line it appears on.
#[derive(Debug, Clone, Default)]
pub struct ObsDoc {
    pub path: String,
    pub names: Vec<(String, u32)>,
}

impl ObsDoc {
    pub fn parse(path: &str, content: &str) -> ObsDoc {
        let mut names = Vec::new();
        let mut seen = HashSet::new();
        for (idx, line) in content.lines().enumerate() {
            for (si, seg) in line.split('`').enumerate() {
                // Odd segments are inside backticks.
                if si % 2 == 1 && is_metric_name(seg) && seen.insert(seg.to_string()) {
                    names.push((seg.to_string(), idx as u32 + 1));
                }
            }
        }
        ObsDoc { path: path.to_string(), names }
    }

    fn contains(&self, name: &str) -> bool {
        self.names.iter().any(|(n, _)| n == name)
    }
}

/// A dotted lowercase metric/event name: `seg(.seg)+` where each segment is
/// `[a-z0-9_]+` and the first starts with a letter.
fn is_metric_name(s: &str) -> bool {
    if !s.contains('.') {
        return false;
    }
    let mut first = true;
    for part in s.split('.') {
        if part.is_empty() {
            return false;
        }
        let c0 = part.chars().next().unwrap();
        if first && !c0.is_ascii_lowercase() {
            return false;
        }
        if !part.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
        first = false;
    }
    true
}

/// Engine options beyond the file list.
#[derive(Debug, Default)]
pub struct LintOptions {
    /// The L011 registry. When absent, L011 is skipped entirely.
    pub obs_doc: Option<ObsDoc>,
    /// Also report registry names never used in code (the reverse direction
    /// of L011). Only meaningful for full-workspace scans.
    pub check_obs_unused: bool,
}

/// Where a file sits in the workspace, for rule scoping.
#[derive(Debug, Clone)]
struct FileCtx {
    /// Crate directory name under `crates/` (e.g. "net"), if any.
    krate: Option<String>,
    /// True for non-test production code (`src/`, not `tests/`/`benches/`).
    is_src: bool,
    /// File name (last path component).
    file: String,
}

fn classify(path: &str) -> FileCtx {
    let p = path.replace('\\', "/");
    let file = p.rsplit('/').next().unwrap_or("").to_string();
    let mut krate = None;
    let mut is_src = false;
    if let Some(rest) = p.strip_prefix("crates/") {
        if let Some((name, tail)) = rest.split_once('/') {
            krate = Some(name.to_string());
            is_src = tail.starts_with("src/");
        }
    } else if p.starts_with("src/") {
        krate = Some("root".to_string());
        is_src = true;
    }
    FileCtx { krate, is_src, file }
}

fn in_scope(rule: &str, ctx: &FileCtx, path: &str) -> bool {
    let krate = match &ctx.krate {
        Some(k) => k.as_str(),
        None => return false,
    };
    if krate == "lint" {
        return false; // the tool does not police itself
    }
    let norm = path.replace('\\', "/");
    match rule {
        // Panic-freedom: the distributed stack, the SQL front end, the
        // fuzzer, and the bench *library* (bin/ harness entry points keep
        // the unwrap-on-setup convention).
        "L001" => {
            ctx.is_src
                && (matches!(krate, "net" | "exec" | "core" | "sql" | "fuzz")
                    || (krate == "bench" && !norm.contains("/bin/")))
        }
        "L002" => ctx.is_src && krate != "common",
        "L003" => ctx.is_src && matches!(krate, "exec" | "opt" | "storage"),
        "L004" => {
            (ctx.is_src && krate == "net")
                || norm.ends_with("crates/exec/src/runtime.rs")
                || (krate == "exec" && ctx.is_src && ctx.file == "runtime.rs")
        }
        "L005" => ctx.is_src,
        "L006" => ctx.is_src && krate == "exec",
        "L007" => {
            (ctx.is_src && krate == "common" && norm.contains("src/obs/"))
                || (ctx.is_src && krate == "exec" && ctx.file == "operators.rs")
        }
        "L008" => ctx.is_src && krate == "exec" && ctx.file == "kernels.rs",
        // Retry-loop soundness applies to all production code; the
        // classifier-exhaustiveness half anchors to the IcError definition.
        "L009" => ctx.is_src,
        "L010" => ctx.is_src,
        "L011" => ctx.is_src,
        "L012" => ctx.is_src,
        _ => false,
    }
}

/// Pragmas parsed from a file's line comments.
#[derive(Debug, Default)]
struct Pragmas {
    /// (rule, line) pairs covered by an `allow` pragma, with justification.
    allows: Vec<(String, u32, String)>,
    /// Malformed pragmas (missing justification / unknown rule).
    errors: Vec<(u32, String)>,
}

fn parse_pragmas(comments: &[Comment]) -> Pragmas {
    let mut out = Pragmas::default();
    for c in comments {
        let Some(pos) = c.text.find("ic-lint:") else { continue };
        let body = c.text[pos + "ic-lint:".len()..].trim();
        let Some(args) = body.strip_prefix("allow") else {
            out.errors.push((c.line, format!("unknown ic-lint directive: '{body}'")));
            continue;
        };
        let args = args.trim_start();
        let Some(close) = args.find(')') else {
            out.errors.push((c.line, "malformed allow pragma: missing ')'".into()));
            continue;
        };
        let rules_part = args
            .strip_prefix('(')
            .map(|s| &s[..close.saturating_sub(1)])
            .unwrap_or("");
        let tail = args[close + 1..].trim();
        let justification = match tail.strip_prefix("because") {
            Some(j) if !j.trim().is_empty() => j.trim().to_string(),
            _ => {
                out.errors.push((
                    c.line,
                    "allow pragma requires a justification: `// ic-lint: allow(L00x) because ...`"
                        .into(),
                ));
                continue;
            }
        };
        for rule in rules_part.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            if !RULES.contains(&rule) {
                out.errors.push((c.line, format!("unknown rule '{rule}' in allow pragma")));
                continue;
            }
            out.allows.push((rule.to_string(), c.line, justification.clone()));
        }
    }
    out
}

impl Pragmas {
    /// Justification if `rule` is allowed at `line` (pragma on the same or
    /// the preceding line).
    fn allowed(&self, rule: &str, line: u32) -> Option<&str> {
        self.allows
            .iter()
            .find(|(r, l, _)| r == rule && (*l == line || l + 1 == line))
            .map(|(_, _, j)| j.as_str())
    }
}

fn is_kernel_file(path: &str) -> bool {
    path.replace('\\', "/").ends_with("crates/exec/src/kernels.rs")
}

fn is_eval_file(path: &str) -> bool {
    path.replace('\\', "/").ends_with("crates/exec/src/eval.rs")
}

fn is_operators_file(path: &str) -> bool {
    path.replace('\\', "/").ends_with("crates/exec/src/operators.rs")
}

/// The columnar data layer itself — where the row/Datum shims are *defined*
/// and raw buffer access is the implementation, not a leak.
fn is_data_layer(path: &str) -> bool {
    let p = path.replace('\\', "/");
    p.ends_with("crates/common/src/col.rs")
        || p.ends_with("crates/common/src/datum.rs")
        || p.ends_with("crates/common/src/row.rs")
}

/// Files sanctioned for raw `[]` access to column buffers (L010): the data
/// layer plus the vectorized kernel/eval plane (which instead must prove it
/// checks validity).
fn l010_sanctioned(path: &str) -> bool {
    is_data_layer(path) || is_kernel_file(path) || is_eval_file(path)
}

/// Lint a set of files; rules are scoped by each file's path.
pub fn lint_files(files: &[FileInput]) -> Report {
    lint_files_with(files, &LintOptions::default())
}

/// Lint with options (observability registry, reverse-doc checking).
pub fn lint_files_with(files: &[FileInput], opts: &LintOptions) -> Report {
    let mut report = Report::default();

    // ---- Phase 1: parse every non-lint file into items. ----
    struct Entry {
        ctx: FileCtx,
        parsed: ParsedFile,
        pragmas: Pragmas,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for f in files {
        let ctx = classify(&f.path);
        report.files_scanned += 1;
        if ctx.krate.as_deref() == Some("lint") {
            // The tool does not police itself (its sources and docs quote
            // the very patterns the rules ban).
            continue;
        }
        let (all_toks, comments) = tokenize(&f.source);
        let toks = strip_test_regions(&all_toks);
        let parsed = parse_tokens(&f.path, toks, comments);
        let pragmas = parse_pragmas(&parsed.comments);
        entries.push(Entry { ctx, parsed, pragmas });
    }

    // ---- Phase 2: symbol table, call graph, hot sets. ----
    let parsed_files: Vec<&ParsedFile> = entries.iter().map(|e| &e.parsed).collect();
    let syms = SymbolTable::build_refs(&parsed_files);
    let graph = CallGraph::build_refs(&parsed_files, &syms);

    let mut kernel_roots: Vec<usize> = Vec::new();
    let mut entry_roots: Vec<usize> = Vec::new();
    for (id, sym) in syms.fns.iter().enumerate() {
        if is_kernel_file(&sym.path) {
            kernel_roots.push(id);
            entry_roots.push(id);
        } else if is_eval_file(&sym.path)
            || (is_operators_file(&sym.path)
                && matches!(sym.name.as_str(), "next_batch" | "next_rows"))
        {
            entry_roots.push(id);
        }
    }
    let l001_hot = graph.reachable(&entry_roots);
    let l008_hot = graph.reachable(&kernel_roots);
    let loop_hot = graph.loop_hot(&kernel_roots);

    // fn ids per parsed-file index.
    let mut fns_of_file: HashMap<usize, Vec<usize>> = HashMap::new();
    for (id, sym) in syms.fns.iter().enumerate() {
        fns_of_file.entry(sym.file).or_default().push(id);
    }

    // ---- Phase 3: per-file findings. ----
    let mut lock_edges: Vec<crate::lockgraph::LockEdge> = Vec::new();
    let mut obs_names_used: HashSet<String> = HashSet::new();

    for (fi, e) in entries.iter().enumerate() {
        let path = &e.parsed.path;
        let ctx = &e.ctx;
        let toks = &e.parsed.toks;
        for (line, msg) in &e.pragmas.errors {
            report.violations.push(Violation {
                rule: "L000",
                path: path.clone(),
                line: *line,
                message: msg.clone(),
            });
        }

        let mut findings: Vec<(&'static str, u32, String)> = Vec::new();
        // Findings from per-fn semantic passes carry the enclosing fn's
        // signature line: a pragma above the `fn` covers the whole body.
        let mut fn_findings: Vec<(&'static str, u32, String, u32)> = Vec::new();
        if in_scope("L001", ctx, path) {
            findings.extend(rule_l001(toks));
        }
        if in_scope("L002", ctx, path) {
            findings.extend(rule_l002(toks));
        }
        if in_scope("L003", ctx, path) {
            findings.extend(rule_l003(toks));
        }
        if in_scope("L004", ctx, path) {
            findings.extend(rule_l004(toks));
        }
        if in_scope("L006", ctx, path) {
            findings.extend(rule_l006(toks));
        }
        if in_scope("L007", ctx, path) {
            findings.extend(rule_l007(toks));
        }
        if in_scope("L008", ctx, path) {
            findings.extend(rule_l008(toks));
        }
        if in_scope("L005", ctx, path) {
            lock_edges.extend(crate::lockgraph::extract_edges(path, toks));
        }

        // --- Semantic passes over this file's fns. ---
        let file_fn_ids: &[usize] = fns_of_file.get(&fi).map(|v| v.as_slice()).unwrap_or(&[]);
        for &id in file_fn_ids {
            let f = &e.parsed.fns[syms.fns[id].fn_idx];
            let Some(body) = f.body else { continue };

            // L001 via reachability: hot fns outside the path-scoped crates.
            if ctx.is_src && l001_hot.contains(&id) && !in_scope("L001", ctx, path) {
                for (_, line, msg) in rule_l001(&toks[body.0..body.1]) {
                    fn_findings.push((
                        "L001",
                        line,
                        format!("{msg} [fn `{}` is reachable from a kernel/operator entry point]", f.name),
                        f.line,
                    ));
                }
            }
            // L008 via reachability: hot fns outside kernels.rs, except the
            // data layer (defines the shims) and the operator boundary.
            if ctx.is_src
                && l008_hot.contains(&id)
                && !is_kernel_file(path)
                && !is_data_layer(path)
                && !is_operators_file(path)
            {
                for (_, line, msg) in rule_l008(&toks[body.0..body.1]) {
                    fn_findings.push((
                        "L008",
                        line,
                        format!("{msg} [fn `{}` is reachable from a kernel]", f.name),
                        f.line,
                    ));
                }
            }
            // L009 (b): retry loops must classify before re-entering.
            if in_scope("L009", ctx, path) {
                for (line, msg) in dataflow::retry_loop_findings(toks, body) {
                    fn_findings.push(("L009", line, msg, f.line));
                }
            }
            // L010: columnar-plane discipline.
            if in_scope("L010", ctx, path) {
                let facts = dataflow::column_facts(toks, body);
                if l010_sanctioned(path) {
                    // Inside the vectorized plane: raw reads are the point,
                    // but they must be validity-checked. The data layer
                    // (col.rs) defines the accessors and is fully exempt.
                    if (is_kernel_file(path) || is_eval_file(path))
                        && !facts.buf_vars.is_empty()
                        && !facts.index_sites.is_empty()
                        && !facts.mentions_validity
                    {
                        let (var, line, _) = &facts.index_sites[0];
                        fn_findings.push((
                            "L010",
                            *line,
                            format!(
                                "fn `{}` reads typed column buffer `{var}` without consulting \
                                 the validity bitmap (is_valid)",
                                f.name
                            ),
                            f.line,
                        ));
                    }
                } else {
                    for (var, line, kind) in &facts.index_sites {
                        let how = match kind {
                            dataflow::IndexKind::Bracket => "[]",
                            dataflow::IndexKind::GetUnwrap => ".get().unwrap()",
                        };
                        fn_findings.push((
                            "L010",
                            *line,
                            format!(
                                "raw {how} indexing of column buffer/selection `{var}` outside \
                                 ic_common::col and the kernel plane; use Column accessors or \
                                 sanctioned iteration helpers",
                            ),
                            f.line,
                        ));
                    }
                }
            }
            // L012: allocations in kernel loops, and anywhere in loop-hot fns.
            if ctx.is_src {
                if is_kernel_file(path) {
                    for lr in dataflow::loop_ranges(toks, body) {
                        for (line, what) in dataflow::alloc_sites(toks, lr) {
                            fn_findings.push((
                                "L012",
                                line,
                                format!("{what} inside a kernel inner loop (fn `{}`)", f.name),
                                f.line,
                            ));
                        }
                    }
                } else if loop_hot.contains(&id) {
                    for (line, what) in dataflow::alloc_sites(toks, body) {
                        fn_findings.push((
                            "L012",
                            line,
                            format!(
                                "{what} in fn `{}`, which runs per-element under a kernel loop",
                                f.name
                            ),
                            f.line,
                        ));
                    }
                }
            }
        }

        // L009 (a): classifier exhaustiveness, anchored to the IcError enum.
        if in_scope("L009", ctx, path) {
            findings.extend(rule_l009_classifiers(&e.parsed));
        }

        // L011 forward: metric/event name literals must be in the registry.
        if let Some(doc) = &opts.obs_doc {
            if in_scope("L011", ctx, path) {
                for (name, line) in metric_name_literals(toks) {
                    obs_names_used.insert(name.clone());
                    if !doc.contains(&name) {
                        findings.push((
                            "L011",
                            line,
                            format!(
                                "metric/event name \"{name}\" is not documented in {}; \
                                 register it or fix the drift",
                                doc.path
                            ),
                        ));
                    }
                }
            }
        }

        let mut all: Vec<(&'static str, u32, String, Option<u32>)> =
            findings.into_iter().map(|(r, l, m)| (r, l, m, None)).collect();
        all.extend(fn_findings.into_iter().map(|(r, l, m, fl)| (r, l, m, Some(fl))));
        for (rule, line, message, fn_line) in all {
            let v = Violation { rule, path: path.clone(), line, message };
            let just = e
                .pragmas
                .allowed(rule, line)
                .or_else(|| fn_line.and_then(|fl| e.pragmas.allowed(rule, fl)));
            match just {
                Some(j) => report
                    .suppressed
                    .push(Suppressed { violation: v, justification: j.to_string() }),
                None => report.violations.push(v),
            }
        }
    }

    // ---- Phase 4: cross-file rules. ----
    // L005: build the global lock graph and report cycles.
    for cycle in crate::lockgraph::find_cycles(&lock_edges) {
        report.violations.push(Violation {
            rule: "L005",
            path: cycle.path.clone(),
            line: cycle.line,
            message: cycle.message,
        });
    }
    // L011 reverse: registry names never emitted by any scanned file.
    if opts.check_obs_unused {
        if let Some(doc) = &opts.obs_doc {
            for (name, line) in &doc.names {
                if !obs_names_used.contains(name) {
                    report.violations.push(Violation {
                        rule: "L011",
                        path: doc.path.clone(),
                        line: *line,
                        message: format!(
                            "registry name `{name}` is not emitted anywhere in the scanned \
                             code; remove it from the doc or restore the instrumentation"
                        ),
                    });
                }
            }
        }
    }
    report
}

/// String literals passed as the first argument of a metric/event call:
/// `.counter("a.b", ...)`, `.gauge(`, `.histogram(`, `.event(`.
fn metric_name_literals(toks: &[Tok]) -> Vec<(String, u32)> {
    const SINKS: [&str; 4] = ["counter", "gauge", "histogram", "event"];
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && SINKS.contains(&t.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            if let Some(lit) = toks.get(i + 3).filter(|t| t.kind == TokKind::Lit) {
                if is_metric_name(&lit.text) {
                    out.push((lit.text.clone(), lit.line));
                }
            }
        }
    }
    out
}

/// L009 (a): the IcError classifiers must name every variant explicitly and
/// carry no wildcard arm, so adding a variant forces a classification
/// decision instead of silently defaulting to terminal (or worse, retryable).
fn rule_l009_classifiers(parsed: &ParsedFile) -> Vec<(&'static str, u32, String)> {
    let Some(en) = parsed.enums.iter().find(|e| e.name == "IcError") else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for clf in ["is_retryable", "is_failover_retryable"] {
        let Some(f) = parsed
            .fns
            .iter()
            .find(|f| f.name == clf && f.impl_type.as_deref() == Some("IcError"))
        else {
            out.push((
                "L009",
                en.line,
                format!("enum IcError has no `fn {clf}` classifier; every variant must be \
                         provably retryable or terminal"),
            ));
            continue;
        };
        let Some((bs, be)) = f.body else { continue };
        let body = &parsed.toks[bs..be];
        // Wildcard arm `_ =>` hides unclassified variants.
        for (k, t) in body.iter().enumerate() {
            if t.is_ident("_")
                && body.get(k + 1).is_some_and(|a| a.is_punct('='))
                && body.get(k + 2).is_some_and(|a| a.is_punct('>'))
            {
                out.push((
                    "L009",
                    t.line,
                    format!("wildcard `_` arm in {clf} hides unclassified IcError variants; \
                             match every variant explicitly"),
                ));
            }
        }
        let mentioned: HashSet<&str> = body
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let missing: Vec<&str> = en
            .variants
            .iter()
            .map(String::as_str)
            .filter(|v| !mentioned.contains(v))
            .collect();
        if !missing.is_empty() {
            out.push((
                "L009",
                f.line,
                format!(
                    "{clf} does not explicitly classify IcError variant(s): {}",
                    missing.join(", ")
                ),
            ));
        }
    }
    out
}

/// L001: `.unwrap()` / `.expect(` calls.
fn rule_l001(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for w in toks.windows(3) {
        if w[0].is_punct('.')
            && w[1].kind == TokKind::Ident
            && (w[1].text == "unwrap" || w[1].text == "expect")
            && w[2].is_punct('(')
        {
            out.push((
                "L001",
                w[1].line,
                format!(
                    ".{}() in non-test code; return a typed IcError instead (or justify \
                     with an allow pragma)",
                    w[1].text
                ),
            ));
        }
    }
    out
}

/// L002: hasher construction outside `ic_common::hash` — the whole stack
/// must agree on one hash function (`Row::hash_key`) because partition
/// routing computes `hash(key) % partitions` on every site.
fn rule_l002(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    const BANNED: [&str; 6] = [
        "DefaultHasher",
        "RandomState",
        "SipHasher",
        "SipHasher13",
        "BuildHasherDefault",
        "FxHasher",
    ];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && BANNED.contains(&t.text.as_str()) {
            out.push((
                "L002",
                t.line,
                format!(
                    "`{}` outside ic_common::hash breaks the single-hash contract; \
                     hash rows via Row::hash_key / FxHashMap",
                    t.text
                ),
            ));
        }
        // `std :: hash` path reference.
        if t.is_ident("std")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && toks.get(i + 3).is_some_and(|c| c.is_ident("hash"))
        {
            out.push((
                "L002",
                t.line,
                "`std::hash` outside ic_common::hash breaks the single-hash contract".into(),
            ));
        }
    }
    out
}

/// L003: std `HashMap`/`HashSet` (SipHash + per-process random seed) in the
/// execution/planner/storage hot paths; use `FlatMap` in per-row kernels or
/// the deterministic `FxHashMap`/`FxHashSet` elsewhere.
fn rule_l003(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind == TokKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push((
                "L003",
                t.line,
                format!(
                    "std `{}` in a hot-path crate; use FlatMap (kernels) or Fx{} \
                     from ic_common",
                    t.text, t.text
                ),
            ));
        }
    }
    out
}

/// L004: wall-clock time in simulation-clock code. `ic-net`'s fault layer
/// and the exchange tick space are driven by logical ticks; real time there
/// makes fault schedules nondeterministic and figures untrustworthy.
fn rule_l004(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push(("L004", t.line, "`SystemTime` in simulation-clock code".into()));
        }
        let path2 = |a: &str, b: &str| {
            t.is_ident(a)
                && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && toks.get(i + 3).is_some_and(|x| x.is_ident(b))
        };
        if path2("Instant", "now") {
            out.push((
                "L004",
                t.line,
                "`Instant::now()` in simulation-clock code; use logical ticks".into(),
            ));
        }
        if path2("thread", "sleep") {
            out.push((
                "L004",
                t.line,
                "`thread::sleep` in simulation-clock code; advance the virtual clock".into(),
            ));
        }
    }
    out
}

/// L006: private buffer accounting in the execution crate. Every cell an
/// operator buffers must flow through the query's `MemoryLease` (via
/// `ControlBlock::reserve`/`reserve_batch`) so the cluster governor can see
/// — and revoke — it; a side-channel `buffered_rows` counter (the pre-lease
/// design) silently escapes the shared budget.
fn rule_l006(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "buffered_rows" || t.text == "buffered_cells") {
            out.push((
                "L006",
                t.line,
                format!(
                    "private `{}` counter in ic-exec; account buffered cells through the \
                     query's MemoryLease (ControlBlock::reserve) so the governor can revoke them",
                    t.text
                ),
            ));
        }
        // Atomic mutation of any *buffered* counter (`foo_buffered.fetch_add(...)`)
        // is the same escape hatch under a different name.
        if t.kind == TokKind::Ident
            && t.text.contains("buffered")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
            && toks.get(i + 2).is_some_and(|b| {
                b.kind == TokKind::Ident && b.text.starts_with("fetch_")
            })
        {
            out.push((
                "L006",
                t.line,
                format!(
                    "direct atomic update of `{}` bypasses the MemoryLease protocol",
                    t.text
                ),
            ));
        }
    }
    out
}

/// L007: raw wall-clock reads in traced code paths. Span timestamps must
/// all derive from one clock — the trace epoch ([`Trace::now_ns`]) — or
/// span intervals stop nesting and `Trace::validate` (and every duration in
/// `EXPLAIN ANALYZE`) becomes untrustworthy. A second motivation is cost:
/// the traced hot path budget is two clock reads per batch, and stray
/// `Instant::now()` calls sprinkled into operators silently grow it.
///
/// [`Trace::now_ns`]: ../../ic_common/obs/struct.Trace.html#method.now_ns
fn rule_l007(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("SystemTime") {
            out.push((
                "L007",
                t.line,
                "`SystemTime` in a traced code path; derive timestamps from Trace::now_ns".into(),
            ));
        }
        if t.is_ident("Instant")
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident("now"))
        {
            out.push((
                "L007",
                t.line,
                "`Instant::now()` in a traced code path; use Trace::now_ns so every \
                 timestamp shares the trace epoch"
                    .into(),
            ));
        }
    }
    out
}

/// L008: per-row `Datum` materialization in the columnar kernels. The whole
/// point of `ic_exec::kernels` is that its inner loops are typed per-column
/// sweeps; a stray `datum_at`/`to_rows` call re-boxes every value into an
/// enum and quietly reverts the loop to row-at-a-time cost. Row shims belong
/// in the operators (scan boundary, final rowset), not here. The few
/// legitimate per-group (not per-row) materializations carry pragmas.
fn rule_l008(toks: &[Tok]) -> Vec<(&'static str, u32, String)> {
    const BANNED: [&str; 6] =
        ["datum_at", "row_at", "to_rows", "from_rows", "push_datum", "eval_datum"];
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && BANNED.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|p| p.is_punct('('))
        {
            out.push((
                "L008",
                t.line,
                format!(
                    "per-row `{}` in a kernel hot loop boxes a Datum per row; keep kernels \
                     as typed per-column loops (row shims live in the operators)",
                    t.text
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Report {
        lint_files(&[FileInput { path: path.into(), source: src.into() }])
    }

    #[test]
    fn l001_flags_and_pragma_suppresses() {
        let bad = "fn f() { x.unwrap(); y.expect(\"m\"); }";
        let r = lint_one("crates/net/src/a.rs", bad);
        assert_eq!(r.violations.len(), 2);
        assert_eq!(r.violations[0].rule, "L001");

        let ok = "// ic-lint: allow(L001) because infallible by construction\nfn f() { x.unwrap(); }";
        let r = lint_one("crates/net/src/a.rs", ok);
        assert!(r.violations.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.suppressed[0].justification.contains("infallible"));
    }

    #[test]
    fn l001_pragma_requires_justification() {
        let src = "// ic-lint: allow(L001)\nfn f() { x.unwrap(); }";
        let r = lint_one("crates/net/src/a.rs", src);
        // Both the malformed pragma and the (unsuppressed) unwrap fire.
        assert!(r.violations.iter().any(|v| v.rule == "L000"));
        assert!(r.violations.iter().any(|v| v.rule == "L001"));
    }

    #[test]
    fn l001_out_of_scope_crates_ignored() {
        let src = "fn f() { x.unwrap(); }";
        assert!(lint_one("crates/plan/src/a.rs", src).violations.is_empty());
        assert!(lint_one("crates/net/tests/a.rs", src).violations.is_empty());
        // crates/sql joined the L001 scope with the fuzzer front end.
        assert!(!lint_one("crates/sql/src/a.rs", src).violations.is_empty());
        // The fuzzer and the bench library joined with the semantic engine;
        // bench bin/ harnesses keep the unwrap-on-setup convention.
        assert!(!lint_one("crates/fuzz/src/a.rs", src).violations.is_empty());
        assert!(!lint_one("crates/bench/src/load.rs", src).violations.is_empty());
        assert!(lint_one("crates/bench/src/bin/kernels.rs", src).violations.is_empty());
    }

    #[test]
    fn l001_reachability_flags_helpers_called_from_kernels() {
        // A helper in crates/plan (never path-scoped for L001) becomes hot
        // when a kernel fn calls it.
        let kernel = FileInput {
            path: "crates/exec/src/kernels.rs".into(),
            source: "pub fn probe_rows(n: usize) { for i in 0..n { plan_helper(i); } }".into(),
        };
        let helper = FileInput {
            path: "crates/plan/src/util.rs".into(),
            source: "pub fn plan_helper(i: usize) { table().get(i).unwrap(); }".into(),
        };
        let r = lint_files(&[kernel.clone(), helper.clone()]);
        assert!(
            r.violations
                .iter()
                .any(|v| v.rule == "L001" && v.path.contains("plan") && v.message.contains("reachable")),
            "{:?}",
            r.violations
        );
        // Without the kernel caller, the same helper is out of scope.
        let r = lint_files(&[helper]);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn l002_flags_hashers() {
        let src = "use std::hash::Hasher; fn f() { let h = DefaultHasher::new(); }";
        let r = lint_one("crates/opt/src/a.rs", src);
        assert!(r.violations.iter().filter(|v| v.rule == "L002").count() >= 2);
        // ic_common::hash itself is exempt.
        let r = lint_one("crates/common/src/hash.rs", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn l003_flags_std_maps_in_hot_crates() {
        let src = "use std::collections::HashMap; fn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let r = lint_one("crates/exec/src/kernels.rs", src);
        assert!(r.violations.iter().all(|v| v.rule == "L003"));
        assert_eq!(r.violations.len(), 3);
        // FxHashMap is fine.
        let r = lint_one("crates/exec/src/kernels.rs", "fn f() { let m = FxHashMap::default(); }");
        assert!(r.violations.is_empty());
        // ic-net is not in L003 scope.
        let r = lint_one("crates/net/src/fault.rs", src);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn l004_flags_wall_clock() {
        let src = "fn f() { let t = Instant::now(); std::thread::sleep(d); let s = SystemTime::now(); }";
        let r = lint_one("crates/net/src/fault.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L004").count(), 3);
        let r = lint_one("crates/exec/src/runtime.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L004").count(), 3);
        // Other exec files are out of L004 scope.
        let r = lint_one("crates/exec/src/operators.rs", src);
        assert!(r.violations.iter().all(|v| v.rule != "L004"));
    }

    #[test]
    fn l006_flags_private_buffer_counters_in_exec_only() {
        let src = "struct S { buffered_rows: AtomicU64 }\n\
                   fn f(s: &S) { s.total_buffered.fetch_add(1, Ordering::Relaxed); }";
        let r = lint_one("crates/exec/src/operators.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L006").count(), 2);
        // Lease-mediated accounting and the QueryStats field are fine.
        let ok = "fn f(ctrl: &ControlBlock) { ctrl.reserve(n)?; let p = peak_buffered_rows; }";
        assert!(lint_one("crates/exec/src/operators.rs", ok).violations.is_empty());
        // Outside ic-exec src the rule does not apply.
        assert!(lint_one("crates/core/src/cluster.rs", src).violations.is_empty());
        assert!(lint_one("crates/exec/tests/a.rs", src).violations.is_empty());
    }

    #[test]
    fn l007_flags_wall_clock_in_traced_paths() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }";
        let r = lint_one("crates/common/src/obs/trace.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L007").count(), 2);
        let r = lint_one("crates/exec/src/operators.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L007").count(), 2);
        // A bare `Instant` type reference (fields, signatures) is fine —
        // only the clock *read* is policed.
        let ok = "struct S { deadline: Option<Instant> } fn g(d: Instant) {}";
        assert!(lint_one("crates/exec/src/operators.rs", ok).violations.is_empty());
        // ic-common outside obs/ and other exec files are out of scope.
        assert!(lint_one("crates/common/src/lease.rs", src).violations.is_empty());
        assert!(lint_one("crates/exec/src/kernels.rs", src)
            .violations
            .iter()
            .all(|v| v.rule != "L007"));
    }

    #[test]
    fn l008_flags_per_row_datums_in_kernels_only() {
        let src = "fn f(b: &ColumnBatch) { let d = b.col(0).datum_at(i); let rs = b.to_rows(); }";
        let r = lint_one("crates/exec/src/kernels.rs", src);
        assert_eq!(r.violations.iter().filter(|v| v.rule == "L008").count(), 2);
        // A justified pragma suppresses, keeping the why.
        let ok = "// ic-lint: allow(L008) because group keys materialize once per group\n\
                  fn f(b: &ColumnBatch) { keys.push(b.col(0).datum_at(i)); }";
        let r = lint_one("crates/exec/src/kernels.rs", ok);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed.len(), 1);
        // Row shims in the operators (and everywhere else) are fine.
        assert!(lint_one("crates/exec/src/operators.rs", src).violations.is_empty());
        assert!(lint_one("crates/exec/tests/kernel_props.rs", src).violations.is_empty());
        // A bare ident without a call (doc text, field name) does not fire.
        let bare = "struct S { to_rows: u32 }";
        assert!(lint_one("crates/exec/src/kernels.rs", bare).violations.is_empty());
    }

    #[test]
    fn l008_reachability_extends_beyond_kernels() {
        let kernel = FileInput {
            path: "crates/exec/src/kernels.rs".into(),
            source: "pub fn agg_sweep(n: usize) { for i in 0..n { agg_step(i); } }".into(),
        };
        let helper = FileInput {
            path: "crates/common/src/agg.rs".into(),
            source: "pub fn agg_step(i: usize) { let d = col.datum_at(i); }".into(),
        };
        let r = lint_files(&[kernel, helper]);
        assert!(
            r.violations
                .iter()
                .any(|v| v.rule == "L008" && v.path.contains("agg.rs")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn l009_classifier_exhaustiveness() {
        let bad = "pub enum IcError { Parse(String), Overloaded { ms: u64 }, Internal(String) }\n\
                   impl IcError { pub fn is_retryable(&self) -> bool { matches!(self, IcError::Overloaded { .. }) }\n\
                   pub fn is_failover_retryable(&self) -> bool { match self { IcError::Overloaded { .. } => true, _ => false } } }";
        let r = lint_one("crates/common/src/error.rs", bad);
        // is_retryable misses Parse+Internal; is_failover_retryable has a
        // wildcard AND misses the same two.
        let l9: Vec<_> = r.violations.iter().filter(|v| v.rule == "L009").collect();
        assert!(l9.iter().any(|v| v.message.contains("wildcard")), "{l9:?}");
        assert!(l9.iter().any(|v| v.message.contains("Parse")), "{l9:?}");

        let good = "pub enum IcError { Parse(String), Overloaded { ms: u64 } }\n\
                    impl IcError { pub fn is_retryable(&self) -> bool { match self { IcError::Overloaded { .. } => true, IcError::Parse(_) => false } }\n\
                    pub fn is_failover_retryable(&self) -> bool { match self { IcError::Overloaded { .. } => true, IcError::Parse(_) => false } } }";
        let r = lint_one("crates/common/src/error.rs", good);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn l009_retry_loop_soundness() {
        let bad = "fn q() -> IcResult<u32> { let mut attempt = 0; loop { attempt += 1;\n\
                   match run() { Ok(v) => return Ok(v), Err(e) => { last = Some(e); } } } }";
        let r = lint_one("crates/core/src/cluster.rs", bad);
        assert!(r.violations.iter().any(|v| v.rule == "L009"), "{:?}", r.violations);

        let good = "fn q() -> IcResult<u32> { let mut attempt = 0; loop { attempt += 1;\n\
                    match run() { Ok(v) => return Ok(v),\n\
                    Err(e) if e.is_failover_retryable() => { chain.push(e); }\n\
                    Err(e) => return Err(e), } } }";
        let r = lint_one("crates/core/src/cluster.rs", good);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }

    #[test]
    fn l010_raw_indexing_outside_plane() {
        let bad = "fn f(c: &Column) { if let ColumnData::Int(v) = &c.data { let x = v[3]; } }";
        let r = lint_one("crates/net/src/wire.rs", bad);
        assert!(r.violations.iter().any(|v| v.rule == "L010"), "{:?}", r.violations);
        // The data layer is sanctioned.
        assert!(lint_one("crates/common/src/col.rs", bad).violations.is_empty());
        // Accessor-based reads are fine anywhere.
        let ok = "fn f(c: &Column, k: usize) { let x = c.datum_at(k); }";
        assert!(lint_one("crates/net/src/wire.rs", ok).violations.is_empty());
    }

    #[test]
    fn l010_validity_required_in_kernel_plane() {
        let bad = "fn f(c: &Column) { if let ColumnData::Int(v) = &c.data { out.push(v[0]); } }";
        let r = lint_one("crates/exec/src/eval.rs", bad);
        assert!(
            r.violations.iter().any(|v| v.rule == "L010" && v.message.contains("validity")),
            "{:?}",
            r.violations
        );
        let ok = "fn f(c: &Column) { if let ColumnData::Int(v) = &c.data { if c.is_valid(0) { out.push(v[0]); } } }";
        assert!(lint_one("crates/exec/src/eval.rs", ok).violations.is_empty());
    }

    #[test]
    fn l011_names_must_match_registry() {
        let doc = ObsDoc::parse("OBSERVABILITY.md", "Metrics: `exec.op.rows` and `net.fault`.");
        let opts = LintOptions { obs_doc: Some(doc.clone()), check_obs_unused: false };
        let src = "fn f(m: &Metrics) { m.counter(\"exec.op.rows\", 1); m.counter(\"exec.op.bogus\", 1); }";
        let r = lint_files_with(
            &[FileInput { path: "crates/exec/src/operators.rs".into(), source: src.into() }],
            &opts,
        );
        let l11: Vec<_> = r.violations.iter().filter(|v| v.rule == "L011").collect();
        assert_eq!(l11.len(), 1, "{:?}", r.violations);
        assert!(l11[0].message.contains("exec.op.bogus"));

        // Reverse direction: `net.fault` is documented but never emitted.
        let opts = LintOptions { obs_doc: Some(doc), check_obs_unused: true };
        let src_ok = "fn f(m: &Metrics) { m.counter(\"exec.op.rows\", 1); }";
        let r = lint_files_with(
            &[FileInput { path: "crates/exec/src/operators.rs".into(), source: src_ok.into() }],
            &opts,
        );
        let l11: Vec<_> = r.violations.iter().filter(|v| v.rule == "L011").collect();
        assert_eq!(l11.len(), 1, "{:?}", r.violations);
        assert!(l11[0].message.contains("net.fault"));
        assert_eq!(l11[0].path, "OBSERVABILITY.md");
    }

    #[test]
    fn l012_allocations_in_kernel_loops() {
        let bad = "pub fn sweep(n: usize) { for i in 0..n { let s = x.to_string(); } }";
        let r = lint_one("crates/exec/src/kernels.rs", bad);
        assert!(r.violations.iter().any(|v| v.rule == "L012"), "{:?}", r.violations);
        // Outside loops, allocation in a kernel fn is setup, not per-element.
        let ok = "pub fn sweep(n: usize) { let mut out = Vec::with_capacity(n); for i in 0..n { out.push(i); } }";
        assert!(lint_one("crates/exec/src/kernels.rs", ok).violations.is_empty());
    }

    #[test]
    fn l012_loop_hot_propagates_through_calls() {
        let kernel = FileInput {
            path: "crates/exec/src/kernels.rs".into(),
            source: "pub fn sweep(n: usize) { for i in 0..n { hot_helper(i); } }".into(),
        };
        let helper = FileInput {
            path: "crates/common/src/col.rs".into(),
            source: "pub fn hot_helper(i: usize) { let v = vec![0u8; i]; }".into(),
        };
        let r = lint_files(&[kernel, helper]);
        assert!(
            r.violations
                .iter()
                .any(|v| v.rule == "L012" && v.path.contains("col.rs") && v.message.contains("per-element")),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = r#"
            // x.unwrap() in a comment
            fn f() { let s = "y.unwrap() and HashMap and Instant::now"; }
        "#;
        let r = lint_one("crates/exec/src/runtime.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
    }
}
