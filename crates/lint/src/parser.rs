//! Item-level parser on top of the tokenizer: extracts `fn` items (with
//! their enclosing `impl`/`trait` type and exact body spans), `use` paths,
//! `struct` names, and `enum` variant lists. This is deliberately *not* a
//! full Rust grammar — it recognizes item heads and brace structure, which
//! is enough to build a workspace symbol table and call graph while staying
//! std-only and tolerant of code the rules have never seen.
//!
//! Limits (documented in DESIGN.md): generics are skipped by angle counting
//! (`->` arrows are recognized so return types do not unbalance the count),
//! macro bodies are scanned as ordinary token soup, and nested `fn` items
//! are recorded as their own entries whose spans sit inside the outer fn.

use crate::tokenizer::{strip_test_regions, tokenize, Comment, Tok, TokKind};

/// One `fn` item. `body` is the half-open token range of the body *including*
/// both braces; `span` is the matching half-open char range into the source.
/// Trait-method declarations without a body have `body == None`.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `impl` type or `trait` name, if any.
    pub impl_type: Option<String>,
    pub line: u32,
    /// Token index of the `fn` keyword.
    pub sig_start: usize,
    /// Token range of the body: `toks[body.0]` is `{`, `toks[body.1 - 1]`
    /// is the matching `}`.
    pub body: Option<(usize, usize)>,
    /// Char span of the body including braces.
    pub span: Option<(u32, u32)>,
}

#[derive(Debug, Clone)]
pub struct UseItem {
    /// Path segments, `::`-split; glob and brace groups are flattened into
    /// the leaf position (e.g. `use a::{b, c};` yields two items).
    pub segments: Vec<String>,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub line: u32,
}

#[derive(Debug, Clone)]
pub struct EnumItem {
    pub name: String,
    pub variants: Vec<String>,
    pub line: u32,
}

/// A parsed file: the (test-stripped) token stream plus extracted items.
#[derive(Debug)]
pub struct ParsedFile {
    pub path: String,
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
    pub structs: Vec<StructItem>,
    pub enums: Vec<EnumItem>,
}

/// Tokenize, strip `#[cfg(test)]` regions, and parse items.
pub fn parse_file(path: &str, source: &str) -> ParsedFile {
    let (toks, comments) = tokenize(source);
    let toks = strip_test_regions(&toks);
    parse_tokens(path, toks, comments)
}

/// Parse items from an already-tokenized stream.
pub fn parse_tokens(path: &str, toks: Vec<Tok>, comments: Vec<Comment>) -> ParsedFile {
    let mut fns = Vec::new();
    let mut uses = Vec::new();
    let mut structs = Vec::new();
    let mut enums = Vec::new();

    // Stack of enclosing impl/trait blocks: (type name, brace depth at which
    // the block's `{` was opened). Popped when depth returns to that value.
    let mut ctx: Vec<(String, i32)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    let n = toks.len();

    while i < n {
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
            i += 1;
            continue;
        }
        if t.is_punct('}') {
            depth -= 1;
            while ctx.last().is_some_and(|c| c.1 >= depth) {
                ctx.pop();
            }
            i += 1;
            continue;
        }
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "impl" | "trait" => {
                let (name, open) = impl_head(&toks, i);
                match open {
                    Some(open) => {
                        ctx.push((name.unwrap_or_default(), depth));
                        depth += 1;
                        i = open + 1;
                    }
                    // `impl Foo;`-style (shouldn't happen) or EOF: bail past.
                    None => i += 1,
                }
            }
            "fn" => {
                let name = match toks.get(i + 1) {
                    Some(t) if t.kind == TokKind::Ident => t.text.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let impl_type = ctx.last().map(|c| c.0.clone()).filter(|s| !s.is_empty());
                let line = t.line;
                let sig_start = i;
                // Scan the signature to the body `{` or a `;` (trait decl).
                let mut j = i + 2;
                let mut group = 0i32;
                let mut body = None;
                while j < n {
                    let s = &toks[j];
                    if s.is_punct('(') || s.is_punct('[') {
                        group += 1;
                    } else if s.is_punct(')') || s.is_punct(']') {
                        group -= 1;
                    } else if s.is_punct('{') && group == 0 {
                        let close = skip_braced_toks(&toks, j);
                        body = Some((j, close));
                        break;
                    } else if s.is_punct(';') && group == 0 {
                        break;
                    }
                    j += 1;
                }
                let span = body
                    .map(|(open, close)| (toks[open].pos, toks[close.saturating_sub(1)].end));
                fns.push(FnItem { name, impl_type, line, sig_start, body, span });
                // Continue scanning *inside* the body so nested items (and
                // the impl-context bookkeeping) stay consistent.
                match body {
                    Some((open, _)) => {
                        depth += 1;
                        i = open + 1;
                    }
                    None => i = j.min(n),
                }
            }
            "use" => {
                let (items, next) = parse_use(&toks, i);
                uses.extend(items);
                i = next;
            }
            "struct" => {
                if let Some(nt) = toks.get(i + 1) {
                    if nt.kind == TokKind::Ident {
                        structs.push(StructItem { name: nt.text.clone(), line: t.line });
                    }
                }
                i += 1;
            }
            "enum" => {
                if let Some((item, next)) = parse_enum(&toks, i) {
                    enums.push(item);
                    i = next;
                } else {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }

    ParsedFile { path: path.to_string(), toks, comments, fns, uses, structs, enums }
}

/// Parse an `impl`/`trait` head starting at the keyword. Returns the
/// self-type name (last ident at angle-depth 0 before `{`/`where`, taken
/// after `for` when present) and the index of the opening `{`.
fn impl_head(toks: &[Tok], kw: usize) -> (Option<String>, Option<usize>) {
    let mut angle = 0i32;
    let mut name: Option<String> = None;
    let mut j = kw + 1;
    let mut in_where = false;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') && angle <= 0 {
            return (name, Some(j));
        }
        if t.is_punct(';') && angle <= 0 {
            return (name, None);
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            // `->` in bounds like `Fn() -> R` is an arrow, not a close.
            if !toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-')) {
                angle -= 1;
            }
        } else if t.kind == TokKind::Ident && angle == 0 {
            match t.text.as_str() {
                "for" => name = None, // the self-type follows `for`
                "where" => in_where = true,
                "dyn" | "as" => {}
                _ if !in_where => name = Some(t.text.clone()),
                _ => {}
            }
        }
        j += 1;
    }
    (name, None)
}

/// Parse a `use` item starting at the keyword; flattens `{a, b}` groups.
/// Returns the items and the index just past the terminating `;`.
fn parse_use(toks: &[Tok], kw: usize) -> (Vec<UseItem>, usize) {
    let line = toks[kw].line;
    let mut prefix: Vec<String> = Vec::new();
    let mut items = Vec::new();
    let mut group_base: Vec<Vec<String>> = Vec::new();
    let mut j = kw + 1;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct(';') {
            j += 1;
            break;
        }
        if t.kind == TokKind::Ident && t.text != "as" {
            prefix.push(t.text.clone());
        } else if t.is_punct('{') {
            group_base.push(prefix.clone());
        } else if t.is_punct(',') || t.is_punct('}') {
            if !prefix.is_empty() {
                items.push(UseItem { segments: prefix.clone(), line });
            }
            if t.is_punct('}') {
                group_base.pop();
                prefix = Vec::new();
            } else {
                prefix = group_base.last().cloned().unwrap_or_default();
            }
        } else if t.is_punct('*') {
            prefix.push("*".to_string());
        }
        j += 1;
    }
    if !prefix.is_empty() {
        items.push(UseItem { segments: prefix, line });
    }
    (items, j)
}

/// Parse an `enum` item: name plus variant names. Returns the item and the
/// index just past the closing `}`.
fn parse_enum(toks: &[Tok], kw: usize) -> Option<(EnumItem, usize)> {
    let name_tok = toks.get(kw + 1)?;
    if name_tok.kind != TokKind::Ident {
        return None;
    }
    // Find the `{` opening the variant list (skip generics / where clause).
    let mut j = kw + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') && angle <= 0 {
            break;
        }
        if t.is_punct(';') && angle <= 0 {
            return None; // `enum Foo;` is not valid Rust, but be tolerant
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>')
            && !toks.get(j.wrapping_sub(1)).is_some_and(|p| p.is_punct('-'))
        {
            angle -= 1;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let close = skip_braced_toks(toks, j);
    let mut variants = Vec::new();
    let mut rel = 1i32;
    let mut k = j + 1;
    let mut at_variant_head = true;
    while k < close {
        let t = &toks[k];
        if t.is_punct('{') || t.is_punct('(') {
            rel += 1;
            at_variant_head = false;
        } else if t.is_punct('}') || t.is_punct(')') {
            rel -= 1;
        } else if t.is_punct(',') && rel == 1 {
            at_variant_head = true;
        } else if t.is_punct('#') && rel == 1 {
            // Variant attribute: skip `#[...]` without disturbing the head flag.
            k = skip_attr_toks(toks, k);
            continue;
        } else if t.kind == TokKind::Ident && rel == 1 && at_variant_head {
            variants.push(t.text.clone());
            at_variant_head = false;
        }
        k += 1;
    }
    Some((
        EnumItem { name: name_tok.text.clone(), variants, line: toks[kw].line },
        close,
    ))
}

/// Skip a braced group starting at `i` (`{`); returns index past the `}`.
pub fn skip_braced_toks(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

fn skip_attr_toks(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1;
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_and_method_fns() {
        let src = r#"
            fn free(a: u32) -> u32 { a + 1 }
            impl ColumnBatch {
                pub fn num_rows(&self) -> usize { self.rows }
                fn helper() {}
            }
            impl fmt::Display for IcError {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { write!(f, "x") }
            }
            trait RowSource {
                fn next_batch(&mut self) -> Option<u32>;
                fn next_rows(&mut self) -> u32 { 0 }
            }
        "#;
        let p = parse_file("x.rs", src);
        let names: Vec<(String, Option<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.impl_type.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("num_rows".into(), Some("ColumnBatch".into())),
                ("helper".into(), Some("ColumnBatch".into())),
                ("fmt".into(), Some("IcError".into())),
                ("next_batch".into(), Some("RowSource".into())),
                ("next_rows".into(), Some("RowSource".into())),
            ]
        );
        // Trait decl without body.
        assert!(p.fns[4].body.is_none());
        assert!(p.fns[5].body.is_some());
    }

    #[test]
    fn impl_head_with_generics_and_arrows() {
        let src = "impl<'a, F: Fn(usize) -> bool> Filter<F> { fn go(&self) {} }";
        let p = parse_file("x.rs", src);
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Filter"));
    }

    #[test]
    fn body_spans_cover_braces() {
        let src = "fn f() { g(); }";
        let p = parse_file("x.rs", src);
        let (a, b) = p.fns[0].span.unwrap();
        let chars: Vec<char> = src.chars().collect();
        let body: String = chars[a as usize..b as usize].iter().collect();
        assert_eq!(body, "{ g(); }");
    }

    #[test]
    fn use_items_flatten_groups() {
        let src = "use ic_common::{col::ColumnBatch, error::IcError};\nuse std::fmt;";
        let p = parse_file("x.rs", src);
        let segs: Vec<Vec<String>> = p.uses.iter().map(|u| u.segments.clone()).collect();
        assert_eq!(
            segs,
            vec![
                vec!["ic_common", "col", "ColumnBatch"],
                vec!["ic_common", "error", "IcError"],
                vec!["std", "fmt"],
            ]
            .into_iter()
            .map(|v: Vec<&str>| v.into_iter().map(String::from).collect::<Vec<_>>())
            .collect::<Vec<_>>()
        );
    }

    #[test]
    fn enum_variants_extracted() {
        let src = r#"
            pub enum IcError {
                Parse(String),
                Overloaded { retry_after_ms: u64 },
                #[allow(dead_code)]
                Internal(String),
            }
        "#;
        let p = parse_file("x.rs", src);
        assert_eq!(p.enums.len(), 1);
        assert_eq!(p.enums[0].name, "IcError");
        assert_eq!(p.enums[0].variants, vec!["Parse", "Overloaded", "Internal"]);
    }

    #[test]
    fn nested_fn_recorded_inside_outer() {
        let src = "fn outer() { fn inner() {} inner(); }";
        let p = parse_file("x.rs", src);
        assert_eq!(p.fns.len(), 2);
        let (oa, ob) = p.fns[0].span.unwrap();
        let (ia, ib) = p.fns[1].span.unwrap();
        assert!(oa < ia && ib <= ob);
    }
}
