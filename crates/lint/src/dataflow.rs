//! Intra-procedural dataflow facts over a function's token range: which
//! locals are bound from column-buffer patterns, which come from
//! `.selection()`, where they get indexed, whether an error-handling loop
//! can retry without consulting the retryable/terminal classifier, and
//! where heap allocations happen. All analyses are lexical and flow over
//! `let`-bindings and match patterns — no types, which keeps them honest
//! about their limits (documented in DESIGN.md).

use crate::tokenizer::{Tok, TokKind};

/// Half-open token ranges of `for`/`while`/`loop` bodies inside `range`
/// (including nested loops; ranges may overlap).
pub fn loop_ranges(toks: &[Tok], range: (usize, usize)) -> Vec<(usize, usize)> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "for" | "while" | "loop")
            && !toks.get(i.wrapping_sub(1)).is_some_and(|p| p.is_punct('\''))
        {
            // Find the body `{` at group depth 0 (skips `while let ... =`,
            // the iterator expression of `for`, etc.).
            let mut j = i + 1;
            let mut group = 0i32;
            while j < end {
                let s = &toks[j];
                if s.is_punct('(') || s.is_punct('[') {
                    group += 1;
                } else if s.is_punct(')') || s.is_punct(']') {
                    group -= 1;
                } else if s.is_punct('{') && group == 0 {
                    let close = crate::parser::skip_braced_toks(toks, j);
                    out.push((j, close.min(end)));
                    break;
                } else if s.is_punct(';') && group == 0 {
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// How a column buffer was accessed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// `v[...]`
    Bracket,
    /// `v.get(...)....unwrap()`
    GetUnwrap,
}

/// Column-plane facts for one function body.
#[derive(Debug, Default)]
pub struct ColFacts {
    /// Locals bound from `ColumnData::Variant(pat)` match patterns — these
    /// alias the raw typed buffer of a column.
    pub buf_vars: Vec<(String, u32)>,
    /// Locals bound from a `.selection()` call.
    pub sel_vars: Vec<(String, u32)>,
    /// Raw indexing into a buffer/selection local: (var, line, kind).
    pub index_sites: Vec<(String, u32, IndexKind)>,
    /// Whether the body consults the validity bitmap at all.
    pub mentions_validity: bool,
}

/// Extract column-plane facts from `toks[range]`.
pub fn column_facts(toks: &[Tok], range: (usize, usize)) -> ColFacts {
    let (start, end) = range;
    let mut facts = ColFacts::default();

    // Pass 1: collect buffer-aliasing locals.
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.is_ident("ColumnData")
            && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
        {
            if let Some(variant) = toks.get(i + 3).filter(|v| v.kind == TokKind::Ident) {
                let line = variant.line;
                match toks.get(i + 4) {
                    // `ColumnData::Int(v)` — tuple pattern binds `v`.
                    // (A construction call with a single ident argument is
                    // indistinguishable without types; treating it as a
                    // binding only widens the net, never misses.)
                    Some(p) if p.is_punct('(') => {
                        let mut j = i + 5;
                        while j < end && !toks[j].is_punct(')') {
                            if toks[j].kind == TokKind::Ident {
                                if !matches!(toks[j].text.as_str(), "ref" | "mut" | "_") {
                                    facts.buf_vars.push((toks[j].text.clone(), line));
                                }
                            } else if !toks[j].is_punct(',') {
                                // Complex sub-pattern/expression: stop early.
                                break;
                            }
                            j += 1;
                        }
                    }
                    // `ColumnData::Str { offsets, bytes }` — struct pattern.
                    Some(p) if p.is_punct('{') => {
                        let close = crate::parser::skip_braced_toks(toks, i + 4).min(end);
                        let mut j = i + 5;
                        while j < close {
                            if toks[j].kind == TokKind::Ident
                                && !matches!(toks[j].text.as_str(), "ref" | "mut")
                            {
                                if toks.get(j + 1).is_some_and(|a| a.is_punct(':'))
                                    && toks.get(j + 2).is_some_and(|a| a.kind == TokKind::Ident)
                                {
                                    // `field: binding` rename.
                                    facts.buf_vars.push((toks[j + 2].text.clone(), line));
                                    j += 3;
                                    continue;
                                }
                                facts.buf_vars.push((toks[j].text.clone(), line));
                            }
                            j += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        if t.is_ident("selection")
            && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
            && toks.get(i.wrapping_sub(1)).is_some_and(|a| a.is_punct('.'))
        {
            // Walk back to the `=` of the enclosing binding, if any, and
            // take the last plain ident of the pattern before it.
            let mut j = i.wrapping_sub(2);
            let mut hops = 0;
            while j > start && hops < 24 {
                if toks[j].is_punct('=') {
                    let mut k = j - 1;
                    while k > start && (toks[k].is_punct(')') || toks[k].is_punct(']')) {
                        k -= 1;
                    }
                    if toks[k].kind == TokKind::Ident {
                        facts.sel_vars.push((toks[k].text.clone(), toks[k].line));
                    }
                    break;
                }
                if toks[j].is_punct(';') || toks[j].is_punct('{') {
                    break;
                }
                j -= 1;
                hops += 1;
            }
        }
        if t.is_ident("is_valid") || t.is_ident("validity") {
            facts.mentions_validity = true;
        }
        i += 1;
    }

    // Pass 2: find raw indexing of the collected locals.
    let tracked: Vec<&str> = facts
        .buf_vars
        .iter()
        .map(|(v, _)| v.as_str())
        .chain(facts.sel_vars.iter().map(|(v, _)| v.as_str()))
        .collect();
    if tracked.is_empty() {
        return facts;
    }
    let mut sites = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident && tracked.contains(&t.text.as_str()) {
            if toks.get(i + 1).is_some_and(|a| a.is_punct('[')) {
                sites.push((t.text.clone(), t.line, IndexKind::Bracket));
            } else if toks.get(i + 1).is_some_and(|a| a.is_punct('.'))
                && toks.get(i + 2).is_some_and(|a| a.is_ident("get"))
                && toks.get(i + 3).is_some_and(|a| a.is_punct('('))
            {
                // `.get(...)` directly followed by `.unwrap()`.
                let close = skip_group(toks, i + 3, end);
                if toks.get(close).is_some_and(|a| a.is_punct('.'))
                    && toks.get(close + 1).is_some_and(|a| a.is_ident("unwrap"))
                {
                    sites.push((t.text.clone(), t.line, IndexKind::GetUnwrap));
                }
            }
        }
        i += 1;
    }
    facts.index_sites = sites;
    facts
}

/// Skip a parenthesized group starting at `i` (`(`); returns index past `)`.
fn skip_group(toks: &[Tok], i: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < end {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

const CLASSIFIERS: [&str; 3] = ["is_retryable", "is_failover_retryable", "is_planner_failure"];
const RETRY_VOCAB: [&str; 5] = ["attempt", "attempts", "retry", "retries", "backoff"];

/// L009 part (b): inside retry loops, every `Err` arm that can fall through
/// to the next iteration must consult a retryable/terminal classifier —
/// either in a match guard (`Err(e) if e.is_failover_retryable() => ...`)
/// or inside the arm body. Arms that terminate (`return`/`break`/`?`/
/// `panic!`) are exempt. Loops without retry vocabulary (no `attempt`/
/// `retry`/`backoff` idents and no classifier call) are not retry loops —
/// e.g. drain loops that merely collect errors — and are skipped.
pub fn retry_loop_findings(toks: &[Tok], range: (usize, usize)) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (ls, le) in loop_ranges(toks, range) {
        let body = &toks[ls..le];
        let is_retry_loop = body.iter().any(|t| {
            t.kind == TokKind::Ident
                && (RETRY_VOCAB.contains(&t.text.as_str())
                    || CLASSIFIERS.contains(&t.text.as_str()))
        });
        if !is_retry_loop {
            continue;
        }
        let mut i = ls;
        while i < le {
            if toks[i].is_ident("Err") && toks.get(i + 1).is_some_and(|a| a.is_punct('(')) {
                let pat_close = skip_group(toks, i + 1, le);
                let mut j = pat_close;
                let mut guard_ok = false;
                let mut is_arm = false;
                if toks.get(j).is_some_and(|a| a.is_ident("if")) {
                    // Optional match guard: `Err(e) if <guard> => ...`.
                    let g0 = j + 1;
                    while j < le {
                        if toks[j].is_punct('=')
                            && toks.get(j + 1).is_some_and(|a| a.is_punct('>'))
                        {
                            guard_ok = toks[g0..j].iter().any(|t| {
                                t.kind == TokKind::Ident
                                    && CLASSIFIERS.contains(&t.text.as_str())
                            });
                            is_arm = true;
                            j += 2;
                            break;
                        }
                        if toks[j].is_punct('{') || toks[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                } else if toks.get(j).is_some_and(|a| a.is_punct('='))
                    && toks.get(j + 1).is_some_and(|a| a.is_punct('>'))
                {
                    is_arm = true;
                    j += 2;
                } else if toks.get(i.wrapping_sub(1)).is_some_and(|a| a.is_ident("let")) {
                    // `if let Err(e) = expr { block }` / `while let ...`.
                    let mut k = pat_close;
                    let mut group = 0i32;
                    while k < le {
                        let s = &toks[k];
                        if s.is_punct('(') || s.is_punct('[') {
                            group += 1;
                        } else if s.is_punct(')') || s.is_punct(']') {
                            group -= 1;
                        } else if s.is_punct('{') && group == 0 {
                            is_arm = true;
                            j = k;
                            break;
                        } else if s.is_punct(';') && group == 0 {
                            break;
                        }
                        k += 1;
                    }
                }
                if is_arm && !guard_ok {
                    // Arm body: braced block or expression up to `,` at
                    // depth 0 (or end of loop body).
                    let (bs, be) = if toks.get(j).is_some_and(|a| a.is_punct('{')) {
                        (j, crate::parser::skip_braced_toks(toks, j).min(le))
                    } else {
                        let mut k = j;
                        let mut depth = 0i32;
                        while k < le {
                            let s = &toks[k];
                            if s.is_punct('(') || s.is_punct('[') || s.is_punct('{') {
                                depth += 1;
                            } else if s.is_punct(')') || s.is_punct(']') || s.is_punct('}') {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            } else if s.is_punct(',') && depth == 0 {
                                break;
                            }
                            k += 1;
                        }
                        (j, k)
                    };
                    let arm = &toks[bs..be];
                    let terminates = arm.iter().any(|t| {
                        (t.kind == TokKind::Ident
                            && matches!(
                                t.text.as_str(),
                                "return" | "break" | "panic" | "unreachable" | "unimplemented"
                            ))
                            || t.is_punct('?')
                    });
                    let classified = arm.iter().any(|t| {
                        t.kind == TokKind::Ident && CLASSIFIERS.contains(&t.text.as_str())
                    });
                    if !terminates && !classified {
                        out.push((
                            toks[i].line,
                            "retry loop can re-enter on an unclassified error: gate this \
                             `Err` arm on is_retryable()/is_failover_retryable() or \
                             terminate it"
                                .to_string(),
                        ));
                    }
                    i = be.max(i + 1);
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// Heap-allocating constructs recognized by L012. Returns (line, what).
pub fn alloc_sites(toks: &[Tok], range: (usize, usize)) -> Vec<(u32, String)> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        if t.kind == TokKind::Ident {
            let next_bang = toks.get(i + 1).is_some_and(|a| a.is_punct('!'));
            let qualified = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'));
            let after_dot = toks.get(i.wrapping_sub(1)).is_some_and(|a| a.is_punct('.'));
            let called = toks.get(i + 1).is_some_and(|a| a.is_punct('('));
            match t.text.as_str() {
                "vec" | "format" if next_bang => {
                    out.push((t.line, format!("{}! allocates", t.text)));
                }
                "Vec" | "Box" | "String" | "HashMap" | "HashSet" | "BTreeMap" | "VecDeque"
                    if qualified =>
                {
                    if let Some(m) = toks.get(i + 3).filter(|m| m.kind == TokKind::Ident) {
                        if matches!(m.text.as_str(), "new" | "with_capacity" | "from") {
                            out.push((t.line, format!("{}::{} allocates", t.text, m.text)));
                        }
                    }
                }
                "with_capacity" if after_dot && called => {
                    out.push((t.line, "with_capacity allocates".to_string()));
                }
                "to_vec" | "to_string" | "to_owned" | "collect" if after_dot && called => {
                    out.push((t.line, format!("{} allocates", t.text)));
                }
                _ => {}
            }
        }
        i += 1;
    }
    out
}

/// `IcError::Variant` construction/mention sites in `toks[range]`.
pub fn icerror_sites(toks: &[Tok], range: (usize, usize)) -> Vec<(String, u32)> {
    let (start, end) = range;
    let mut out = Vec::new();
    let mut i = start;
    while i + 3 < end {
        if toks[i].is_ident("IcError")
            && toks[i + 1].is_punct(':')
            && toks[i + 2].is_punct(':')
            && toks[i + 3].kind == TokKind::Ident
        {
            out.push((toks[i + 3].text.clone(), toks[i + 3].line));
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).0
    }

    #[test]
    fn loops_found() {
        let t = toks("fn f() { loop { x(); } for i in 0..n { y(); } while a { z(); } }");
        let r = loop_ranges(&t, (0, t.len()));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn column_pattern_binds_and_indexing_flagged() {
        let t = toks(
            "match &col.data { ColumnData::Int(v) => { let x = v[i]; } \
             ColumnData::Str { offsets, bytes } => { let o = offsets[k]; } _ => {} }",
        );
        let f = column_facts(&t, (0, t.len()));
        let vars: Vec<&str> = f.buf_vars.iter().map(|(v, _)| v.as_str()).collect();
        assert!(vars.contains(&"v") && vars.contains(&"offsets") && vars.contains(&"bytes"));
        assert_eq!(f.index_sites.len(), 2);
    }

    #[test]
    fn selection_binding_and_get_unwrap() {
        let t = toks(
            "if let Some(sel) = batch.selection() { let a = sel.get(0).unwrap(); let b = sel[1]; }",
        );
        let f = column_facts(&t, (0, t.len()));
        assert_eq!(f.sel_vars.len(), 1);
        assert_eq!(f.sel_vars[0].0, "sel");
        assert_eq!(f.index_sites.len(), 2);
        assert!(f.index_sites.iter().any(|s| s.2 == IndexKind::GetUnwrap));
    }

    #[test]
    fn retry_loop_guarded_is_clean() {
        let t = toks(
            "loop { match run(attempt) { Ok(v) => return Ok(v), \
             Err(e) if e.is_failover_retryable() => { chain.push(e); } \
             Err(e) => return Err(e), } }",
        );
        assert!(retry_loop_findings(&t, (0, t.len())).is_empty());
    }

    #[test]
    fn retry_loop_unguarded_flagged() {
        let t = toks(
            "loop { attempt += 1; match run() { Ok(v) => return Ok(v), \
             Err(e) => { last = e; } } }",
        );
        assert_eq!(retry_loop_findings(&t, (0, t.len())).len(), 1);
    }

    #[test]
    fn drain_loop_not_a_retry_loop() {
        let t = toks("loop { match rx.recv() { Ok(v) => sink.push(v), Err(e) => { log(e); } } }");
        assert!(retry_loop_findings(&t, (0, t.len())).is_empty());
    }

    #[test]
    fn allocs_found() {
        let t = toks("let a = Vec::new(); let b = vec![0; n]; let c = xs.to_vec(); d.collect()");
        let sites = alloc_sites(&t, (0, t.len()));
        assert_eq!(sites.len(), 4);
    }

    #[test]
    fn icerror_sites_found() {
        let t = toks("return Err(IcError::Internal(format!(\"x\"))); IcError::Overloaded");
        let sites = icerror_sites(&t, (0, t.len()));
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].0, "Internal");
    }
}
