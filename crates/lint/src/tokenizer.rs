//! A minimal std-only Rust tokenizer — just enough lexical fidelity for the
//! lint rules: identifiers, single-character punctuation, literals, and line
//! comments (kept separately, because `// ic-lint: allow(...)` pragmas live
//! there). Strings, raw strings, byte strings, char literals, lifetimes and
//! nested block comments are consumed correctly so that rule token patterns
//! never fire inside them.

/// Kinds of significant tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Lit,
}

/// One significant token with its 1-based source line and half-open char
/// span `[pos, end)` into the source (char offsets, not bytes — the parser's
/// span arithmetic and the round-trip property test both work in chars).
///
/// `text` carries the identifier or punctuation character; for string
/// literals it carries the *inner* text (without quotes/prefix/hashes) so
/// registry rules like L011 can match metric-name literals. Char and numeric
/// literals keep an empty `text`.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub pos: u32,
    pub end: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// A `//` line comment (text after the slashes, trimmed) with its line.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// Tokenize Rust source into significant tokens plus line comments.
pub fn tokenize(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();

    let count_lines = |s: &[char]| s.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && bytes[j] != '\n' {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                comments.push(Comment { line, text: text.trim().to_string() });
                i = j;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                // Nested block comments, as in rustc.
                let mut depth = 1;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                line += count_lines(&bytes[i..j.min(n)]);
                i = j;
            }
            '"' => {
                let j = scan_string(&bytes, i);
                let start_line = line;
                line += count_lines(&bytes[i..j]);
                let inner: String =
                    bytes[i + 1..j.saturating_sub(1).max(i + 1)].iter().collect();
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: inner,
                    line: start_line,
                    pos: i as u32,
                    end: j as u32,
                });
                i = j;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes, i) => {
                let j = scan_raw_or_byte_string(&bytes, i);
                let start_line = line;
                line += count_lines(&bytes[i..j]);
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: raw_string_inner(&bytes, i, j),
                    line: start_line,
                    pos: i as u32,
                    end: j as u32,
                });
                i = j;
            }
            '\'' => {
                // Char literal or lifetime. A lifetime is `'ident` not
                // followed by a closing quote.
                if i + 1 < n && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_') {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    if j < n && bytes[j] == '\'' {
                        // 'a' — a char literal.
                        toks.push(Tok {
                            kind: TokKind::Lit,
                            text: String::new(),
                            line,
                            pos: i as u32,
                            end: (j + 1) as u32,
                        });
                        i = j + 1;
                    } else {
                        // 'a — a lifetime; emit as punct so patterns skip it.
                        toks.push(Tok {
                            kind: TokKind::Punct,
                            text: "'".into(),
                            line,
                            pos: i as u32,
                            end: j as u32,
                        });
                        i = j;
                    }
                } else {
                    // Escaped or symbolic char literal: '\n', '\'', '\u{..}'.
                    let mut j = i + 1;
                    while j < n && bytes[j] != '\'' {
                        if bytes[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    let e = (j + 1).min(n);
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        text: String::new(),
                        line,
                        pos: i as u32,
                        end: e as u32,
                    });
                    i = e;
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                let text: String = bytes[i..j].iter().collect();
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                    pos: i as u32,
                    end: j as u32,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i;
                let mut seen_dot = false;
                while j < n {
                    let d = bytes[j];
                    if d.is_alphanumeric() || d == '_' {
                        j += 1;
                    } else if d == '.'
                        && !seen_dot
                        && j + 1 < n
                        && bytes[j + 1].is_ascii_digit()
                    {
                        seen_dot = true;
                        j += 1;
                    } else {
                        break;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: String::new(),
                    line,
                    pos: i as u32,
                    end: j as u32,
                });
                i = j;
            }
            other => {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: other.to_string(),
                    line,
                    pos: i as u32,
                    end: (i + 1) as u32,
                });
                i += 1;
            }
        }
    }
    (toks, comments)
}

fn scan_string(bytes: &[char], start: usize) -> usize {
    let n = bytes.len();
    let mut j = start + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Inner text of a raw/byte string literal spanning `[i, j)`: strip the
/// `b`/`r` prefix, the `#` fencing, and the quotes.
fn raw_string_inner(bytes: &[char], i: usize, j: usize) -> String {
    let mut s = i;
    if s < j && (bytes[s] == 'b' || bytes[s] == 'r') {
        s += 1;
    }
    if s < j && bytes[s] == 'r' {
        s += 1;
    }
    let mut hashes = 0usize;
    while s < j && bytes[s] == '#' {
        hashes += 1;
        s += 1;
    }
    if s < j && bytes[s] == '"' {
        s += 1;
    }
    let e = j.saturating_sub(1 + hashes).max(s);
    bytes[s..e].iter().collect()
}

fn starts_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let n = bytes.len();
    match bytes[i] {
        'r' => {
            // r"..." or r#"..."#
            let mut j = i + 1;
            while j < n && bytes[j] == '#' {
                j += 1;
            }
            j < n && bytes[j] == '"'
        }
        'b' => {
            // b"...", br"...", br#"..."#
            if i + 1 >= n {
                return false;
            }
            if bytes[i + 1] == '"' {
                return true;
            }
            if bytes[i + 1] == 'r' {
                let mut j = i + 2;
                while j < n && bytes[j] == '#' {
                    j += 1;
                }
                return j < n && bytes[j] == '"';
            }
            false
        }
        _ => false,
    }
}

fn scan_raw_or_byte_string(bytes: &[char], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i;
    // Skip the b/r prefix.
    if bytes[j] == 'b' {
        j += 1;
    }
    let raw = j < n && bytes[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < n && bytes[j] == '"');
    j += 1; // opening quote
    if raw {
        // Scan to `"` followed by `hashes` hash marks; no escapes in raw.
        while j < n {
            if bytes[j] == '"' {
                let mut k = j + 1;
                let mut h = 0;
                while k < n && h < hashes && bytes[k] == '#' {
                    h += 1;
                    k += 1;
                }
                if h == hashes {
                    return k;
                }
            }
            j += 1;
        }
        n
    } else {
        // b"..." with escapes.
        while j < n {
            match bytes[j] {
                '\\' => j += 2,
                '"' => return j + 1,
                _ => j += 1,
            }
        }
        n
    }
}

/// Remove `#[cfg(test)]`-gated items (and `#[test]` functions) from a token
/// stream, so rules only see production code. Operates purely lexically:
/// after a matching attribute, the next item is skipped up to its closing
/// brace or terminating semicolon.
pub fn strip_test_regions(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if let Some(after_attr) = match_test_attribute(toks, i) {
            // Skip any further attributes on the same item.
            let mut j = after_attr;
            while j < toks.len() && toks[j].is_punct('#') {
                j = skip_attribute(toks, j);
            }
            // Skip the item: first `{...}` group or `;` at depth 0.
            let mut depth = 0i32;
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.is_punct('{') {
                    if depth == 0 {
                        j = skip_braced(toks, j);
                        break;
                    }
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                } else if t.is_punct(';') && depth == 0 {
                    j += 1;
                    break;
                }
                j += 1;
            }
            i = j;
        } else {
            out.push(toks[i].clone());
            i += 1;
        }
    }
    out
}

/// If `toks[i..]` starts a `#[cfg(test)]`/`#[cfg(all(test, ...))]`/`#[test]`
/// attribute, return the index just past its closing `]`.
fn match_test_attribute(toks: &[Tok], i: usize) -> Option<usize> {
    if !(toks.get(i)?.is_punct('#') && toks.get(i + 1)?.is_punct('[')) {
        return None;
    }
    let head = toks.get(i + 2)?;
    let is_test = if head.is_ident("test") {
        true
    } else if head.is_ident("cfg") {
        // Any `test` ident inside the attribute arguments counts.
        let end = skip_attribute(toks, i);
        toks[i + 3..end.saturating_sub(1)].iter().any(|t| t.is_ident("test"))
    } else {
        false
    };
    if is_test {
        Some(skip_attribute(toks, i))
    } else {
        None
    }
}

/// Skip a `#[...]` attribute starting at `i` (which must be `#`); returns
/// the index just past the closing `]`.
fn skip_attribute(toks: &[Tok], i: usize) -> usize {
    let mut j = i + 1; // at '['
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skip a braced group starting at `i` (which must be `{`); returns the
/// index just past the matching `}`.
fn skip_braced(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].is_punct('{') {
            depth += 1;
        } else if toks[j].is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let (toks, _) = tokenize("let x = foo.bar();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "foo", "bar"]);
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            let a = "unwrap() inside string";
            // a line comment with unwrap()
            /* block with unwrap() */
            let b = r#"raw unwrap()"#;
            let c = 'x';
        "##;
        let (toks, comments) = tokenize(src);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("unwrap"));
    }

    #[test]
    fn line_numbers_advance() {
        let (toks, _) = tokenize("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let (toks, _) = tokenize("fn f<'a>(x: &'a str) {} let c = 'q';");
        assert!(toks.iter().any(|t| t.is_ident("str")));
        assert!(toks.iter().any(|t| t.kind == TokKind::Lit));
    }

    #[test]
    fn cfg_test_region_stripped() {
        let src = r#"
            fn real() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); }
            }
            fn also_real() {}
        "#;
        let (toks, _) = tokenize(src);
        let kept = strip_test_regions(&toks);
        let idents: Vec<&str> = kept
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert!(idents.contains(&"real"));
        assert!(idents.contains(&"also_real"));
        assert!(!idents.contains(&"tests"));
        assert_eq!(idents.iter().filter(|&&s| s == "unwrap").count(), 1);
    }

    #[test]
    fn spans_and_string_literal_text() {
        let src = "t.counter(\"exec.op.rows\", n); let r = r#\"raw.name\"#;";
        let (toks, _) = tokenize(src);
        let lits: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Lit).collect();
        assert_eq!(lits[0].text, "exec.op.rows");
        assert!(lits.iter().any(|t| t.text == "raw.name"));
        let chars: Vec<char> = src.chars().collect();
        for t in &toks {
            assert!(t.pos < t.end, "empty span for {t:?}");
            let slice: String = chars[t.pos as usize..t.end as usize].iter().collect();
            if t.kind == TokKind::Ident {
                assert_eq!(slice, t.text);
            }
        }
    }

    #[test]
    fn numeric_range_does_not_eat_dots() {
        let (toks, _) = tokenize("for i in 0..10 { v[i] = 1.5; }");
        // `..` survives as two dots.
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
