//! `ic-lint` — workspace invariant checker.
//!
//! A std-only tokenizer, item-level parser, workspace symbol table and
//! cross-crate call graph, with a rule engine enforcing the project
//! invariants L001–L012 (see [`rules`] for the catalogue and pragma
//! syntax, and LINTS.md for the rationale of each rule). The crate
//! deliberately has zero dependencies so it builds before — and
//! independently of — everything it checks.

pub mod callgraph;
pub mod dataflow;
pub mod lockgraph;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod tokenizer;

pub use rules::{
    lint_files, lint_files_with, FileInput, LintOptions, ObsDoc, Report, Violation,
};

use std::path::{Path, PathBuf};

/// Discover and lint every production source file under `root` (a workspace
/// root): `crates/*/src/**/*.rs` and the root crate's `src/*.rs`. Test,
/// bench and vendored code are out of scope by construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut inputs = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push(FileInput { path: rel, source: std::fs::read_to_string(&f)? });
    }

    // The observability-name registry (L011). A workspace scan sees every
    // emission site, so the reverse direction (documented-but-never-emitted)
    // is checked too.
    let mut opts = LintOptions::default();
    let obs_path = root.join("OBSERVABILITY.md");
    if obs_path.is_file() {
        let content = std::fs::read_to_string(&obs_path)?;
        opts.obs_doc = Some(ObsDoc::parse("OBSERVABILITY.md", &content));
        opts.check_obs_unused = true;
    }
    Ok(lint_files_with(&inputs, &opts))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}
