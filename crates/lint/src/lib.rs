//! `ic-lint` — workspace invariant checker.
//!
//! A std-only tokenizer plus a small rule engine enforcing the project
//! invariants L001–L005 (see [`rules`] for the catalogue and pragma
//! syntax). The crate deliberately has zero dependencies so it builds
//! before — and independently of — everything it checks.

pub mod lockgraph;
pub mod rules;
pub mod tokenizer;

pub use rules::{lint_files, FileInput, Report, Violation};

use std::path::{Path, PathBuf};

/// Discover and lint every production source file under `root` (a workspace
/// root): `crates/*/src/**/*.rs` and the root crate's `src/*.rs`. Test,
/// bench and vendored code are out of scope by construction.
pub fn lint_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut inputs = Vec::with_capacity(files.len());
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push(FileInput { path: rel, source: std::fs::read_to_string(&f)? });
    }
    Ok(lint_files(&inputs))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}
