//! Workspace-wide symbol table: every `fn` item across every scanned file,
//! addressable by bare name and by `Type::name`. This is what lets the
//! call-graph resolve cross-crate calls without rustc.

use crate::parser::ParsedFile;
use std::collections::HashMap;

/// One function symbol. `file`/`fn_idx` index back into the parsed files.
#[derive(Debug, Clone)]
pub struct FnSym {
    pub krate: String,
    pub path: String,
    pub file: usize,
    pub fn_idx: usize,
    pub name: String,
    pub impl_type: Option<String>,
    pub line: u32,
}

#[derive(Debug, Default)]
pub struct SymbolTable {
    pub fns: Vec<FnSym>,
    /// Bare fn name → symbol ids (free fns and methods alike).
    pub by_name: HashMap<String, Vec<usize>>,
    /// (`impl`/`trait` type, fn name) → symbol ids.
    pub by_qual: HashMap<(String, String), Vec<usize>>,
}

/// Crate name from a workspace-relative path: `crates/net/src/wire.rs` →
/// `net`; files under the root `src/` report `root`.
pub fn krate_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let mut parts = norm.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or("root").to_string(),
        _ => "root".to_string(),
    }
}

impl SymbolTable {
    pub fn build(files: &[ParsedFile]) -> SymbolTable {
        let refs: Vec<&ParsedFile> = files.iter().collect();
        Self::build_refs(&refs)
    }

    /// Same as [`SymbolTable::build`], over borrowed files (the engine owns
    /// its parsed files inside larger per-file entries).
    pub fn build_refs(files: &[&ParsedFile]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (fi, file) in files.iter().enumerate() {
            let krate = krate_of(&file.path);
            for (gi, f) in file.fns.iter().enumerate() {
                let id = t.fns.len();
                t.fns.push(FnSym {
                    krate: krate.clone(),
                    path: file.path.clone(),
                    file: fi,
                    fn_idx: gi,
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    line: f.line,
                });
                t.by_name.entry(f.name.clone()).or_default().push(id);
                if let Some(ty) = &f.impl_type {
                    t.by_qual.entry((ty.clone(), f.name.clone())).or_default().push(id);
                }
            }
        }
        t
    }

    /// Resolve `Type::name` — unique match or nothing.
    pub fn resolve_qualified(&self, ty: &str, name: &str) -> Option<usize> {
        match self.by_qual.get(&(ty.to_string(), name.to_string())) {
            Some(ids) if ids.len() == 1 => Some(ids[0]),
            _ => None,
        }
    }

    /// Resolve a bare call `name(...)`: prefer a unique free fn; fall back
    /// to a unique symbol of any kind (covers `use Type::assoc` imports).
    pub fn resolve_free(&self, name: &str) -> Option<usize> {
        let ids = self.by_name.get(name)?;
        let free: Vec<usize> =
            ids.iter().copied().filter(|&i| self.fns[i].impl_type.is_none()).collect();
        match free.len() {
            1 => Some(free[0]),
            0 if ids.len() == 1 => Some(ids[0]),
            _ => None,
        }
    }

    /// Resolve a method call `recv.name(...)`: only when the name is unique
    /// among methods workspace-wide (a documented approximation — without
    /// types we cannot disambiguate overloaded method names). Names that
    /// collide with std prelude/iterator/collection methods never resolve:
    /// `.any(..)` in a kernel is almost always `Iterator::any`, and a false
    /// edge to some workspace fn that happens to share the name would
    /// poison every reachability set built on the graph.
    pub fn resolve_method(&self, name: &str) -> Option<usize> {
        const STD_METHODS: [&str; 40] = [
            "any", "all", "map", "filter", "fold", "find", "position", "count", "sum",
            "product", "min", "max", "rev", "zip", "chain", "take", "skip", "next", "len",
            "is_empty", "get", "push", "pop", "insert", "remove", "contains", "clear",
            "extend", "drain", "iter", "clone", "cmp", "eq", "hash", "fmt", "default",
            "as_ref", "as_str", "to_string", "into_iter",
        ];
        if STD_METHODS.contains(&name) {
            return None;
        }
        let ids = self.by_name.get(name)?;
        let methods: Vec<usize> =
            ids.iter().copied().filter(|&i| self.fns[i].impl_type.is_some()).collect();
        match methods.len() {
            1 => Some(methods[0]),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn builds_and_resolves() {
        let a = parse_file(
            "crates/exec/src/kernels.rs",
            "pub fn gather(x: u32) {} impl ColJoinTable { pub fn probe(&self) {} }",
        );
        let b = parse_file(
            "crates/common/src/col.rs",
            "impl ColumnBatch { pub fn gather(&self) {} pub fn phys_index(&self) {} }",
        );
        let t = SymbolTable::build(&[a, b]);
        assert_eq!(t.fns.len(), 4);
        // `gather` has a free fn and a method: free resolution wins.
        let id = t.resolve_free("gather").unwrap();
        assert!(t.fns[id].impl_type.is_none());
        assert!(t.resolve_qualified("ColJoinTable", "probe").is_some());
        // Unique-among-methods names resolve (the free `gather` does not
        // make the method ambiguous — only other methods would).
        assert!(t.resolve_method("phys_index").is_some());
        assert!(t.resolve_method("gather").is_some());
        assert_eq!(krate_of("crates/net/src/wire.rs"), "net");
        assert_eq!(krate_of("src/main.rs"), "root");
    }
}
