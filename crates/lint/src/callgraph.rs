//! Cross-crate call graph over the workspace symbol table. Call sites are
//! extracted lexically from each fn body and resolved against the symbol
//! table: `Type::name(` resolves through the impl index, bare `name(`
//! through free fns, and `.name(` only when the method name is unique
//! workspace-wide (the documented approximation — we have no types).
//! Each site records whether it sits inside a `for`/`while`/`loop` body,
//! which drives the L012 loop-hot propagation.

use crate::dataflow::loop_ranges;
use crate::parser::ParsedFile;
use crate::symbols::SymbolTable;
use crate::tokenizer::TokKind;
use std::collections::HashSet;

/// One resolved call site.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub caller: usize,
    pub callee: usize,
    pub line: u32,
    /// The call sits inside a loop body of the caller.
    pub in_loop: bool,
}

#[derive(Debug, Default)]
pub struct CallGraph {
    pub sites: Vec<CallSite>,
    /// fn id → indices into `sites` where it is the caller.
    pub out_edges: Vec<Vec<usize>>,
}

/// Keywords that look like `ident (` but are not calls.
const NOT_CALLS: [&str; 11] =
    ["if", "while", "for", "match", "return", "loop", "fn", "let", "in", "move", "Some"];

impl CallGraph {
    pub fn build(files: &[ParsedFile], syms: &SymbolTable) -> CallGraph {
        let refs: Vec<&ParsedFile> = files.iter().collect();
        Self::build_refs(&refs, syms)
    }

    /// Same as [`CallGraph::build`], over borrowed files.
    pub fn build_refs(files: &[&ParsedFile], syms: &SymbolTable) -> CallGraph {
        let mut g = CallGraph { sites: Vec::new(), out_edges: vec![Vec::new(); syms.fns.len()] };
        for (id, sym) in syms.fns.iter().enumerate() {
            let file = files[sym.file];
            let f = &file.fns[sym.fn_idx];
            let Some((body_start, body_end)) = f.body else { continue };
            // Exclude sub-ranges that belong to nested fn items — their
            // calls are attributed to the nested fn's own symbol.
            let nested: Vec<(usize, usize)> = file
                .fns
                .iter()
                .enumerate()
                .filter(|(k, _)| *k != sym.fn_idx)
                .filter_map(|(_, other)| other.body)
                .filter(|&(s, e)| s > body_start && e <= body_end)
                .collect();
            let loops = loop_ranges(&file.toks, (body_start, body_end));
            let toks = &file.toks;
            let mut i = body_start;
            while i < body_end {
                if nested.iter().any(|&(s, _)| s == i) {
                    // Jump over the nested fn body entirely.
                    let (_, e) = *nested.iter().find(|&&(s, _)| s == i).unwrap();
                    i = e;
                    continue;
                }
                let t = &toks[i];
                if t.kind == TokKind::Ident
                    && toks.get(i + 1).is_some_and(|a| a.is_punct('('))
                    && !NOT_CALLS.contains(&t.text.as_str())
                {
                    let prev_dot = toks.get(i.wrapping_sub(1)).is_some_and(|a| a.is_punct('.'));
                    let prev_qual = i >= 2
                        && toks[i - 1].is_punct(':')
                        && toks[i - 2].is_punct(':');
                    let resolved = if prev_qual {
                        // `Seg::name(` — the segment before `::`.
                        let seg = toks
                            .get(i.wrapping_sub(3))
                            .filter(|s| s.kind == TokKind::Ident)
                            .map(|s| s.text.as_str());
                        match seg {
                            Some(ty) => syms
                                .resolve_qualified(ty, &t.text)
                                .or_else(|| syms.resolve_free(&t.text)),
                            None => syms.resolve_free(&t.text),
                        }
                    } else if prev_dot {
                        syms.resolve_method(&t.text)
                    } else {
                        syms.resolve_free(&t.text)
                    };
                    if let Some(callee) = resolved {
                        if callee != id {
                            let in_loop = loops.iter().any(|&(s, e)| i > s && i < e);
                            g.out_edges[id].push(g.sites.len());
                            g.sites.push(CallSite { caller: id, callee, line: t.line, in_loop });
                        }
                    }
                }
                i += 1;
            }
        }
        g
    }

    /// All fn ids reachable from `roots` (inclusive) over call edges.
    pub fn reachable(&self, roots: &[usize]) -> HashSet<usize> {
        let mut seen: HashSet<usize> = roots.iter().copied().collect();
        let mut stack: Vec<usize> = roots.to_vec();
        while let Some(f) = stack.pop() {
            for &s in &self.out_edges[f] {
                let callee = self.sites[s].callee;
                if seen.insert(callee) {
                    stack.push(callee);
                }
            }
        }
        seen
    }

    /// Fns whose bodies execute per-element under some kernel root: callees
    /// of in-loop call sites in root fns, closed under *all* outgoing calls
    /// (once a fn runs per element, everything it calls does too).
    pub fn loop_hot(&self, roots: &[usize]) -> HashSet<usize> {
        let mut hot: HashSet<usize> = HashSet::new();
        let mut stack: Vec<usize> = Vec::new();
        for &r in roots {
            for &s in &self.out_edges[r] {
                let site = &self.sites[s];
                if site.in_loop && hot.insert(site.callee) {
                    stack.push(site.callee);
                }
            }
        }
        while let Some(f) = stack.pop() {
            for &s in &self.out_edges[f] {
                let callee = self.sites[s].callee;
                if hot.insert(callee) {
                    stack.push(callee);
                }
            }
        }
        hot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    fn build(srcs: &[(&str, &str)]) -> (Vec<ParsedFile>, SymbolTable, CallGraph) {
        let files: Vec<ParsedFile> =
            srcs.iter().map(|(p, s)| parse_file(p, s)).collect();
        let syms = SymbolTable::build(&files);
        let g = CallGraph::build(&files, &syms);
        (files, syms, g)
    }

    #[test]
    fn cross_crate_resolution_and_reachability() {
        let (_, syms, g) = build(&[
            (
                "crates/exec/src/kernels.rs",
                "pub fn gather_join(out: &mut O) { for i in 0..n { helper_step(i); } }",
            ),
            (
                "crates/plan/src/util.rs",
                "pub fn helper_step(i: usize) { deep(i); } fn deep(_i: usize) {}",
            ),
        ]);
        let root = syms.by_name["gather_join"][0];
        let reach = g.reachable(&[root]);
        assert!(reach.contains(&syms.by_name["helper_step"][0]));
        assert!(reach.contains(&syms.by_name["deep"][0]));
        // helper_step was called in a loop → it and deep are loop-hot.
        let hot = g.loop_hot(&[root]);
        assert!(hot.contains(&syms.by_name["helper_step"][0]));
        assert!(hot.contains(&syms.by_name["deep"][0]));
    }

    #[test]
    fn qualified_and_method_calls_resolve() {
        let (_, syms, g) = build(&[
            (
                "crates/exec/src/a.rs",
                "fn caller(t: &ColJoinTable) { ColJoinTable::probe(t); t.finish_build(); }",
            ),
            (
                "crates/exec/src/b.rs",
                "impl ColJoinTable { pub fn probe(&self) {} pub fn finish_build(&self) {} }",
            ),
        ]);
        let root = syms.by_name["caller"][0];
        let reach = g.reachable(&[root]);
        assert!(reach.contains(&syms.by_name["probe"][0]));
        assert!(reach.contains(&syms.by_name["finish_build"][0]));
    }

    #[test]
    fn ambiguous_methods_unresolved_and_calls_outside_loops_not_hot() {
        let (_, syms, g) = build(&[
            ("crates/a/src/x.rs", "impl A { pub fn go(&self) {} } fn root(a: &A) { a.go(); }"),
            ("crates/b/src/y.rs", "impl B { pub fn go(&self) {} }"),
        ]);
        let root = syms.by_name["root"][0];
        // `.go()` is ambiguous: two methods named go → unresolved.
        assert_eq!(g.reachable(&[root]).len(), 1);
        assert!(g.loop_hot(&[root]).is_empty());
    }
}
