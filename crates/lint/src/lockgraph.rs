//! L005: static lock-order analysis.
//!
//! Per function, walk the token stream tracking which lock guards are held
//! (a lexical approximation: a guard bound with `let` lives to the end of
//! its enclosing block, a temporary guard dies at the next `;`, and
//! `drop(guard)` releases early). Every acquisition while other locks are
//! held contributes directed edges `held -> acquired` to a cross-crate
//! graph keyed by the receiver's field name; a cycle in that graph is a
//! potential deadlock between two call paths that take the same locks in
//! opposite orders.
//!
//! This is deliberately intra-procedural — the dynamic detector in the
//! vendored `parking_lot` shim covers cross-function nesting at test time.
//!
//! Named closures are the one place the lexical model needs help: in
//!
//! ```text
//! let job = || self.registry.lock();   // deferred — acquires nothing yet
//! let j = self.journal.lock();
//! run_under_lock(job);                 // registry acquired HERE, under journal
//! ```
//!
//! the acquisition happens at the call/pass site, not the definition. The
//! scanner therefore collects each named closure's acquisitions in a
//! pre-pass, skips the closure body during the main walk (so definition-time
//! held sets are not misattributed — which used to fabricate edges in the
//! *wrong direction*), and replays the closure's locks against the held set
//! at every later use of the closure's name.

use crate::tokenizer::{Tok, TokKind};

/// One observed `held -> acquired` ordering, with its witness site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub path: String,
    pub line: u32,
    pub func: String,
}

/// A reported lock-order cycle.
#[derive(Debug, Clone)]
pub struct Cycle {
    pub path: String,
    pub line: u32,
    pub message: String,
}

/// A lock guard currently held while scanning a function body.
#[derive(Debug)]
struct Held {
    lock: String,
    /// Brace depth at which the guard's binding lives; popped when the
    /// scanner leaves that depth.
    depth: usize,
    /// Name the guard is bound to (`let g = m.lock()`), if any. Temporaries
    /// (no binding) are popped at the next `;` at their own depth.
    binding: Option<String>,
}

/// Extract lock-order edges from one file's (test-stripped) token stream.
pub fn extract_edges(path: &str, toks: &[Tok]) -> Vec<LockEdge> {
    let mut edges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let func = toks[i + 1].text.clone();
            // Find the body's opening brace (skip generics/args/ret type).
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut body_start = None;
            while j < toks.len() {
                let t = &toks[j];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "<" => angle += 1,
                        ">" => angle = (angle - 1).max(0),
                        "{" if angle == 0 => {
                            body_start = Some(j);
                            break;
                        }
                        ";" if angle == 0 => break, // trait method decl, no body
                        _ => {}
                    }
                }
                j += 1;
            }
            let Some(start) = body_start else {
                i = j + 1;
                continue;
            };
            let end = scan_function_body(path, &func, toks, start, &mut edges);
            i = end;
            continue;
        }
        i += 1;
    }
    edges
}

/// A named closure defined in the current function body, with the locks its
/// body acquires. Uses of `name` after `def_end` replay those acquisitions
/// against the then-current held set.
#[derive(Debug)]
struct DeferredClosure {
    name: String,
    locks: Vec<String>,
    /// Token range of the whole `let name = |..| body` initializer; the
    /// main scan skips `[body_start, def_end)`.
    body_start: usize,
    def_end: usize,
}

/// Find the index just past the `}` closing the brace opened at `open`.
fn brace_end(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct {
            match toks[i].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
    toks.len()
}

/// Collect `let name = [move] |..| body` closures in `[open, end)` together
/// with the lock receiver names their bodies acquire.
fn collect_deferred_closures(toks: &[Tok], open: usize, end: usize) -> Vec<DeferredClosure> {
    let mut out = Vec::new();
    let mut i = open;
    while i < end {
        if !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut k = i + 1;
        if toks.get(k).is_some_and(|x| x.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = toks.get(k).filter(|x| x.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        if !toks.get(k + 1).is_some_and(|x| x.is_punct('=')) {
            i += 1;
            continue;
        }
        let mut j = k + 2;
        if toks.get(j).is_some_and(|x| x.is_ident("move")) {
            j += 1;
        }
        if !toks.get(j).is_some_and(|x| x.is_punct('|')) {
            i += 1;
            continue;
        }
        // Find the closing `|` of the parameter list (params contain no `|`).
        let mut close = j + 1;
        while close < end && !toks[close].is_punct('|') {
            close += 1;
        }
        let body_start = close + 1;
        let def_end = if toks.get(body_start).is_some_and(|x| x.is_punct('{')) {
            brace_end(toks, body_start)
        } else {
            // Expression body: runs to the `;` at group depth 0.
            let mut bal = 0i32;
            let mut m = body_start;
            while m < end {
                if toks[m].kind == TokKind::Punct {
                    match toks[m].text.as_str() {
                        "(" | "[" | "{" => bal += 1,
                        ")" | "]" | "}" => bal -= 1,
                        ";" if bal == 0 => break,
                        _ => {}
                    }
                }
                m += 1;
            }
            m
        };
        let mut locks = Vec::new();
        let mut m = body_start;
        while m < def_end {
            let t = &toks[m];
            if (t.is_ident("lock") || t.is_ident("read") || t.is_ident("write"))
                && m > 0
                && toks[m - 1].is_punct('.')
                && toks.get(m + 1).is_some_and(|x| x.is_punct('('))
                && toks.get(m + 2).is_some_and(|x| x.is_punct(')'))
            {
                if let Some(lock) = receiver_name(toks, m - 1) {
                    if !locks.contains(&lock) {
                        locks.push(lock);
                    }
                }
            }
            m += 1;
        }
        if !locks.is_empty() {
            out.push(DeferredClosure {
                name: name.text.clone(),
                locks,
                body_start,
                def_end,
            });
        }
        i = def_end.max(i + 1);
    }
    out
}

/// Scan one `{ ... }` function body starting at the opening brace; returns
/// the index just past the closing brace.
fn scan_function_body(
    path: &str,
    func: &str,
    toks: &[Tok],
    open: usize,
    edges: &mut Vec<LockEdge>,
) -> usize {
    let body_end = brace_end(toks, open);
    let closures = collect_deferred_closures(toks, open, body_end);
    let mut depth = 0usize;
    let mut held: Vec<Held> = Vec::new();
    // Pending `let` binding name, waiting to see if the initializer acquires.
    let mut pending_let: Option<String> = None;
    let mut i = open;
    while i < toks.len() {
        // Deferred closure bodies acquire nothing at definition time.
        if let Some(c) = closures.iter().find(|c| c.body_start == i) {
            pending_let = None;
            i = c.def_end;
            continue;
        }
        let t = &toks[i];
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    held.retain(|h| h.depth <= depth);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                ";" => {
                    // Temporary guards on this statement die here.
                    held.retain(|h| !(h.binding.is_none() && h.depth == depth));
                    pending_let = None;
                }
                _ => {}
            },
            TokKind::Ident => {
                // A later use of a deferred closure's name — direct call or
                // passed to a runner helper — executes its body here, under
                // whatever locks are now held.
                if let Some(c) = closures
                    .iter()
                    .find(|c| c.name == t.text && i >= c.def_end)
                {
                    let dropped = i >= 2
                        && toks[i - 1].is_punct('(')
                        && toks[i - 2].is_ident("drop");
                    let method_call = i > 0 && toks[i - 1].is_punct('.');
                    if !dropped && !method_call {
                        for h in &held {
                            for lock in &c.locks {
                                if &h.lock != lock {
                                    edges.push(LockEdge {
                                        from: h.lock.clone(),
                                        to: lock.clone(),
                                        path: path.to_string(),
                                        line: t.line,
                                        func: func.to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
                if t.text == "let" {
                    // `let [mut] name`
                    let mut k = i + 1;
                    if toks.get(k).is_some_and(|x| x.is_ident("mut")) {
                        k += 1;
                    }
                    if let Some(name) = toks.get(k).filter(|x| x.kind == TokKind::Ident) {
                        pending_let = Some(name.text.clone());
                    }
                } else if t.text == "drop"
                    && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && toks.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
                    && toks.get(i + 3).is_some_and(|x| x.is_punct(')'))
                {
                    let name = &toks[i + 2].text;
                    held.retain(|h| h.binding.as_deref() != Some(name.as_str()));
                } else if (t.text == "lock" || t.text == "read" || t.text == "write")
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && toks.get(i + 2).is_some_and(|x| x.is_punct(')'))
                {
                    if let Some(lock) = receiver_name(toks, i - 1) {
                        for h in &held {
                            if h.lock != lock {
                                edges.push(LockEdge {
                                    from: h.lock.clone(),
                                    to: lock.clone(),
                                    path: path.to_string(),
                                    line: t.line,
                                    func: func.to_string(),
                                });
                            }
                        }
                        held.push(Held { lock, depth, binding: pending_let.take() });
                    }
                }
            }
            TokKind::Lit => {}
        }
        i += 1;
    }
    toks.len()
}

/// Walk back from the `.` before `lock`/`read`/`write` to find the receiver
/// field name, skipping balanced `(...)`/`[...]` groups and `.`-chains:
/// `self.catalog.tables.read()` -> `tables`, `shards[i].lock()` -> `shards`.
fn receiver_name(toks: &[Tok], dot: usize) -> Option<String> {
    let mut i = dot; // index of the `.`
    loop {
        if i == 0 {
            return None;
        }
        let prev = &toks[i - 1];
        match prev.kind {
            TokKind::Ident => return Some(prev.text.clone()),
            TokKind::Punct => match prev.text.as_str() {
                ")" | "]" => {
                    // Skip the balanced group, then continue leftward.
                    let open = if prev.text == ")" { "(" } else { "[" };
                    let close = prev.text.as_str();
                    let mut bal = 0i32;
                    let mut j = i - 1;
                    loop {
                        let p = &toks[j];
                        if p.kind == TokKind::Punct {
                            if p.text == close {
                                bal += 1;
                            } else if p.text == open {
                                bal -= 1;
                                if bal == 0 {
                                    break;
                                }
                            }
                        }
                        if j == 0 {
                            return None;
                        }
                        j -= 1;
                    }
                    i = j;
                }
                _ => return None,
            },
            TokKind::Lit => return None,
        }
    }
}

/// Merge edges into a graph (nodes keyed by lock name) and report every
/// elementary order inversion / cycle, deduplicated by node set.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<Cycle> {
    use std::collections::{BTreeMap, BTreeSet};
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut witness: BTreeMap<(&str, &str), &LockEdge> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        witness.entry((&e.from, &e.to)).or_insert(e);
    }

    let mut cycles = Vec::new();
    let mut seen: BTreeSet<Vec<&str>> = BTreeSet::new();
    // DFS from each node looking for a path back to it.
    for &start in adj.keys() {
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        while let Some((node, pathv)) = stack.pop() {
            if let Some(nexts) = adj.get(node) {
                for &next in nexts {
                    if next == start && pathv.len() > 1 {
                        let mut key: Vec<&str> = pathv.clone();
                        key.sort_unstable();
                        key.dedup();
                        if seen.insert(key) {
                            let w = witness[&(node, next)];
                            let chain = {
                                let mut c = pathv.join(" -> ");
                                c.push_str(" -> ");
                                c.push_str(start);
                                c
                            };
                            let sites: Vec<String> = pathv
                                .iter()
                                .zip(pathv.iter().skip(1).chain(std::iter::once(&start)))
                                .filter_map(|(a, b)| witness.get(&(*a, *b)))
                                .map(|e| format!("{}:{} (fn {})", e.path, e.line, e.func))
                                .collect();
                            cycles.push(Cycle {
                                path: w.path.clone(),
                                line: w.line,
                                message: format!(
                                    "lock-order cycle: {chain}; acquisition sites: {}",
                                    sites.join(", ")
                                ),
                            });
                        }
                    } else if !pathv.contains(&next) && pathv.len() < 8 {
                        let mut p = pathv.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::{strip_test_regions, tokenize};

    fn edges_of(src: &str) -> Vec<LockEdge> {
        let (toks, _) = tokenize(src);
        extract_edges("crates/x/src/a.rs", &strip_test_regions(&toks))
    }

    #[test]
    fn nested_acquisition_yields_edge() {
        let src = "fn f(&self) { let a = self.names.write(); let b = self.tables.write(); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "names");
        assert_eq!(e[0].to, "tables");
        assert_eq!(e[0].func, "f");
    }

    #[test]
    fn temporary_guard_released_at_semicolon() {
        let src = "fn f(&self) { self.names.write().insert(k); let b = self.tables.write(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn drop_releases_binding() {
        let src = "fn f(&self) { let a = self.names.write(); drop(a); let b = self.tables.write(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn block_scope_releases_guard() {
        let src = "fn f(&self) { { let a = self.names.write(); } let b = self.tables.write(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn receiver_through_index_chain() {
        let src = "fn f(&self) { let a = self.shards[i].lock(); let b = self.log.lock(); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "shards");
        assert_eq!(e[0].to, "log");
    }

    #[test]
    fn inversion_across_functions_is_a_cycle() {
        let src = "
            fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            fn ba(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
        ";
        let e = edges_of(src);
        let cycles = find_cycles(&e);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("alpha"));
        assert!(cycles[0].message.contains("beta"));
    }

    #[test]
    fn deferred_closure_attributed_to_call_site() {
        // The closure acquires `beta` only when `run(job)` executes — by
        // then `alpha` is held, so the edge is alpha -> beta.
        let src = "fn f(&self) { let job = || { self.beta.lock(); };\n\
                   let a = self.alpha.lock(); run(job); }";
        let e = edges_of(src);
        assert_eq!(e.len(), 1, "{e:?}");
        assert_eq!(e[0].from, "alpha");
        assert_eq!(e[0].to, "beta");
    }

    #[test]
    fn deferred_closure_definition_acquires_nothing() {
        // Before the fix, the definition-time scan fabricated the reverse
        // edge beta -> alpha (the closure body was treated as executing at
        // the `let`), masking real inversions. Unused closures contribute
        // no edges at all.
        let src = "fn f(&self) { let job = || self.beta.lock();\n\
                   let a = self.alpha.lock(); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn closure_inversion_is_a_cycle() {
        let src = "
            fn direct(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); }
            fn deferred(&self) {
                let job = move || { self.beta.lock(); };
                let a = self.alpha.lock();
                pool_run(job);
            }
        ";
        let cycles = find_cycles(&edges_of(src));
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].message.contains("alpha"));
        assert!(cycles[0].message.contains("beta"));
    }

    #[test]
    fn dropped_closure_does_not_replay() {
        let src = "fn f(&self) { let job = || { self.beta.lock(); };\n\
                   let a = self.alpha.lock(); drop(job); }";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn consistent_order_no_cycle() {
        let src = "
            fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
            fn ab2(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }
        ";
        assert!(find_cycles(&edges_of(src)).is_empty());
    }
}
