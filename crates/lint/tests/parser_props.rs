//! Property tests for the item parser: generate random well-formed Rust-ish
//! sources from a grammar of items, then check the round-trip invariants —
//! every generated fn is found under the right impl type, every recorded
//! body is a balanced brace range whose char span reproduces the body text
//! exactly, and distinct fn body spans never partially overlap (they are
//! disjoint or properly nested). Together these mean the spans cover each
//! fn body's bytes exactly once at every nesting level, which is what the
//! per-fn semantic rules (L009–L012) rely on when they slice token ranges.

use ic_lint::parser::parse_file;
use proptest::prelude::*;

/// Lowercase identifier distinct from keywords used in the templates.
/// (The vendored proptest shim supports single `[class]{lo,hi}` patterns
/// only, so identifiers are composed from two parts.)
fn ident() -> impl Strategy<Value = String> {
    ("[a-z]{1,1}", "[a-z0-9_]{0,6}")
        .prop_map(|(head, tail)| format!("{head}{tail}"))
        .prop_filter("not a template keyword", |s| {
            !matches!(
                s.as_str(),
                "fn" | "impl" | "struct" | "enum" | "use" | "let" | "for" | "in" | "if"
                    | "else" | "while" | "loop" | "match" | "pub" | "mut" | "ref" | "move"
                    | "trait" | "where" | "dyn" | "as" | "return"
            )
        })
}

fn type_name() -> impl Strategy<Value = String> {
    ("[A-Z]{1,1}", "[a-z0-9]{0,6}").prop_map(|(head, tail)| format!("{head}{tail}"))
}

/// A statement for a fn body — may introduce nested brace groups, strings
/// with brace characters, and calls.
fn stmt() -> impl Strategy<Value = String> {
    prop_oneof![
        ident().prop_map(|f| format!("{f}();")),
        (ident(), ident()).prop_map(|(a, b)| format!("let {a} = {b}(1, 2);")),
        (ident(), ident()).prop_map(|(c, f)| format!("if {c} {{ {f}(); }}")),
        (ident(), ident()).prop_map(|(v, f)| format!("for {v} in 0..8 {{ {f}({v}); }}")),
        ident().prop_map(|s| format!("let {s} = \"braces {{ in }} a string\";")),
        Just("/* a comment with fn and { braces */".to_string()),
    ]
}

fn fn_body() -> impl Strategy<Value = String> {
    proptest::collection::vec(stmt(), 0..4).prop_map(|stmts| stmts.join(" "))
}

/// One generated item, plus the fn names it contributes:
/// (source text, vec of (fn name, impl type)).
#[derive(Debug, Clone)]
struct GenItem {
    src: String,
    fns: Vec<(String, Option<String>)>,
}

fn item() -> impl Strategy<Value = GenItem> {
    prop_oneof![
        // Free fn.
        (ident(), fn_body()).prop_map(|(name, body)| GenItem {
            src: format!("pub fn {name}(x: u32) -> u32 {{ {body} }}"),
            fns: vec![(name, None)],
        }),
        // Impl block with two methods.
        (type_name(), ident(), ident(), fn_body()).prop_map(|(ty, m1, m2, body)| {
            let src = format!(
                "impl {ty} {{ pub fn {m1}(&self) {{ {body} }} fn {m2}(&mut self, k: usize) {{ }} }}"
            );
            GenItem { src, fns: vec![(m1, Some(ty.clone())), (m2, Some(ty))] }
        }),
        // Struct + use contribute no fns but exercise the item scanner.
        (type_name(), ident()).prop_map(|(ty, f)| GenItem {
            src: format!("pub struct {ty} {{ {f}: u64 }}"),
            fns: vec![],
        }),
        (ident(), ident()).prop_map(|(a, b)| GenItem {
            src: format!("use {a}::{b};"),
            fns: vec![],
        }),
        // Fn containing a nested fn.
        (ident(), ident(), fn_body()).prop_map(|(outer, inner, body)| GenItem {
            src: format!("fn {outer}() {{ fn {inner}() {{ {body} }} {inner}(); }}"),
            fns: vec![(outer, None), (inner, None)],
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn parse_round_trip(items in proptest::collection::vec(item(), 1..8)) {
        let src: String =
            items.iter().map(|i| i.src.as_str()).collect::<Vec<_>>().join("\n");
        let parsed = parse_file("crates/x/src/gen.rs", &src);
        let chars: Vec<char> = src.chars().collect();

        // Every generated fn is found, under the right impl type. Names may
        // repeat across items; count generated occurrences <= parsed ones.
        for (name, impl_ty) in items.iter().flat_map(|i| i.fns.iter()) {
            let want = items
                .iter()
                .flat_map(|i| i.fns.iter())
                .filter(|(n, t)| n == name && t == impl_ty)
                .count();
            let got = parsed
                .fns
                .iter()
                .filter(|f| &f.name == name && f.impl_type.as_deref() == impl_ty.as_deref())
                .count();
            prop_assert_eq!(got, want, "fn {} under {:?}", name, impl_ty);
        }

        for f in &parsed.fns {
            let (Some((bs, be)), Some((ca, cb))) = (f.body, f.span) else { continue };
            // Token range: starts at `{`, ends just past its matching `}`.
            prop_assert!(parsed.toks[bs].is_punct('{'));
            prop_assert!(parsed.toks[be - 1].is_punct('}'));
            let mut depth = 0i64;
            for t in &parsed.toks[bs..be] {
                if t.is_punct('{') { depth += 1 }
                if t.is_punct('}') { depth -= 1 }
                prop_assert!(depth >= 0);
            }
            prop_assert_eq!(depth, 0, "unbalanced body for {}", &f.name);
            // Char span reproduces the body text exactly: starts with `{`,
            // ends with `}`, and its brace balance is zero ignoring strings
            // and comments (which the tokenizer already skipped).
            let text: String = chars[ca as usize..cb as usize].iter().collect();
            prop_assert!(text.starts_with('{') && text.ends_with('}'), "span text {:?}", text);
        }

        // Distinct body spans never partially overlap: for the per-fn rules
        // each source byte belongs to exactly one fn at each nesting level.
        let spans: Vec<(u32, u32)> = parsed.fns.iter().filter_map(|f| f.span).collect();
        for (i, &(a1, b1)) in spans.iter().enumerate() {
            for &(a2, b2) in spans.iter().skip(i + 1) {
                let disjoint = b1 <= a2 || b2 <= a1;
                let nested = (a1 < a2 && b2 <= b1) || (a2 < a1 && b1 <= b2);
                prop_assert!(
                    disjoint || nested,
                    "partially overlapping fn spans ({a1},{b1}) vs ({a2},{b2})"
                );
            }
        }
    }
}
