//! Seeded fixture (L012): heap allocation inside a kernel inner loop.
//! Setup allocation outside the loop is fine; the pragma-covered sweep
//! shows the suppressed form.

pub fn alloc_in_loop(n: usize, out: &mut Vec<u64>) {
    for i in 0..n {
        let tmp = vec![0u8; 4];
        let s = format!("{i}");
        out.push(tmp.len() as u64 + s.len() as u64);
    }
}

pub fn setup_alloc_is_fine(n: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(i as u64);
    }
    out
}

// ic-lint: allow(L012) because the fixture demonstrates the suppressed form
pub fn suppressed_sweep(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        let v = vec![0u8; i];
        total += v.len();
    }
    total
}
