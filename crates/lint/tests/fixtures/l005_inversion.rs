// Seeded L005 violation: two functions acquire the same pair of locks in
// opposite orders — a classic ABBA deadlock.
pub struct State {
    registry: Mutex<Registry>,
    journal: Mutex<Journal>,
}

impl State {
    pub fn register(&self) {
        let reg = self.registry.lock();
        let jrn = self.journal.lock();
        jrn.append(reg.snapshot());
    }

    pub fn replay(&self) {
        let jrn = self.journal.lock();
        let reg = self.registry.lock();
        reg.apply(jrn.entries());
    }
}
