// Seeded L004 violation: wall-clock time in simulation-clock code.
use std::time::{Duration, Instant};

pub fn bad_wait() {
    let started = Instant::now();
    std::thread::sleep(Duration::from_millis(5));
    let _wall = std::time::SystemTime::now();
    let _ = started;
}
