//! Seeded fixture (reachability): a kernel entry point whose inner loop
//! calls a helper defined in a file no path-based scope would ever police.
//! Lint together with `reach_helper.rs`.

pub fn gather_sweep(n: usize) -> u64 {
    let mut acc = 0;
    for i in 0..n {
        acc += cold_file_helper(i);
    }
    acc
}
