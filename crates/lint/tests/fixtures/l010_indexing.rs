//! Seeded fixture (L010): raw indexing of column buffers and selection
//! vectors outside the sanctioned columnar plane. The pragma-covered fn
//! shows the suppressed form.

fn leak(batch: &ColumnBatch) -> i64 {
    let col = batch.col(0);
    if let ColumnData::Int(v) = &col.data {
        let sel = batch.selection();
        let first = v[0];
        let second = v.get(1).unwrap();
        let s = sel[0];
        first + *second + s as i64
    } else {
        0
    }
}

fn accessor_based(batch: &ColumnBatch, k: usize) -> Datum {
    batch.col(0).datum_at(batch.phys_index(k))
}

// ic-lint: allow(L010) because the fixture demonstrates the suppressed form
fn suppressed(batch: &ColumnBatch) -> i64 {
    if let ColumnData::Int(v) = &batch.col(0).data {
        v[0]
    } else {
        0
    }
}
