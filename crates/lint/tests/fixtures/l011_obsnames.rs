//! Seeded fixture (L011): a metric emitted under a name the registry does
//! not know. `exec.fixture.documented` is registered, `exec.fixture.rogue`
//! is not; the pragma-covered emission shows the suppressed form.

fn emit(metrics: &Metrics, trace: &Trace) {
    metrics.counter("exec.fixture.documented", 1);
    metrics.counter("exec.fixture.rogue", 1);
    // ic-lint: allow(L011) because the fixture demonstrates the suppressed form
    trace.event("exec.fixture.suppressed", "detail");
}
