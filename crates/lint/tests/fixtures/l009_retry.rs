//! Seeded fixture (L009): unsound error classification. The enum's
//! classifiers skip variants and hide behind a wildcard arm, and a retry
//! loop re-enters on an unclassified error. The pragma-covered loop shows
//! the suppressed form.

pub enum IcError {
    Parse(String),
    SiteUnavailable { site: u32 },
    Internal(String),
}

impl IcError {
    pub fn is_retryable(&self) -> bool {
        matches!(self, IcError::SiteUnavailable { .. })
    }

    pub fn is_failover_retryable(&self) -> bool {
        match self {
            IcError::SiteUnavailable { .. } => true,
            _ => false,
        }
    }
}

fn unguarded_retry_loop() -> Result<u32, IcError> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match step(attempts) {
            Ok(v) => return Ok(v),
            Err(e) => {
                record(e);
            }
        }
    }
}

fn guarded_retry_loop() -> Result<u32, IcError> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match step(attempts) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_failover_retryable() => continue,
            Err(e) => return Err(e),
        }
    }
}

// ic-lint: allow(L009) because the fixture demonstrates the suppressed form
fn suppressed_retry_loop() -> Result<u32, IcError> {
    let mut attempts = 0;
    loop {
        attempts += 1;
        match step(attempts) {
            Ok(v) => return Ok(v),
            Err(e) => {
                record(e);
            }
        }
    }
}
