// Seeded L002 violation: ad-hoc hasher construction outside ic_common::hash.
use std::hash::{Hash, Hasher};

pub fn bad_hash(key: &str) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}
