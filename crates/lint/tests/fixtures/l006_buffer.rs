//! L006 fixture: a buffering operator accounting its memory through a
//! private counter instead of the query's `MemoryLease` — the pre-governor
//! design the rule exists to keep out.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct LeakySort {
    rows: Vec<Vec<u64>>,
    /// The side-channel the governor can't see or revoke.
    buffered_rows: AtomicU64,
}

impl LeakySort {
    pub fn push(&mut self, row: Vec<u64>) {
        self.buffered_rows.fetch_add(row.len() as u64, Ordering::Relaxed);
        self.rows.push(row);
    }

    pub fn buffered(&self) -> u64 {
        // ic-lint: allow(L006) because the fixture demonstrates pragma suppression
        self.buffered_rows.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    // Test regions are exempt: assertions may peek at raw counters.
    #[test]
    fn buffered_rows_visible_in_tests() {
        let buffered_cells = 0u64;
        assert_eq!(buffered_cells, 0);
    }
}
