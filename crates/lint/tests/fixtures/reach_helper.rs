//! Seeded fixture (reachability): lives in `crates/plan/src/`, which no
//! path-based L001/L008/L012 scope covers — every finding below exists
//! only because `reach_kernel.rs` makes this fn call-graph-reachable from
//! a kernel loop.

pub fn cold_file_helper(i: usize) -> u64 {
    let d = lookup(i).datum_at(i);
    let tag = format!("row{i}");
    d.as_int().unwrap() as u64 + tag.len() as u64
}
