//! L007 fixture: raw wall-clock reads inside a traced code path. Span
//! timestamps must all derive from the trace epoch (`Trace::now_ns`);
//! a stray `Instant::now()` produces intervals on a different clock that
//! break span nesting and inflate the traced hot-path budget.

use std::time::Instant;

pub struct LeakyOperator {
    started_ns: u64,
}

impl LeakyOperator {
    pub fn next_batch(&mut self) {
        let t0 = Instant::now();
        let _wall = std::time::SystemTime::now();
        self.started_ns = t0.elapsed().as_nanos() as u64;
    }

    pub fn epoch_anchor() -> Instant {
        // ic-lint: allow(L007) because the fixture demonstrates pragma suppression
        Instant::now()
    }
}

#[cfg(test)]
mod tests {
    // Test regions are exempt: assertions may time things however they like.
    #[test]
    fn tests_may_read_the_clock() {
        let _t = std::time::Instant::now();
    }
}
