// Seeded L001 violation: unwrap/expect in non-test code.
pub fn bad(sender: &Sender) {
    sender.send(msg).unwrap();
    let v = table.get(&k).expect("row must exist");
    let _ = v;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        x.unwrap();
    }
}
