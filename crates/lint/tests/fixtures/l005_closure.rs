//! Seeded fixture (L005): lock-order inversion hidden behind a deferred
//! closure. `direct` takes `beta -> alpha`; `deferred` acquires `alpha`
//! and then hands a closure that takes `beta` to a runner. The closure's
//! acquisition must be attributed to the `pool_run` call site — scanning
//! it at definition time sees an empty held set (or worse, fabricates the
//! reverse edge) and misses the cycle.

pub struct Store {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Store {
    fn direct(&self) -> u64 {
        let b = self.beta.lock();
        let a = self.alpha.lock();
        *a + *b
    }

    fn deferred(&self) -> u64 {
        let job = move || {
            let g = self.beta.lock();
            *g
        };
        let a = self.alpha.lock();
        let out = pool_run(job);
        *a + out
    }
}
