// Seeded L003 violation: std HashMap in an exec hot path.
use std::collections::HashMap;

pub fn group_rows(rows: &[Row]) {
    let mut groups: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, r) in rows.iter().enumerate() {
        groups.entry(r.key).or_default().push(i);
    }
}
