//! L008 fixture: a "columnar" kernel whose inner loop re-boxes every value
//! into a `Datum` — the row-at-a-time regression the rule exists to keep
//! out of `ic_exec::kernels`.

pub fn sum_column(batch: &ColumnBatch, col: usize) -> f64 {
    let mut acc = 0.0;
    for k in 0..batch.num_rows() {
        // Per-row enum boxing: allocates/clones a Datum for every value.
        if let Datum::Double(v) = batch.col(col).datum_at(batch.phys_index(k)) {
            acc += v;
        }
    }
    acc
}

pub fn spill(batch: &ColumnBatch) -> Vec<Row> {
    // Whole-batch row materialization inside a kernel.
    batch.to_rows()
}

pub fn rebuild(rows: &[Row]) -> ColumnBatch {
    // ic-lint: allow(L008) because the fixture demonstrates pragma suppression
    ColumnBatch::from_rows(rows)
}

#[cfg(test)]
mod tests {
    // Test regions are exempt: assertions may compare via rows.
    #[test]
    fn rows_visible_in_tests() {
        let rows = batch.to_rows();
        assert_eq!(rows.len(), batch.num_rows());
    }
}
