//! Integration tests: every seeded fixture trips exactly its rule, and the
//! real workspace is clean under `--deny-all` semantics.

use ic_lint::{lint_files, lint_workspace, FileInput};
use std::path::Path;

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).expect("fixture readable")
}

/// Feed a fixture through the engine under a virtual in-scope path.
fn lint_as(virtual_path: &str, fixture_name: &str) -> ic_lint::Report {
    lint_files(&[FileInput { path: virtual_path.into(), source: fixture(fixture_name) }])
}

#[test]
fn fixture_l001_unwrap_fails() {
    // crates/sql joined the scope so the fuzzer front end stays panic-free.
    for path in ["crates/net/src/fixture.rs", "crates/sql/src/fixture.rs"] {
        let r = lint_as(path, "l001_unwrap.rs");
        let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L001").collect();
        assert_eq!(hits.len(), 2, "{path}: {:?}", r.violations);
        // The #[cfg(test)] unwrap must not be counted.
        assert!(hits.iter().all(|v| v.line < 8));
    }
}

#[test]
fn fixture_l002_hasher_fails() {
    let r = lint_as("crates/opt/src/fixture.rs", "l002_hasher.rs");
    assert!(
        r.violations.iter().any(|v| v.rule == "L002"),
        "{:?}",
        r.violations
    );
}

#[test]
fn fixture_l003_hashmap_fails() {
    let r = lint_as("crates/exec/src/fixture.rs", "l003_hashmap.rs");
    assert!(
        r.violations.iter().filter(|v| v.rule == "L003").count() >= 2,
        "{:?}",
        r.violations
    );
}

#[test]
fn fixture_l004_wallclock_fails() {
    let r = lint_as("crates/net/src/fixture.rs", "l004_wallclock.rs");
    let kinds: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "L004")
        .map(|v| v.message.clone())
        .collect();
    assert_eq!(kinds.len(), 3, "{kinds:?}");
}

#[test]
fn fixture_l005_inversion_fails() {
    let r = lint_as("crates/core/src/fixture.rs", "l005_inversion.rs");
    let cycles: Vec<_> = r.violations.iter().filter(|v| v.rule == "L005").collect();
    assert_eq!(cycles.len(), 1, "{:?}", r.violations);
    assert!(cycles[0].message.contains("registry"));
    assert!(cycles[0].message.contains("journal"));
}

#[test]
fn fixture_l006_buffer_counter_fails() {
    let r = lint_as("crates/exec/src/fixture.rs", "l006_buffer.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L006").collect();
    // Field declaration fires once; the `fetch_add` line fires both the
    // ident and the atomic-update patterns.
    assert_eq!(hits.len(), 3, "{:?}", r.violations);
    // The pragma-covered `load` is suppressed, with its justification kept.
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert!(r.suppressed[0].justification.contains("fixture"));
}

#[test]
fn fixture_l007_wallclock_fails() {
    let r = lint_as("crates/common/src/obs/fixture.rs", "l007_wallclock.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L007").collect();
    // `Instant::now()` + `SystemTime::now()` fire; the pragma-covered
    // epoch anchor is suppressed and the #[cfg(test)] read is exempt.
    assert_eq!(hits.len(), 2, "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert!(r.suppressed[0].justification.contains("fixture"));

    // The exec operators file is the other traced surface in scope.
    let r = lint_as("crates/exec/src/operators.rs", "l007_wallclock.rs");
    assert_eq!(r.violations.iter().filter(|v| v.rule == "L007").count(), 2);
}

#[test]
fn fixture_l008_per_row_datum_fails() {
    let r = lint_as("crates/exec/src/kernels.rs", "l008_datum.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L008").collect();
    // `datum_at` + `to_rows` fire; the pragma-covered `from_rows` is
    // suppressed and the #[cfg(test)] `to_rows` is exempt.
    assert_eq!(hits.len(), 2, "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert!(r.suppressed[0].justification.contains("fixture"));
}

#[test]
fn fixtures_out_of_scope_paths_pass() {
    // The same sources are fine where the rules don't apply.
    for (path, fixture_name) in [
        ("crates/plan/src/fixture.rs", "l001_unwrap.rs"),
        ("crates/net/src/fixture.rs", "l003_hashmap.rs"),
        ("crates/plan/src/fixture.rs", "l004_wallclock.rs"),
        ("crates/net/tests/fixture.rs", "l005_inversion.rs"),
        ("crates/core/src/fixture.rs", "l006_buffer.rs"),
        ("crates/exec/tests/fixture.rs", "l006_buffer.rs"),
        ("crates/common/src/lease.rs", "l007_wallclock.rs"),
        ("crates/common/tests/fixture.rs", "l007_wallclock.rs"),
        ("crates/exec/src/operators.rs", "l008_datum.rs"),
        ("crates/exec/tests/fixture.rs", "l008_datum.rs"),
    ] {
        let r = lint_as(path, fixture_name);
        assert!(
            r.violations.is_empty(),
            "{path} + {fixture_name}: {:?}",
            r.violations
        );
    }
}

#[test]
fn pragma_suppresses_with_justification() {
    let src = "// ic-lint: allow(L004) because the delay simulator is the wall-clock boundary\n\
               fn f() { std::thread::sleep(d); }";
    let r = lint_files(&[FileInput { path: "crates/net/src/x.rs".into(), source: src.into() }]);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1);
}

#[test]
fn workspace_is_clean() {
    // The invariant the CI step enforces, also enforced under `cargo test`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(msgs.is_empty(), "workspace lint violations:\n{}", msgs.join("\n"));
}
