//! Integration tests: every seeded fixture trips exactly its rule, and the
//! real workspace is clean under `--deny-all` semantics.

use ic_lint::{lint_files, lint_files_with, lint_workspace, FileInput, LintOptions, ObsDoc};
use std::path::Path;

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name)).expect("fixture readable")
}

/// Feed a fixture through the engine under a virtual in-scope path.
fn lint_as(virtual_path: &str, fixture_name: &str) -> ic_lint::Report {
    lint_files(&[FileInput { path: virtual_path.into(), source: fixture(fixture_name) }])
}

#[test]
fn fixture_l001_unwrap_fails() {
    // crates/sql joined the scope so the fuzzer front end stays panic-free.
    for path in ["crates/net/src/fixture.rs", "crates/sql/src/fixture.rs"] {
        let r = lint_as(path, "l001_unwrap.rs");
        let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L001").collect();
        assert_eq!(hits.len(), 2, "{path}: {:?}", r.violations);
        // The #[cfg(test)] unwrap must not be counted.
        assert!(hits.iter().all(|v| v.line < 8));
    }
}

#[test]
fn fixture_l002_hasher_fails() {
    let r = lint_as("crates/opt/src/fixture.rs", "l002_hasher.rs");
    assert!(
        r.violations.iter().any(|v| v.rule == "L002"),
        "{:?}",
        r.violations
    );
}

#[test]
fn fixture_l003_hashmap_fails() {
    let r = lint_as("crates/exec/src/fixture.rs", "l003_hashmap.rs");
    assert!(
        r.violations.iter().filter(|v| v.rule == "L003").count() >= 2,
        "{:?}",
        r.violations
    );
}

#[test]
fn fixture_l004_wallclock_fails() {
    let r = lint_as("crates/net/src/fixture.rs", "l004_wallclock.rs");
    let kinds: Vec<_> = r
        .violations
        .iter()
        .filter(|v| v.rule == "L004")
        .map(|v| v.message.clone())
        .collect();
    assert_eq!(kinds.len(), 3, "{kinds:?}");
}

#[test]
fn fixture_l005_inversion_fails() {
    let r = lint_as("crates/core/src/fixture.rs", "l005_inversion.rs");
    let cycles: Vec<_> = r.violations.iter().filter(|v| v.rule == "L005").collect();
    assert_eq!(cycles.len(), 1, "{:?}", r.violations);
    assert!(cycles[0].message.contains("registry"));
    assert!(cycles[0].message.contains("journal"));
}

#[test]
fn fixture_l006_buffer_counter_fails() {
    let r = lint_as("crates/exec/src/fixture.rs", "l006_buffer.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L006").collect();
    // Field declaration fires once; the `fetch_add` line fires both the
    // ident and the atomic-update patterns.
    assert_eq!(hits.len(), 3, "{:?}", r.violations);
    // The pragma-covered `load` is suppressed, with its justification kept.
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert!(r.suppressed[0].justification.contains("fixture"));
}

#[test]
fn fixture_l007_wallclock_fails() {
    let r = lint_as("crates/common/src/obs/fixture.rs", "l007_wallclock.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L007").collect();
    // `Instant::now()` + `SystemTime::now()` fire; the pragma-covered
    // epoch anchor is suppressed and the #[cfg(test)] read is exempt.
    assert_eq!(hits.len(), 2, "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert!(r.suppressed[0].justification.contains("fixture"));

    // The exec operators file is the other traced surface in scope.
    let r = lint_as("crates/exec/src/operators.rs", "l007_wallclock.rs");
    assert_eq!(r.violations.iter().filter(|v| v.rule == "L007").count(), 2);
}

#[test]
fn fixture_l008_per_row_datum_fails() {
    let r = lint_as("crates/exec/src/kernels.rs", "l008_datum.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L008").collect();
    // `datum_at` + `to_rows` fire; the pragma-covered `from_rows` is
    // suppressed and the #[cfg(test)] `to_rows` is exempt.
    assert_eq!(hits.len(), 2, "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    assert!(r.suppressed[0].justification.contains("fixture"));
}

#[test]
fn fixture_l005_closure_inversion_fails() {
    // The closure's `beta` acquisition replays at the `pool_run` call site
    // (where `alpha` is held), closing the cycle against `direct`.
    let r = lint_as("crates/core/src/fixture.rs", "l005_closure.rs");
    let cycles: Vec<_> = r.violations.iter().filter(|v| v.rule == "L005").collect();
    assert_eq!(cycles.len(), 1, "{:?}", r.violations);
    assert!(cycles[0].message.contains("alpha"));
    assert!(cycles[0].message.contains("beta"));
}

#[test]
fn fixture_l009_retry_fails_red_then_green() {
    let r = lint_as("crates/common/src/fixture.rs", "l009_retry.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L009").collect();
    // Classifier exhaustiveness: is_retryable misses Parse+Internal, and
    // is_failover_retryable both hides behind a wildcard and misses them.
    assert!(hits.iter().any(|v| v.message.contains("wildcard")), "{hits:?}");
    assert!(
        hits.iter().any(|v| v.message.contains("Parse") && v.message.contains("Internal")),
        "{hits:?}"
    );
    // Retry-loop soundness: one unguarded loop; the guarded one is clean.
    assert_eq!(
        hits.iter().filter(|v| v.message.contains("retry loop")).count(),
        1,
        "{hits:?}"
    );
    // Green half: the pragma'd copy of the same loop is suppressed — and
    // stripping the pragma makes it fail again.
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);
    let stripped = fixture("l009_retry.rs").replace("// ic-lint: allow(L009)", "//");
    let r = lint_files(&[FileInput { path: "crates/common/src/fixture.rs".into(), source: stripped }]);
    assert_eq!(
        r.violations.iter().filter(|v| v.message.contains("retry loop")).count(),
        2,
        "{:?}",
        r.violations
    );
}

#[test]
fn fixture_l010_indexing_fails_red_then_green() {
    let r = lint_as("crates/net/src/fixture.rs", "l010_indexing.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L010").collect();
    // v[0], v.get(1).unwrap(), sel[0] — the accessor-based fn is clean.
    assert_eq!(hits.len(), 3, "{:?}", r.violations);
    assert!(hits.iter().any(|v| v.message.contains(".get().unwrap()")));
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);

    let stripped = fixture("l010_indexing.rs").replace("// ic-lint: allow(L010)", "//");
    let r = lint_files(&[FileInput { path: "crates/net/src/fixture.rs".into(), source: stripped }]);
    assert_eq!(r.violations.iter().filter(|v| v.rule == "L010").count(), 4);

    // The same raw reads inside the kernel plane are legal per se but must
    // consult validity — which `leak` never does.
    let r = lint_as("crates/exec/src/eval.rs", "l010_indexing.rs");
    assert!(
        r.violations.iter().any(|v| v.rule == "L010" && v.message.contains("validity")),
        "{:?}",
        r.violations
    );
}

#[test]
fn fixture_l011_obsnames_fails_red_then_green() {
    let doc = ObsDoc::parse(
        "OBSERVABILITY.md",
        "Registered: `exec.fixture.documented` and `exec.fixture.orphan`.",
    );
    let input = |source: String| {
        vec![FileInput { path: "crates/exec/src/fixture.rs".into(), source }]
    };
    let opts = LintOptions { obs_doc: Some(doc.clone()), check_obs_unused: true };
    let r = lint_files_with(&input(fixture("l011_obsnames.rs")), &opts);
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L011").collect();
    // Forward: `exec.fixture.rogue` is unregistered. Reverse: the registry
    // entry `exec.fixture.orphan` is never emitted (reported at the doc).
    assert_eq!(hits.len(), 2, "{:?}", r.violations);
    assert!(hits.iter().any(|v| v.message.contains("rogue")));
    assert!(hits.iter().any(|v| v.message.contains("orphan") && v.path == "OBSERVABILITY.md"));
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);

    let stripped = fixture("l011_obsnames.rs").replace("// ic-lint: allow(L011)", "//");
    let r = lint_files_with(&input(stripped), &opts);
    assert_eq!(r.violations.iter().filter(|v| v.rule == "L011").count(), 3);
}

#[test]
fn fixture_l012_alloc_fails_red_then_green() {
    let r = lint_as("crates/exec/src/kernels.rs", "l012_alloc.rs");
    let hits: Vec<_> = r.violations.iter().filter(|v| v.rule == "L012").collect();
    // vec! + format! in the loop; the with_capacity outside loops is fine.
    assert_eq!(hits.len(), 2, "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1, "{:?}", r.suppressed);

    let stripped = fixture("l012_alloc.rs").replace("// ic-lint: allow(L012)", "//");
    let r = lint_files(&[FileInput { path: "crates/exec/src/kernels.rs".into(), source: stripped }]);
    assert_eq!(r.violations.iter().filter(|v| v.rule == "L012").count(), 3);
}

#[test]
fn fixture_reachability_flags_cold_file_helper() {
    // Together: the helper in crates/plan (out of every path scope) is
    // reachable from the kernel loop, so its unwrap, datum_at and format!
    // all fire — each message naming the reachability route.
    let both = vec![
        FileInput {
            path: "crates/exec/src/kernels.rs".into(),
            source: fixture("reach_kernel.rs"),
        },
        FileInput { path: "crates/plan/src/helper.rs".into(), source: fixture("reach_helper.rs") },
    ];
    let r = lint_files(&both);
    let at_helper: Vec<_> =
        r.violations.iter().filter(|v| v.path.contains("helper.rs")).collect();
    assert!(
        at_helper.iter().any(|v| v.rule == "L001" && v.message.contains("reachable")),
        "{:?}",
        r.violations
    );
    assert!(
        at_helper.iter().any(|v| v.rule == "L008" && v.message.contains("reachable")),
        "{:?}",
        r.violations
    );
    assert!(
        at_helper.iter().any(|v| v.rule == "L012" && v.message.contains("per-element")),
        "{:?}",
        r.violations
    );

    // Alone, the helper sits outside every scope: nothing fires.
    let r = lint_files(&[FileInput {
        path: "crates/plan/src/helper.rs".into(),
        source: fixture("reach_helper.rs"),
    }]);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

#[test]
fn fixtures_out_of_scope_paths_pass() {
    // The same sources are fine where the rules don't apply.
    for (path, fixture_name) in [
        ("crates/plan/src/fixture.rs", "l001_unwrap.rs"),
        ("crates/net/src/fixture.rs", "l003_hashmap.rs"),
        ("crates/plan/src/fixture.rs", "l004_wallclock.rs"),
        ("crates/net/tests/fixture.rs", "l005_inversion.rs"),
        ("crates/core/src/fixture.rs", "l006_buffer.rs"),
        ("crates/exec/tests/fixture.rs", "l006_buffer.rs"),
        ("crates/common/src/lease.rs", "l007_wallclock.rs"),
        ("crates/common/tests/fixture.rs", "l007_wallclock.rs"),
        ("crates/exec/src/operators.rs", "l008_datum.rs"),
        ("crates/exec/tests/fixture.rs", "l008_datum.rs"),
    ] {
        let r = lint_as(path, fixture_name);
        assert!(
            r.violations.is_empty(),
            "{path} + {fixture_name}: {:?}",
            r.violations
        );
    }
}

#[test]
fn pragma_suppresses_with_justification() {
    let src = "// ic-lint: allow(L004) because the delay simulator is the wall-clock boundary\n\
               fn f() { std::thread::sleep(d); }";
    let r = lint_files(&[FileInput { path: "crates/net/src/x.rs".into(), source: src.into() }]);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.suppressed.len(), 1);
}

#[test]
fn workspace_is_clean() {
    // The invariant the CI step enforces, also enforced under `cargo test`.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_workspace(&root).expect("workspace scan");
    assert!(report.files_scanned > 20, "suspiciously few files scanned");
    let msgs: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
    assert!(msgs.is_empty(), "workspace lint violations:\n{}", msgs.join("\n"));
}
