//! SQL tokenizer.

use ic_common::{IcError, IcResult};

/// A lexical token. Identifiers and keywords are folded to lowercase.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Number(String),
    String(String),
    /// Punctuation and operators.
    Sym(&'static str),
    Eof,
}

impl Token {
    /// The keyword/identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Token::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Tokenize an SQL string.
pub fn lex(input: &str) -> IcResult<Vec<Token>> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                // line comment
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\'' => {
                // string literal with '' escaping
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(IcError::Parse("unterminated string literal".into())),
                    }
                }
                out.push(Token::String(s));
            }
            c if c.is_ascii_digit()
                || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '.') {
                    i += 1;
                }
                out.push(Token::Number(chars[start..i].iter().collect()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$')
                {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                out.push(Token::Ident(word.to_ascii_lowercase()));
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym("<="));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    out.push(Token::Sym("<>"));
                    i += 2;
                } else {
                    out.push(Token::Sym("<"));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Sym(">="));
                    i += 2;
                } else {
                    out.push(Token::Sym(">"));
                    i += 1;
                }
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::Sym("<>"));
                i += 2;
            }
            '=' | '+' | '-' | '*' | '/' | '(' | ')' | ',' | '.' | ';' => {
                let sym = match c {
                    '=' => "=",
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    '.' => ".",
                    ';' => ";",
                    _ => unreachable!(),
                };
                out.push(Token::Sym(sym));
                i += 1;
            }
            other => return Err(IcError::Parse(format!("unexpected character '{other}'"))),
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let t = lex("SELECT a.b, 1.5 FROM t WHERE x <> 'it''s'").unwrap();
        assert_eq!(t[0], Token::Ident("select".into()));
        assert_eq!(t[1], Token::Ident("a".into()));
        assert_eq!(t[2], Token::Sym("."));
        assert_eq!(t[5], Token::Number("1.5".into()));
        assert!(t.contains(&Token::Sym("<>")));
        assert!(t.contains(&Token::String("it's".into())));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn comments_skipped() {
        let t = lex("select 1 -- comment here\n, 2").unwrap();
        assert_eq!(t.len(), 5); // select, 1, ',', 2, eof
    }

    #[test]
    fn comparison_operators() {
        let t = lex("a <= b >= c != d < e > f = g").unwrap();
        let syms: Vec<_> = t
            .iter()
            .filter_map(|t| match t {
                Token::Sym(s) => Some(*s),
                _ => None,
            })
            .collect();
        assert_eq!(syms, vec!["<=", ">=", "<>", "<", ">", "="]);
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("a ? b").is_err());
    }

    #[test]
    fn leading_dot_number() {
        let t = lex("x > .07").unwrap();
        assert!(t.contains(&Token::Number(".07".into())));
    }
}
