//! The SQL frontend — the Apache Calcite parser/validator substrate.
//!
//! An SQL string flows through the [`lexer`], the recursive-descent
//! [`parser`] (producing the [`ast`]), and the [`binder`], which resolves
//! names against the catalog, type-checks, constant-folds date/interval
//! arithmetic, decorrelates subqueries into (semi/anti/inner) joins marked
//! `from_correlate`, and emits a [`ic_plan::LogicalPlan`] — the query tree
//! of §3.1 (Figure 2).
//!
//! Supported surface: the full TPC-H (minus Q15's VIEWs, which raise
//! [`ic_common::IcError::Unsupported`] exactly as the paper reports, and
//! Q20's doubly-nested correlated pattern) and Star Schema Benchmark
//! dialects, plus CREATE TABLE / CREATE INDEX DDL.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;
pub mod unparse;

pub use binder::{bind_dml, bind_statement, data_type_of, Bound};
pub use parser::parse_sql;
pub use unparse::unparse;
