//! AST → SQL text renderer.
//!
//! The inverse of the [`crate::parser`]: renders a [`Query`] back to a SQL
//! string that re-parses to an equivalent AST. The fuzzer builds query ASTs
//! directly, then renders them here both to feed the cluster front end
//! (which only accepts text) and to persist minimized reproducers as
//! self-contained fixtures. Rendering is deliberately parenthesis-heavy:
//! every binary expression is wrapped, so operator precedence can never
//! make render(parse(s)) diverge from s's tree.
//!
//! Restrictions mirror the parser's grammar: join trees must be left-deep
//! (the grammar has no parenthesized table refs), and negative integer
//! literals render as `(0 - n)` exactly as the parser desugars unary minus.

use crate::ast::*;
use ic_common::BinOp;
use std::fmt::Write as _;

/// Render a query to SQL text.
pub fn unparse(q: &Query) -> String {
    let mut s = String::new();
    write_query(&mut s, q);
    s
}

fn write_query(out: &mut String, q: &Query) {
    out.push_str("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    for (i, item) in q.select.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                let _ = write!(out, "{t}.*");
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr);
                if let Some(a) = alias {
                    let _ = write!(out, " AS {a}");
                }
            }
        }
    }
    out.push_str(" FROM ");
    for (i, tr) in q.from.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write_table_ref(out, tr);
    }
    if let Some(w) = &q.where_clause {
        out.push_str(" WHERE ");
        write_expr(out, w);
    }
    if !q.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        for (i, g) in q.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, g);
        }
    }
    if let Some(h) = &q.having {
        out.push_str(" HAVING ");
        write_expr(out, h);
    }
    if !q.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        for (i, k) in q.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, &k.expr);
            if k.desc {
                out.push_str(" DESC");
            }
        }
    }
    if let Some(n) = q.limit {
        let _ = write!(out, " LIMIT {n}");
    }
}

fn write_table_ref(out: &mut String, tr: &TableRef) {
    match tr {
        TableRef::Table { name, alias } => {
            out.push_str(name);
            if let Some(a) = alias {
                let _ = write!(out, " AS {a}");
            }
        }
        TableRef::Derived { query, alias } => {
            out.push('(');
            write_query(out, query);
            let _ = write!(out, ") AS {alias}");
        }
        TableRef::Join { left, right, kind, on } => {
            // The grammar is left-deep only: a Join on the right side has
            // no textual form (no parenthesized table refs).
            write_table_ref(out, left);
            out.push_str(match kind {
                AstJoinKind::Inner => " INNER JOIN ",
                AstJoinKind::Left => " LEFT JOIN ",
            });
            write_table_ref(out, right);
            out.push_str(" ON ");
            write_expr(out, on);
        }
    }
}

fn op_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Eq => "=",
        BinOp::Ne => "<>",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "AND",
        BinOp::Or => "OR",
    }
}

fn write_expr(out: &mut String, e: &AstExpr) {
    match e {
        AstExpr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                let _ = write!(out, "{q}.");
            }
            out.push_str(name);
        }
        AstExpr::IntLit(v) => {
            // The parser has no negative literals; it desugars unary
            // minus to `0 - x`, so render the same shape.
            if *v < 0 {
                let _ = write!(out, "(0 - {})", v.unsigned_abs());
            } else {
                let _ = write!(out, "{v}");
            }
        }
        AstExpr::NumberLit(v) => {
            if *v < 0.0 {
                let _ = write!(out, "(0 - {})", fmt_f64(-*v));
            } else {
                out.push_str(&fmt_f64(*v));
            }
        }
        AstExpr::StringLit(s) => {
            let _ = write!(out, "'{}'", s.replace('\'', "''"));
        }
        AstExpr::DateLit(s) => {
            let _ = write!(out, "DATE '{s}'");
        }
        AstExpr::IntervalLit { value, unit } => {
            let u = match unit {
                IntervalUnit::Day => "DAY",
                IntervalUnit::Month => "MONTH",
                IntervalUnit::Year => "YEAR",
            };
            let _ = write!(out, "INTERVAL '{value}' {u}");
        }
        AstExpr::Binary { op, left, right } => {
            out.push('(');
            write_expr(out, left);
            let _ = write!(out, " {} ", op_text(*op));
            write_expr(out, right);
            out.push(')');
        }
        AstExpr::Not(inner) => {
            out.push_str("NOT (");
            write_expr(out, inner);
            out.push(')');
        }
        AstExpr::IsNull { expr, negated } => {
            write_operand(out, expr);
            out.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
        }
        AstExpr::Like { expr, pattern, negated } => {
            write_operand(out, expr);
            out.push_str(if *negated { " NOT LIKE " } else { " LIKE " });
            write_operand(out, pattern);
        }
        AstExpr::Between { expr, low, high, negated } => {
            write_operand(out, expr);
            out.push_str(if *negated { " NOT BETWEEN " } else { " BETWEEN " });
            write_operand(out, low);
            out.push_str(" AND ");
            write_operand(out, high);
        }
        AstExpr::InList { expr, list, negated } => {
            write_operand(out, expr);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, item);
            }
            out.push(')');
        }
        AstExpr::InSubquery { expr, query, negated } => {
            write_operand(out, expr);
            out.push_str(if *negated { " NOT IN (" } else { " IN (" });
            write_query(out, query);
            out.push(')');
        }
        AstExpr::Exists { query, negated } => {
            out.push_str(if *negated { "NOT EXISTS (" } else { "EXISTS (" });
            write_query(out, query);
            out.push(')');
        }
        AstExpr::ScalarSubquery(query) => {
            out.push('(');
            write_query(out, query);
            out.push(')');
        }
        AstExpr::Case { whens, else_ } => {
            out.push_str("CASE");
            for (cond, val) in whens {
                out.push_str(" WHEN ");
                write_expr(out, cond);
                out.push_str(" THEN ");
                write_expr(out, val);
            }
            if let Some(e) = else_ {
                out.push_str(" ELSE ");
                write_expr(out, e);
            }
            out.push_str(" END");
        }
        AstExpr::AggCall { func, distinct, arg } => {
            let _ = write!(out, "{func}(");
            match arg {
                None => out.push('*'),
                Some(a) => {
                    if *distinct {
                        out.push_str("DISTINCT ");
                    }
                    write_expr(out, a);
                }
            }
            out.push(')');
        }
        AstExpr::Extract { field, expr } => {
            let _ = write!(out, "EXTRACT({field} FROM ");
            write_expr(out, expr);
            out.push(')');
        }
        AstExpr::Substring { expr, start, len } => {
            out.push_str("SUBSTRING(");
            write_expr(out, expr);
            out.push_str(" FROM ");
            write_expr(out, start);
            out.push_str(" FOR ");
            write_expr(out, len);
            out.push(')');
        }
        AstExpr::Func { name, args } => {
            let _ = write!(out, "{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, a);
            }
            out.push(')');
        }
    }
}

/// Render an operand of a LIKE/BETWEEN/IN/IS predicate. These positions
/// parse at `parse_additive` level, so comparison/logical operands and
/// nested predicates must be parenthesized to survive the round trip;
/// parens around everything except simple atoms keeps the rule local.
fn write_operand(out: &mut String, e: &AstExpr) {
    match e {
        AstExpr::Column { .. }
        | AstExpr::IntLit(_)
        | AstExpr::NumberLit(_)
        | AstExpr::StringLit(_)
        | AstExpr::DateLit(_)
        | AstExpr::IntervalLit { .. }
        | AstExpr::Binary { .. }
        | AstExpr::ScalarSubquery(_)
        | AstExpr::Case { .. }
        | AstExpr::AggCall { .. }
        | AstExpr::Extract { .. }
        | AstExpr::Substring { .. }
        | AstExpr::Func { .. } => write_expr(out, e),
        other => {
            out.push('(');
            write_expr(out, other);
            out.push(')');
        }
    }
}

/// Shortest-round-trip float text that still lexes as a float (keeps a
/// decimal point so `2.0` does not come back as the integer `2`).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        // Scientific/inf/NaN never round-trip through the lexer; the
        // generator only produces finite plain decimals.
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;

    /// render → parse → render must be a fixed point.
    fn round_trip(sql: &str) {
        let Statement::Query(q1) = parse_sql(sql).unwrap() else {
            panic!("not a query: {sql}");
        };
        let r1 = unparse(&q1);
        let Statement::Query(q2) = parse_sql(&r1).unwrap_or_else(|e| {
            panic!("rendered SQL failed to parse: {e}\n  input: {sql}\n  rendered: {r1}")
        }) else {
            panic!("rendered to non-query: {r1}");
        };
        assert_eq!(q1, q2, "AST changed across round trip:\n  input: {sql}\n  rendered: {r1}");
        assert_eq!(r1, unparse(&q2));
    }

    #[test]
    fn round_trips() {
        round_trip("SELECT * FROM lineitem");
        round_trip("SELECT a.b AS x, 1 + 2 * 3, count(*) FROM t AS a WHERE x <> 'it''s'");
        round_trip(
            "SELECT DISTINCT t0.a FROM t AS t0 LEFT JOIN u AS t1 ON t0.k = t1.k \
             WHERE t0.a BETWEEN 1 AND 10 AND t0.b NOT LIKE '%x%' ORDER BY 1 DESC LIMIT 5",
        );
        round_trip(
            "SELECT sum(x) AS s FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k) \
             GROUP BY g HAVING count(*) > 2",
        );
        round_trip(
            "SELECT CASE WHEN a IS NULL THEN 0 ELSE a END FROM t \
             WHERE b IN (1, 2, 3) AND c IN (SELECT d FROM u) AND NOT (e = 1)",
        );
        round_trip("SELECT EXTRACT(year FROM d), SUBSTRING(s FROM 1 FOR 3) FROM t");
        round_trip(
            "SELECT o_orderdate + INTERVAL '3' MONTH FROM orders \
             WHERE o_orderdate < DATE '1995-01-01'",
        );
        round_trip("SELECT (SELECT max(x) FROM u) FROM t WHERE a > 1.5 AND b = 2.0");
        round_trip("SELECT x FROM (SELECT a AS x FROM t WHERE a > 0) AS d WHERE x < 10");
        round_trip("SELECT -x, 0 - 5 FROM t");
    }

    #[test]
    fn negative_and_float_literals() {
        let Statement::Query(q) = parse_sql("SELECT 2.0, x FROM t").unwrap() else {
            unreachable!()
        };
        assert_eq!(unparse(&q), "SELECT 2.0, x FROM t");
        let neg = Query {
            select: vec![SelectItem::Expr { expr: AstExpr::IntLit(-5), alias: None }],
            ..q
        };
        round_trip(&unparse(&neg));
    }
}
