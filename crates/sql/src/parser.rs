//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{lex, Token};
use ic_common::{BinOp, IcError, IcResult};

/// Keywords that terminate an implicit alias.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "having", "order", "limit", "fetch", "on", "join",
    "inner", "left", "right", "outer", "cross", "and", "or", "not", "as", "union", "by", "asc",
    "desc", "in", "exists", "between", "like", "is", "case", "when", "then", "else", "end",
];

/// Parse one SQL statement.
pub fn parse_sql(input: &str) -> IcResult<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    p.eat_sym(";");
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().ident() == Some(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> IcResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(IcError::Parse(format!("expected '{kw}', found {:?}", self.peek())))
        }
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        if matches!(self.peek(), Token::Sym(s) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: &str) -> IcResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(IcError::Parse(format!("expected '{sym}', found {:?}", self.peek())))
        }
    }

    fn expect_eof(&self) -> IcResult<()> {
        if matches!(self.peek(), Token::Eof) {
            Ok(())
        } else {
            Err(IcError::Parse(format!("trailing tokens at {:?}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> IcResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            other => Err(IcError::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    // ---------------------------------------------------------- statements

    fn parse_statement(&mut self) -> IcResult<Statement> {
        if self.eat_kw("explain") {
            if self.eat_kw("analyze") {
                return Ok(Statement::ExplainAnalyze(self.parse_query()?));
            }
            return Ok(Statement::Explain(self.parse_query()?));
        }
        if self.peek().ident() == Some("create") {
            self.pos += 1;
            if self.eat_kw("table") {
                return self.parse_create_table();
            }
            if self.eat_kw("index") {
                return self.parse_create_index();
            }
            if self.peek().ident() == Some("view") {
                // Faithful to the paper: Ignite+Calcite does not support
                // SQL views (TPC-H Q15).
                return Err(IcError::Unsupported("SQL VIEWs are not supported".into()));
            }
            return Err(IcError::Parse(format!("unsupported CREATE {:?}", self.peek())));
        }
        if self.eat_kw("insert") {
            return self.parse_insert();
        }
        if self.eat_kw("update") {
            return self.parse_update();
        }
        if self.eat_kw("delete") {
            return self.parse_delete();
        }
        Ok(Statement::Query(self.parse_query()?))
    }

    fn parse_insert(&mut self) -> IcResult<Statement> {
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.eat_sym("(") {
            loop {
                columns.push(self.expect_ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
        }
        if self.peek().ident() == Some("select") {
            return Err(IcError::Unsupported("INSERT … SELECT is not supported".into()));
        }
        self.expect_kw("values")?;
        let mut values = Vec::new();
        loop {
            self.expect_sym("(")?;
            let mut row = vec![self.parse_expr()?];
            while self.eat_sym(",") {
                row.push(self.parse_expr()?);
            }
            self.expect_sym(")")?;
            values.push(row);
            if !self.eat_sym(",") {
                break;
            }
        }
        Ok(Statement::Insert(InsertStmt { table, columns, values }))
    }

    fn parse_update(&mut self) -> IcResult<Statement> {
        let table = self.expect_ident()?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.expect_ident()?;
            self.expect_sym("=")?;
            sets.push((col, self.parse_expr()?));
            if !self.eat_sym(",") {
                break;
            }
        }
        let predicate = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update(UpdateStmt { table, sets, predicate }))
    }

    fn parse_delete(&mut self) -> IcResult<Statement> {
        self.expect_kw("from")?;
        let table = self.expect_ident()?;
        let predicate = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Delete(DeleteStmt { table, predicate }))
    }

    fn parse_create_table(&mut self) -> IcResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        let mut primary_key = Vec::new();
        loop {
            if self.eat_kw("primary") {
                self.expect_kw("key")?;
                self.expect_sym("(")?;
                loop {
                    primary_key.push(self.expect_ident()?);
                    if !self.eat_sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
            } else {
                let col = self.expect_ident()?;
                let ty = self.expect_ident()?;
                // swallow type parameters like DECIMAL(15,2), VARCHAR(25)
                if self.eat_sym("(") {
                    while !self.eat_sym(")") {
                        self.pos += 1;
                    }
                }
                // swallow NOT NULL
                if self.eat_kw("not") {
                    self.expect_kw("null")?;
                }
                columns.push((col, ty));
            }
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        let mut partition_by = None;
        let mut replicated = false;
        if self.eat_kw("partition") {
            self.expect_kw("by")?;
            self.expect_kw("hash")?;
            self.expect_sym("(")?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.expect_ident()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            partition_by = Some(cols);
        } else if self.eat_kw("replicated") {
            replicated = true;
        }
        Ok(Statement::CreateTable(CreateTable { name, columns, primary_key, partition_by, replicated }))
    }

    fn parse_create_index(&mut self) -> IcResult<Statement> {
        let name = self.expect_ident()?;
        self.expect_kw("on")?;
        let table = self.expect_ident()?;
        self.expect_sym("(")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.expect_ident()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_sym(")")?;
        Ok(Statement::CreateIndex(CreateIndex { name, table, columns }))
    }

    // --------------------------------------------------------------- query

    pub fn parse_query(&mut self) -> IcResult<Query> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut select = Vec::new();
        loop {
            select.push(self.parse_select_item()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            from.push(self.parse_table_ref()?);
            if !self.eat_sym(",") {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.parse_expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { expr, desc });
                if !self.eat_sym(",") {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_kw("limit") {
            limit = Some(self.parse_u64()?);
        } else if self.eat_kw("fetch") {
            // FETCH FIRST n ROWS ONLY
            let _ = self.eat_kw("first") || self.eat_kw("next");
            let n = self.parse_u64()?;
            let _ = self.eat_kw("rows") || self.eat_kw("row");
            self.expect_kw("only")?;
            limit = Some(n);
        }
        Ok(Query { distinct, select, from, where_clause, group_by, having, order_by, limit })
    }

    fn parse_u64(&mut self) -> IcResult<u64> {
        match self.next() {
            Token::Number(n) => n
                .parse::<u64>()
                .map_err(|_| IcError::Parse(format!("invalid integer '{n}'"))),
            other => Err(IcError::Parse(format!("expected integer, found {other:?}"))),
        }
    }

    fn parse_select_item(&mut self) -> IcResult<SelectItem> {
        if self.eat_sym("*") {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* ?
        if let Token::Ident(q) = self.peek().clone() {
            if matches!(self.peek2(), Token::Sym(".")) && matches!(self.tokens.get(self.pos + 2), Some(Token::Sym("*"))) {
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(name) = self.peek() {
            if RESERVED.contains(&name.as_str()) {
                None
            } else {
                let name = name.clone();
                self.pos += 1;
                Some(name)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> IcResult<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.peek().ident() == Some("join") {
                self.pos += 1;
                AstJoinKind::Inner
            } else if self.peek().ident() == Some("inner")
                && self.peek2().ident() == Some("join")
            {
                self.pos += 2;
                AstJoinKind::Inner
            } else if self.peek().ident() == Some("left") {
                self.pos += 1;
                self.eat_kw("outer");
                self.expect_kw("join")?;
                AstJoinKind::Left
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            self.expect_kw("on")?;
            let on = self.parse_expr()?;
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> IcResult<TableRef> {
        if self.eat_sym("(") {
            let query = self.parse_query()?;
            self.expect_sym(")")?;
            self.eat_kw("as");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Derived { query: Box::new(query), alias });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else if let Token::Ident(a) = self.peek() {
            if RESERVED.contains(&a.as_str()) {
                None
            } else {
                let a = a.clone();
                self.pos += 1;
                Some(a)
            }
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // --------------------------------------------------------- expressions

    pub fn parse_expr(&mut self) -> IcResult<AstExpr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> IcResult<AstExpr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = AstExpr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> IcResult<AstExpr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = AstExpr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> IcResult<AstExpr> {
        if self.peek().ident() == Some("not") && self.peek2().ident() != Some("exists") {
            self.pos += 1;
            let inner = self.parse_not()?;
            return Ok(AstExpr::Not(Box::new(inner)));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> IcResult<AstExpr> {
        // EXISTS / NOT EXISTS
        if self.peek().ident() == Some("exists") {
            self.pos += 1;
            self.expect_sym("(")?;
            let q = self.parse_query()?;
            self.expect_sym(")")?;
            return Ok(AstExpr::Exists { query: Box::new(q), negated: false });
        }
        if self.peek().ident() == Some("not") && self.peek2().ident() == Some("exists") {
            self.pos += 2;
            self.expect_sym("(")?;
            let q = self.parse_query()?;
            self.expect_sym(")")?;
            return Ok(AstExpr::Exists { query: Box::new(q), negated: true });
        }

        let left = self.parse_additive()?;

        // comparison operators
        for (sym, op) in [
            ("=", BinOp::Eq),
            ("<>", BinOp::Ne),
            ("<=", BinOp::Le),
            (">=", BinOp::Ge),
            ("<", BinOp::Lt),
            (">", BinOp::Gt),
        ] {
            if self.eat_sym(sym) {
                let right = self.parse_additive()?;
                return Ok(AstExpr::binary(op, left, right));
            }
        }

        let negated = if self.peek().ident() == Some("not")
            && matches!(self.peek2().ident(), Some("like") | Some("in") | Some("between"))
        {
            self.pos += 1;
            true
        } else {
            false
        };

        if self.eat_kw("like") {
            let pattern = self.parse_additive()?;
            return Ok(AstExpr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_sym("(")?;
            if self.peek().ident() == Some("select") {
                let q = self.parse_query()?;
                self.expect_sym(")")?;
                return Ok(AstExpr::InSubquery { expr: Box::new(left), query: Box::new(q), negated });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            return Ok(AstExpr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull { expr: Box::new(left), negated });
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> IcResult<AstExpr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            if self.eat_sym("+") {
                let right = self.parse_multiplicative()?;
                left = AstExpr::binary(BinOp::Add, left, right);
            } else if self.eat_sym("-") {
                let right = self.parse_multiplicative()?;
                left = AstExpr::binary(BinOp::Sub, left, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_multiplicative(&mut self) -> IcResult<AstExpr> {
        let mut left = self.parse_unary()?;
        loop {
            if self.eat_sym("*") {
                let right = self.parse_unary()?;
                left = AstExpr::binary(BinOp::Mul, left, right);
            } else if self.eat_sym("/") {
                let right = self.parse_unary()?;
                left = AstExpr::binary(BinOp::Div, left, right);
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> IcResult<AstExpr> {
        if self.eat_sym("-") {
            let inner = self.parse_unary()?;
            return Ok(AstExpr::binary(BinOp::Sub, AstExpr::IntLit(0), inner));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> IcResult<AstExpr> {
        match self.next() {
            Token::Number(n) => {
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(AstExpr::NumberLit)
                        .map_err(|_| IcError::Parse(format!("bad number '{n}'")))
                } else {
                    n.parse::<i64>()
                        .map(AstExpr::IntLit)
                        .map_err(|_| IcError::Parse(format!("bad integer '{n}'")))
                }
            }
            Token::String(s) => Ok(AstExpr::StringLit(s)),
            Token::Sym("(") => {
                if self.peek().ident() == Some("select") {
                    let q = self.parse_query()?;
                    self.expect_sym(")")?;
                    return Ok(AstExpr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Token::Ident(word) => self.parse_ident_expr(word),
            other => Err(IcError::Parse(format!("unexpected token {other:?}"))),
        }
    }

    fn parse_ident_expr(&mut self, word: String) -> IcResult<AstExpr> {
        match word.as_str() {
            "date" => {
                // DATE 'yyyy-mm-dd'
                if let Token::String(s) = self.peek().clone() {
                    self.pos += 1;
                    return Ok(AstExpr::DateLit(s));
                }
                Err(IcError::Parse("expected string after DATE".into()))
            }
            "interval" => {
                let Token::String(v) = self.next() else {
                    return Err(IcError::Parse("expected string after INTERVAL".into()));
                };
                let value: i64 = v
                    .trim()
                    .parse()
                    .map_err(|_| IcError::Parse(format!("bad interval value '{v}'")))?;
                let unit_word = self.expect_ident()?;
                let unit = match unit_word.as_str() {
                    "day" | "days" => IntervalUnit::Day,
                    "month" | "months" => IntervalUnit::Month,
                    "year" | "years" => IntervalUnit::Year,
                    other => return Err(IcError::Parse(format!("unsupported interval unit '{other}'"))),
                };
                Ok(AstExpr::IntervalLit { value, unit })
            }
            "case" => {
                let mut whens = Vec::new();
                while self.eat_kw("when") {
                    let cond = self.parse_expr()?;
                    self.expect_kw("then")?;
                    let val = self.parse_expr()?;
                    whens.push((cond, val));
                }
                let else_ = if self.eat_kw("else") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                Ok(AstExpr::Case { whens, else_ })
            }
            "extract" => {
                self.expect_sym("(")?;
                let field = self.expect_ident()?;
                self.expect_kw("from")?;
                let e = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(AstExpr::Extract { field, expr: Box::new(e) })
            }
            "substring" | "substr" => {
                self.expect_sym("(")?;
                let e = self.parse_expr()?;
                let (start, len) = if self.eat_kw("from") {
                    let s = self.parse_expr()?;
                    self.expect_kw("for")?;
                    let l = self.parse_expr()?;
                    (s, l)
                } else {
                    self.expect_sym(",")?;
                    let s = self.parse_expr()?;
                    self.expect_sym(",")?;
                    let l = self.parse_expr()?;
                    (s, l)
                };
                self.expect_sym(")")?;
                Ok(AstExpr::Substring { expr: Box::new(e), start: Box::new(start), len: Box::new(len) })
            }
            "count" | "sum" | "avg" | "min" | "max" if matches!(self.peek(), Token::Sym("(")) => {
                self.pos += 1; // (
                if self.eat_sym("*") {
                    self.expect_sym(")")?;
                    return Ok(AstExpr::AggCall { func: word, distinct: false, arg: None });
                }
                let distinct = self.eat_kw("distinct");
                let arg = self.parse_expr()?;
                self.expect_sym(")")?;
                Ok(AstExpr::AggCall { func: word, distinct, arg: Some(Box::new(arg)) })
            }
            _ => {
                // function call or column reference
                if matches!(self.peek(), Token::Sym("(")) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.eat_sym(")") {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_sym(",") {
                                break;
                            }
                        }
                        self.expect_sym(")")?;
                    }
                    return Ok(AstExpr::Func { name: word, args });
                }
                if self.eat_sym(".") {
                    let name = self.expect_ident()?;
                    return Ok(AstExpr::Column { qualifier: Some(word), name });
                }
                Ok(AstExpr::Column { qualifier: None, name: word })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(sql: &str) -> Query {
        match parse_sql(sql).unwrap() {
            Statement::Query(q) => q,
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let query = q("SELECT a, b AS x FROM t WHERE a = 1 ORDER BY x DESC LIMIT 10");
        assert_eq!(query.select.len(), 2);
        assert_eq!(query.from.len(), 1);
        assert!(query.where_clause.is_some());
        assert_eq!(query.order_by.len(), 1);
        assert!(query.order_by[0].desc);
        assert_eq!(query.limit, Some(10));
    }

    #[test]
    fn joins_and_aliases() {
        let query = q("SELECT * FROM employee e INNER JOIN sales s ON e.id = s.emp_id LEFT OUTER JOIN t2 ON t2.k = s.k");
        let TableRef::Join { kind, left, .. } = &query.from[0] else { panic!() };
        assert_eq!(*kind, AstJoinKind::Left);
        assert!(matches!(**left, TableRef::Join { kind: AstJoinKind::Inner, .. }));
    }

    #[test]
    fn comma_joins_tpch_style() {
        let query = q("SELECT x FROM a, b, c WHERE a.k = b.k AND b.j = c.j");
        assert_eq!(query.from.len(), 3);
    }

    #[test]
    fn date_interval_arithmetic() {
        let query = q("SELECT 1 FROM t WHERE d < date '1995-01-01' + interval '3' month");
        let Some(AstExpr::Binary { right, .. }) = query.where_clause else { panic!() };
        let AstExpr::Binary { op: BinOp::Add, left, right } = *right else { panic!() };
        assert!(matches!(*left, AstExpr::DateLit(_)));
        assert!(matches!(*right, AstExpr::IntervalLit { value: 3, unit: IntervalUnit::Month }));
    }

    #[test]
    fn aggregates_and_groups() {
        let query = q("SELECT k, sum(v * (1 - d)) AS rev, count(*) FROM t GROUP BY k HAVING sum(v) > 5");
        assert_eq!(query.group_by.len(), 1);
        assert!(query.having.is_some());
        let SelectItem::Expr { expr, alias } = &query.select[1] else { panic!() };
        assert!(expr.contains_aggregate());
        assert_eq!(alias.as_deref(), Some("rev"));
    }

    #[test]
    fn subqueries() {
        let query = q("SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k) AND a IN (SELECT b FROM v) AND c > (SELECT avg(x) FROM w)");
        let w = query.where_clause.unwrap();
        // and(and(exists, in), cmp(scalar))
        let AstExpr::Binary { op: BinOp::And, left, right } = w else { panic!() };
        let AstExpr::Binary { op: BinOp::And, left: l2, right: r2 } = *left else { panic!() };
        assert!(matches!(*l2, AstExpr::Exists { negated: false, .. }));
        assert!(matches!(*r2, AstExpr::InSubquery { negated: false, .. }));
        let AstExpr::Binary { right: scalar, .. } = *right else { panic!() };
        assert!(matches!(*scalar, AstExpr::ScalarSubquery(_)));
    }

    #[test]
    fn not_exists_and_not_in() {
        let query = q("SELECT a FROM t WHERE NOT EXISTS (SELECT 1 FROM u) AND a NOT IN (1, 2)");
        let AstExpr::Binary { left, right, .. } = query.where_clause.unwrap() else { panic!() };
        assert!(matches!(*left, AstExpr::Exists { negated: true, .. }));
        assert!(matches!(*right, AstExpr::InList { negated: true, .. }));
    }

    #[test]
    fn case_when() {
        let query = q("SELECT sum(case when p like 'PROMO%' then e else 0 end) FROM l");
        let SelectItem::Expr { expr, .. } = &query.select[0] else { panic!() };
        let AstExpr::AggCall { arg: Some(arg), .. } = expr else { panic!() };
        assert!(matches!(**arg, AstExpr::Case { .. }));
    }

    #[test]
    fn derived_table() {
        let query = q("SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1");
        assert!(matches!(&query.from[0], TableRef::Derived { alias, .. } if alias == "sub"));
    }

    #[test]
    fn extract_and_substring() {
        let query = q("SELECT extract(year from d), substring(p from 1 for 2) FROM t");
        assert!(matches!(
            &query.select[0],
            SelectItem::Expr { expr: AstExpr::Extract { .. }, .. }
        ));
        assert!(matches!(
            &query.select[1],
            SelectItem::Expr { expr: AstExpr::Substring { .. }, .. }
        ));
    }

    #[test]
    fn ddl() {
        let Statement::CreateTable(ct) = parse_sql(
            "CREATE TABLE part (p_partkey BIGINT NOT NULL, p_name VARCHAR(55), PRIMARY KEY (p_partkey)) PARTITION BY HASH (p_partkey)",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(ct.columns.len(), 2);
        assert_eq!(ct.primary_key, vec!["p_partkey"]);
        assert_eq!(ct.partition_by, Some(vec!["p_partkey".to_string()]));
        let Statement::CreateIndex(ci) = parse_sql("CREATE INDEX ix ON part (p_name)").unwrap()
        else {
            panic!()
        };
        assert_eq!(ci.columns, vec!["p_name"]);
    }

    #[test]
    fn views_unsupported_like_the_paper() {
        let err = parse_sql("CREATE VIEW v AS SELECT 1 FROM t").unwrap_err();
        assert!(matches!(err, IcError::Unsupported(_)));
    }

    #[test]
    fn fetch_first_syntax() {
        let query = q("SELECT a FROM t ORDER BY a FETCH FIRST 100 ROWS ONLY");
        assert_eq!(query.limit, Some(100));
    }

    #[test]
    fn unary_minus_and_decimal() {
        let query = q("SELECT a FROM t WHERE d BETWEEN 0.05 - 0.01 AND -0.07 + 1");
        assert!(matches!(
            query.where_clause,
            Some(AstExpr::Between { negated: false, .. })
        ));
    }

    #[test]
    fn insert_multi_row_with_column_list() {
        let Statement::Insert(i) =
            parse_sql("INSERT INTO t (k, v) VALUES (1, 10), (2, 2 + 20)").unwrap()
        else {
            panic!("expected insert")
        };
        assert_eq!(i.table, "t");
        assert_eq!(i.columns, vec!["k", "v"]);
        assert_eq!(i.values.len(), 2);
        assert_eq!(i.values[1].len(), 2);
    }

    #[test]
    fn insert_without_column_list_means_schema_order() {
        let Statement::Insert(i) = parse_sql("INSERT INTO t VALUES (1, 'x')").unwrap() else {
            panic!("expected insert")
        };
        assert!(i.columns.is_empty());
        assert_eq!(i.values.len(), 1);
    }

    #[test]
    fn insert_select_unsupported() {
        let err = parse_sql("INSERT INTO t (k) SELECT a FROM s").unwrap_err();
        assert!(matches!(err, IcError::Unsupported(_)), "{err:?}");
    }

    #[test]
    fn update_multi_set_with_predicate() {
        let Statement::Update(u) =
            parse_sql("UPDATE t SET v = v + 1, w = 'x' WHERE k < 10").unwrap()
        else {
            panic!("expected update")
        };
        assert_eq!(u.table, "t");
        assert_eq!(u.sets.len(), 2);
        assert_eq!(u.sets[0].0, "v");
        assert!(u.predicate.is_some());
    }

    #[test]
    fn delete_with_and_without_predicate() {
        let Statement::Delete(d) = parse_sql("DELETE FROM t WHERE k = 3").unwrap() else {
            panic!("expected delete")
        };
        assert_eq!(d.table, "t");
        assert!(d.predicate.is_some());
        let Statement::Delete(d) = parse_sql("DELETE FROM t").unwrap() else {
            panic!("expected delete")
        };
        assert!(d.predicate.is_none());
    }
}
