//! Name resolution, type checking, constant folding and subquery
//! decorrelation: AST → [`LogicalPlan`].
//!
//! Subqueries are unnested at bind time, the way Calcite's
//! `SubQueryRemoveRule`/decorrelator does, producing joins flagged
//! `from_correlate` (§4.1's FILTER_CORRELATE rule operates on exactly
//! these):
//!
//! * `EXISTS` / `NOT EXISTS` → semi / anti join on the correlated
//!   predicates (mixed non-equi conditions stay in the join condition, as
//!   in TPC-H Q21).
//! * `x IN (SELECT …)` / `NOT IN` → semi / anti join on the output column.
//! * Uncorrelated scalar subqueries → a single-row aggregate cross-joined
//!   into the plan (TPC-H Q11, Q22).
//! * Correlated scalar aggregates (`op (SELECT agg(x) … WHERE a = outer.b)`)
//!   → aggregate the subquery grouped by its correlation keys and join on
//!   them (TPC-H Q2, Q17).
//!
//! Doubly-nested correlated patterns (TPC-H Q20) are rejected with
//! [`IcError::Unsupported`] — the paper likewise excludes Q20 due to an
//! unresolved planner bug.

use crate::ast::*;
use ic_common::agg::AggFunc;
use ic_common::{dates, BinOp, DataType, Datum, Expr, FuncKind, IcError, IcResult, Row};
use ic_plan::dml::BoundDml;
use ic_plan::ops::{AggCall, JoinKind, LogicalPlan, RelOp, SortKey};
use ic_storage::{Catalog, TableDef, TableDistribution, WriteOp};
use std::sync::Arc;

/// A bound query: the logical plan plus its output column names.
#[derive(Debug, Clone)]
pub struct Bound {
    pub plan: Arc<LogicalPlan>,
    pub output_names: Vec<String>,
}

/// Bind a parsed query against the catalog.
pub fn bind_statement(query: &Query, catalog: &Catalog) -> IcResult<Bound> {
    Binder { catalog }.bind_query(query)
}

/// Bind a parsed DML statement: resolve the table, type-check values and
/// assignments, and produce the typed write op the optimizer routes.
pub fn bind_dml(stmt: &Statement, catalog: &Catalog) -> IcResult<BoundDml> {
    let b = Binder { catalog };
    match stmt {
        Statement::Insert(i) => b.bind_insert(i),
        Statement::Update(u) => b.bind_update(u),
        Statement::Delete(d) => b.bind_delete(d),
        _ => Err(IcError::Internal("bind_dml called on a non-DML statement".into())),
    }
}

/// Name scope: flattened `(qualifier, column)` pairs whose positions are
/// plan output positions.
#[derive(Debug, Clone, Default)]
struct Scope {
    cols: Vec<(Option<String>, String)>,
    /// Columns at or past this index shadow earlier ones on ambiguity —
    /// subquery (inner) scopes shadow the outer scope, per SQL rules.
    prefer_from: usize,
}

impl Scope {
    fn len(&self) -> usize {
        self.cols.len()
    }

    fn add_table(&mut self, qualifier: &str, names: &[String]) {
        for n in names {
            self.cols.push((Some(qualifier.to_ascii_lowercase()), n.to_ascii_lowercase()));
        }
    }

    fn concat(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols, prefer_from: 0 }
    }

    /// Mark columns from `boundary` onward as the inner (shadowing) scope.
    fn with_preference(mut self, boundary: usize) -> Scope {
        self.prefer_from = boundary;
        self
    }

    fn resolve(&self, qualifier: &Option<String>, name: &str) -> IcResult<usize> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.as_ref().map(|q| q.to_ascii_lowercase());
        let matches: Vec<usize> = self
            .cols
            .iter()
            .enumerate()
            .filter(|(_, (q, n))| {
                *n == name && qualifier.as_ref().is_none_or(|want| q.as_deref() == Some(want))
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(IcError::Bind(format!(
                "unknown column '{}{name}'",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => {
                // Inner scope shadows outer (correlated subqueries).
                let inner: Vec<usize> =
                    matches.iter().copied().filter(|&i| i >= self.prefer_from).collect();
                if inner.len() == 1 {
                    Ok(inner[0])
                } else {
                    Err(IcError::Bind(format!("ambiguous column '{name}'")))
                }
            }
        }
    }
}

struct Binder<'a> {
    catalog: &'a Catalog,
}

/// One pending aggregate call discovered in the select/having lists.
#[derive(Debug, Clone, PartialEq)]
struct PendingAgg {
    func: AggFunc,
    arg: Option<Expr>,
}

impl<'a> Binder<'a> {
    // ------------------------------------------------------------- queries

    fn bind_query(&self, q: &Query) -> IcResult<Bound> {
        // FROM
        let (mut plan, scope) = self.bind_from(&q.from)?;

        // WHERE (subqueries decorrelated here; plan may gain appended
        // scalar-subquery columns, tracked in `placeholders`).
        let mut placeholders: Vec<usize> = Vec::new();
        if let Some(w) = &q.where_clause {
            plan = self.bind_predicate(plan, &scope, w, &mut placeholders)?;
        }

        let has_aggs = !q.group_by.is_empty()
            || q.select.iter().any(|item| match item {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                _ => false,
            })
            || q.having.as_ref().is_some_and(|h| h.contains_aggregate());

        let (mut plan, mut output_names, out_arity) = if has_aggs {
            let (p, names) = self.bind_aggregate_query(plan, &scope, q, &placeholders)?;
            let arity = p.schema.arity();
            (p, names, arity)
        } else {
            if q.having.is_some() {
                return Err(IcError::Bind("HAVING without aggregation".into()));
            }
            // Plain projection.
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for item in &q.select {
                match item {
                    SelectItem::Wildcard => {
                        for (i, (_, n)) in scope.cols.iter().enumerate() {
                            exprs.push(Expr::col(i));
                            names.push(n.clone());
                        }
                    }
                    SelectItem::QualifiedWildcard(qual) => {
                        let qual = qual.to_ascii_lowercase();
                        for (i, (q2, n)) in scope.cols.iter().enumerate() {
                            if q2.as_deref() == Some(qual.as_str()) {
                                exprs.push(Expr::col(i));
                                names.push(n.clone());
                            }
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let bound = self.bind_scalar(expr, &scope, &placeholders, scope.len())?;
                        names.push(alias.clone().unwrap_or_else(|| default_name(expr, names.len())));
                        exprs.push(bound);
                    }
                }
            }
            let arity = exprs.len();
            let output = names.clone();
            let projected = LogicalPlan::new(RelOp::Project { input: plan, exprs, names })?;
            (projected, output, arity)
        };

        // DISTINCT → group by all output columns.
        if q.distinct {
            plan = LogicalPlan::new(RelOp::Aggregate {
                input: plan,
                group: (0..out_arity).collect(),
                aggs: vec![],
            })?;
        }

        // ORDER BY over the output columns (name, alias or ordinal).
        if !q.order_by.is_empty() {
            let mut keys = Vec::new();
            for k in &q.order_by {
                let col = self.resolve_order_key(&k.expr, &output_names)?;
                keys.push(SortKey { col, desc: k.desc });
            }
            plan = LogicalPlan::new(RelOp::Sort { input: plan, keys })?;
        }

        if let Some(limit) = q.limit {
            plan = LogicalPlan::new(RelOp::Limit { input: plan, fetch: Some(limit), offset: 0 })?;
        }

        // Deduplicate output names for downstream schema sanity.
        dedup_names(&mut output_names);
        Ok(Bound { plan, output_names })
    }

    fn resolve_order_key(&self, expr: &AstExpr, output_names: &[String]) -> IcResult<usize> {
        match expr {
            AstExpr::IntLit(n) => {
                let idx = *n as usize;
                if idx >= 1 && idx <= output_names.len() {
                    Ok(idx - 1)
                } else {
                    Err(IcError::Bind(format!("ORDER BY position {n} out of range")))
                }
            }
            AstExpr::Column { name, .. } => output_names
                .iter()
                .position(|n| n.eq_ignore_ascii_case(name))
                .ok_or_else(|| {
                    IcError::Bind(format!("ORDER BY column '{name}' is not in the select list"))
                }),
            other => Err(IcError::Unsupported(format!(
                "ORDER BY expressions must be output columns or ordinals, got {other:?}"
            ))),
        }
    }

    // ---------------------------------------------------------------- FROM

    fn bind_from(&self, from: &[TableRef]) -> IcResult<(Arc<LogicalPlan>, Scope)> {
        let mut acc: Option<(Arc<LogicalPlan>, Scope)> = None;
        for tr in from {
            let (plan, scope) = self.bind_table_ref(tr)?;
            acc = Some(match acc {
                None => (plan, scope),
                Some((lp, ls)) => {
                    let joined = LogicalPlan::new(RelOp::Join {
                        left: lp,
                        right: plan,
                        kind: JoinKind::Inner,
                        on: Expr::lit(true),
                        from_correlate: false,
                    })?;
                    (joined, ls.concat(&scope))
                }
            });
        }
        acc.ok_or_else(|| IcError::Bind("empty FROM clause".into()))
    }

    fn bind_table_ref(&self, tr: &TableRef) -> IcResult<(Arc<LogicalPlan>, Scope)> {
        match tr {
            TableRef::Table { name, alias } => {
                let id = self
                    .catalog
                    .table_by_name(name)
                    .ok_or_else(|| IcError::Bind(format!("unknown table '{name}'")))?;
                let def = self.catalog.table_def(id).ok_or_else(|| {
                    IcError::Internal(format!(
                        "catalog resolved '{name}' to {id:?} but has no definition for it"
                    ))
                })?;
                let plan = LogicalPlan::new(RelOp::Scan {
                    table: id,
                    name: name.clone(),
                    schema: def.schema.clone(),
                })?;
                let mut scope = Scope::default();
                let names: Vec<String> =
                    def.schema.fields().iter().map(|f| f.name.clone()).collect();
                scope.add_table(alias.as_deref().unwrap_or(name), &names);
                Ok((plan, scope))
            }
            TableRef::Derived { query, alias } => {
                let bound = self.bind_query(query)?;
                let mut scope = Scope::default();
                scope.add_table(alias, &bound.output_names);
                Ok((bound.plan, scope))
            }
            TableRef::Join { left, right, kind, on } => {
                let (lp, ls) = self.bind_table_ref(left)?;
                let (rp, rs) = self.bind_table_ref(right)?;
                let scope = ls.concat(&rs);
                let cond = self.bind_scalar(on, &scope, &[], scope.len())?;
                let kind = match kind {
                    AstJoinKind::Inner => JoinKind::Inner,
                    AstJoinKind::Left => JoinKind::Left,
                };
                let plan = LogicalPlan::new(RelOp::Join {
                    left: lp,
                    right: rp,
                    kind,
                    on: cond,
                    from_correlate: false,
                })?;
                Ok((plan, scope))
            }
        }
    }

    // --------------------------------------------------- WHERE / subqueries

    /// Bind a predicate, decorrelating any subqueries into joins on `plan`.
    /// `placeholders` records plan columns holding scalar-subquery values.
    fn bind_predicate(
        &self,
        mut plan: Arc<LogicalPlan>,
        scope: &Scope,
        pred: &AstExpr,
        placeholders: &mut Vec<usize>,
    ) -> IcResult<Arc<LogicalPlan>> {
        let conjuncts = split_ast_conjuncts(pred);
        let mut residual: Vec<AstExpr> = Vec::new();
        // First pass: subquery-bearing conjuncts become joins.
        for conj in conjuncts {
            match &conj {
                AstExpr::Exists { query, negated } => {
                    plan = self.bind_exists(plan, scope, query, *negated)?;
                }
                AstExpr::InSubquery { expr, query, negated } => {
                    plan = self.bind_in_subquery(plan, scope, expr, query, *negated)?;
                }
                other if ast_contains_scalar_subquery(other) => {
                    let (rewritten, queries) = extract_scalar_subqueries((*other).clone());
                    for q in queries {
                        let (new_plan, col) = self.attach_scalar_subquery(plan, scope, &q)?;
                        plan = new_plan;
                        placeholders.push(col);
                    }
                    residual.push(rewritten);
                }
                other => residual.push((*other).clone()),
            }
        }
        // Second pass: the remaining conjuncts form one filter.
        if !residual.is_empty() {
            let plan_arity = plan.schema.arity();
            let bound: Vec<Expr> = residual
                .iter()
                .map(|c| self.bind_scalar(c, scope, placeholders, plan_arity))
                .collect::<IcResult<_>>()?;
            plan = LogicalPlan::new(RelOp::Filter {
                input: plan,
                predicate: Expr::conjunction(bound),
            })?;
        }
        Ok(plan)
    }

    /// EXISTS / NOT EXISTS → semi / anti join, with correlated conditions
    /// as the join predicate.
    fn bind_exists(
        &self,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
        query: &Query,
        negated: bool,
    ) -> IcResult<Arc<LogicalPlan>> {
        let (mut splan, sscope) = self.bind_from(&query.from)?;
        let combined = scope.concat(&sscope).with_preference(scope.len());
        let outer_len = scope.len();
        let plan_arity = plan.schema.arity();
        let mut join_conds: Vec<Expr> = Vec::new();
        let mut local: Vec<Expr> = Vec::new();
        if let Some(w) = &query.where_clause {
            for conj in split_ast_conjuncts(w) {
                if ast_contains_subquery(conj) {
                    return Err(IcError::Unsupported(
                        "nested subqueries inside EXISTS are not supported".into(),
                    ));
                }
                let bound = self.bind_scalar(conj, &combined, &[], combined.len())?;
                let cols = bound.columns();
                if !cols.is_empty() && cols.iter().all(|&c| c >= outer_len) {
                    local.push(bound.shift(outer_len, -(outer_len as isize)));
                } else {
                    // Correlated (or constant) condition: re-base subquery
                    // columns onto the join space (left = full plan arity).
                    let delta = plan_arity as isize - outer_len as isize;
                    join_conds.push(bound.shift(outer_len, delta));
                }
            }
        }
        if !local.is_empty() {
            splan = LogicalPlan::new(RelOp::Filter {
                input: splan,
                predicate: Expr::conjunction(local),
            })?;
        }
        LogicalPlan::new(RelOp::Join {
            left: plan,
            right: splan,
            kind: if negated { JoinKind::Anti } else { JoinKind::Semi },
            on: Expr::conjunction(join_conds),
            from_correlate: true,
        })
    }

    /// `x IN (SELECT …)` / `NOT IN` → semi / anti join on the subquery's
    /// (single) output column. The subquery must be uncorrelated.
    fn bind_in_subquery(
        &self,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
        expr: &AstExpr,
        query: &Query,
        negated: bool,
    ) -> IcResult<Arc<LogicalPlan>> {
        let sub = self.bind_query(query).map_err(|e| match e {
            IcError::Bind(m) => IcError::Unsupported(format!(
                "correlated IN subqueries are not supported ({m})"
            )),
            other => other,
        })?;
        if sub.plan.schema.arity() != 1 {
            return Err(IcError::Bind("IN subquery must produce one column".into()));
        }
        let plan_arity = plan.schema.arity();
        let probe = self.bind_scalar(expr, scope, &[], plan_arity)?;
        let on = Expr::eq(probe, Expr::col(plan_arity));
        LogicalPlan::new(RelOp::Join {
            left: plan,
            right: sub.plan,
            kind: if negated { JoinKind::Anti } else { JoinKind::Semi },
            on,
            from_correlate: true,
        })
    }

    /// Attach a scalar subquery's value to the plan as an extra column.
    fn attach_scalar_subquery(
        &self,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
        query: &Query,
    ) -> IcResult<(Arc<LogicalPlan>, usize)> {
        // Uncorrelated first: a standalone single-row aggregate.
        match self.bind_query(query) {
            Ok(sub) => {
                let guaranteed_single_row = query.group_by.is_empty()
                    && query.select.iter().all(|s| match s {
                        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                        _ => false,
                    });
                if !guaranteed_single_row {
                    return Err(IcError::Unsupported(
                        "scalar subqueries must be single-row aggregates".into(),
                    ));
                }
                let col = plan.schema.arity();
                let joined = LogicalPlan::new(RelOp::Join {
                    left: plan,
                    right: sub.plan,
                    kind: JoinKind::Inner,
                    on: Expr::lit(true),
                    from_correlate: true,
                })?;
                Ok((joined, col))
            }
            Err(IcError::Bind(_)) => self.attach_correlated_scalar(plan, scope, query),
            Err(other) => Err(other),
        }
    }

    /// Correlated scalar aggregate (TPC-H Q2/Q17): aggregate the subquery
    /// grouped by its correlation keys, then join on them.
    fn attach_correlated_scalar(
        &self,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
        query: &Query,
    ) -> IcResult<(Arc<LogicalPlan>, usize)> {
        // Shape check: single aggregate select item, no grouping.
        if !query.group_by.is_empty() || query.select.len() != 1 {
            return Err(IcError::Unsupported(
                "unsupported correlated scalar subquery shape".into(),
            ));
        }
        let SelectItem::Expr { expr: AstExpr::AggCall { func, distinct, arg }, .. } =
            &query.select[0]
        else {
            return Err(IcError::Unsupported(
                "correlated scalar subqueries must select a single aggregate".into(),
            ));
        };
        let (mut splan, sscope) = self.bind_from(&query.from)?;
        let combined = scope.concat(&sscope).with_preference(scope.len());
        let outer_len = scope.len();
        let mut local: Vec<Expr> = Vec::new();
        let mut corr_pairs: Vec<(usize, usize)> = Vec::new(); // (outer, sub)
        if let Some(w) = &query.where_clause {
            for conj in split_ast_conjuncts(w) {
                if ast_contains_subquery(conj) {
                    return Err(IcError::Unsupported(
                        "doubly-nested correlated subqueries are not supported".into(),
                    ));
                }
                let bound = self.bind_scalar(conj, &combined, &[], combined.len())?;
                let cols = bound.columns();
                if !cols.is_empty() && cols.iter().all(|&c| c >= outer_len) {
                    local.push(bound.shift(outer_len, -(outer_len as isize)));
                } else if let Expr::Binary { op: BinOp::Eq, left, right } = &bound {
                    // Must be outer_col = sub_col.
                    match (left.as_ref(), right.as_ref()) {
                        (Expr::Col(a), Expr::Col(b)) if *a < outer_len && *b >= outer_len => {
                            corr_pairs.push((*a, *b - outer_len));
                        }
                        (Expr::Col(b), Expr::Col(a)) if *a < outer_len && *b >= outer_len => {
                            corr_pairs.push((*a, *b - outer_len));
                        }
                        _ => {
                            return Err(IcError::Unsupported(
                                "correlated scalar subqueries support equi-correlation only".into(),
                            ))
                        }
                    }
                } else {
                    return Err(IcError::Unsupported(
                        "correlated scalar subqueries support equi-correlation only".into(),
                    ));
                }
            }
        }
        if corr_pairs.is_empty() {
            return Err(IcError::Bind("expected correlated predicates".into()));
        }
        if !local.is_empty() {
            splan = LogicalPlan::new(RelOp::Filter {
                input: splan,
                predicate: Expr::conjunction(local),
            })?;
        }
        // Aggregate grouped by the subquery-side correlation keys.
        let agg_func = agg_func_of(func, *distinct)?;
        let agg_arg = arg
            .as_ref()
            .map(|a| {
                self.bind_scalar(a, &combined, &[], combined.len())
                    .map(|e| e.shift(outer_len, -(outer_len as isize)))
            })
            .transpose()?;
        let mut group: Vec<usize> = corr_pairs.iter().map(|&(_, s)| s).collect();
        group.dedup();
        let agg = LogicalPlan::new(RelOp::Aggregate {
            input: splan,
            group: group.clone(),
            aggs: vec![AggCall { func: agg_func, arg: agg_arg, name: "sq_agg".into() }],
        })?;
        // Join plan ⋈ agg on the correlation keys.
        let plan_arity = plan.schema.arity();
        let on = Expr::conjunction(
            corr_pairs
                .iter()
                .map(|&(outer, sub)| {
                    let gpos = group.iter().position(|&g| g == sub).ok_or_else(|| {
                        IcError::Internal(format!(
                            "correlation key {sub} missing from subquery group {group:?}"
                        ))
                    })?;
                    Ok(Expr::eq(Expr::col(outer), Expr::col(plan_arity + gpos)))
                })
                .collect::<IcResult<Vec<_>>>()?,
        );
        let value_col = plan_arity + group.len();
        let joined = LogicalPlan::new(RelOp::Join {
            left: plan,
            right: agg,
            kind: JoinKind::Inner,
            on,
            from_correlate: true,
        })?;
        Ok((joined, value_col))
    }

    // ---------------------------------------------------------- aggregates

    fn bind_aggregate_query(
        &self,
        plan: Arc<LogicalPlan>,
        scope: &Scope,
        q: &Query,
        placeholders: &[usize],
    ) -> IcResult<(Arc<LogicalPlan>, Vec<String>)> {
        let plan_arity = plan.schema.arity();
        // Bind group expressions; non-column expressions get a pre-project.
        let group_bound: Vec<Expr> = q
            .group_by
            .iter()
            .map(|g| self.bind_scalar(g, scope, placeholders, plan_arity))
            .collect::<IcResult<_>>()?;
        let (agg_input, group_cols, group_bound) = if group_bound
            .iter()
            .all(|g| matches!(g, Expr::Col(_)))
        {
            let cols: Vec<usize> = group_bound
                .iter()
                .map(|g| match g {
                    Expr::Col(c) => *c,
                    _ => unreachable!(),
                })
                .collect();
            (plan, cols, group_bound)
        } else {
            // Pre-project: identity columns plus the computed group exprs.
            let mut exprs: Vec<Expr> = (0..plan_arity).map(Expr::col).collect();
            let mut names: Vec<String> =
                plan.schema.fields().iter().map(|f| f.name.clone()).collect();
            let mut cols = Vec::new();
            for g in &group_bound {
                match g {
                    Expr::Col(c) => cols.push(*c),
                    other => {
                        cols.push(exprs.len());
                        names.push(format!("gexpr{}", exprs.len()));
                        exprs.push(other.clone());
                    }
                }
            }
            dedup_names(&mut names);
            let projected = LogicalPlan::new(RelOp::Project { input: plan, exprs, names })?;
            (projected, cols, group_bound)
        };

        // Collect aggregate calls from SELECT and HAVING.
        let mut pending: Vec<PendingAgg> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut post_agg_items: Vec<AstExpr> = Vec::new();
        for item in &q.select {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(IcError::Bind("SELECT * is invalid with GROUP BY".into()));
            };
            names.push(alias.clone().unwrap_or_else(|| default_name(expr, names.len())));
            post_agg_items.push(expr.clone());
        }

        // HAVING may carry scalar subqueries (TPC-H Q11); attach them to
        // the post-aggregate plan below, after the aggregate is built.
        let group_len = group_cols.len();
        let agg_input_arity = agg_input.schema.arity();
        for item in &post_agg_items {
            self.collect_aggs(item, scope, placeholders, agg_input_arity, &mut pending)?;
        }
        let mut having_ast = q.having.clone();
        let mut having_queries: Vec<Query> = Vec::new();
        if let Some(h) = &having_ast {
            if ast_contains_scalar_subquery(h) {
                let (rewritten, queries) = extract_scalar_subqueries(h.clone());
                having_ast = Some(rewritten);
                having_queries = queries;
            }
        }
        if let Some(h) = &having_ast {
            self.collect_aggs(h, scope, placeholders, agg_input_arity, &mut pending)?;
        }

        let aggs: Vec<AggCall> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| AggCall { func: p.func, arg: p.arg.clone(), name: format!("agg{i}") })
            .collect();
        let mut agg_plan = LogicalPlan::new(RelOp::Aggregate {
            input: agg_input,
            group: group_cols.clone(),
            aggs,
        })?;

        // Attach HAVING's scalar subqueries to the aggregated plan.
        let mut having_placeholder_cols: Vec<usize> = Vec::new();
        for sq in &having_queries {
            let (p, col) = self.attach_scalar_subquery(agg_plan, &Scope::default(), sq)?;
            agg_plan = p;
            having_placeholder_cols.push(col);
        }

        // HAVING filter over the aggregate output.
        if let Some(h) = &having_ast {
            let bound = self.bind_post_agg(
                h,
                scope,
                placeholders,
                &group_bound,
                &group_cols,
                &pending,
                group_len,
                &having_placeholder_cols,
            )?;
            agg_plan = LogicalPlan::new(RelOp::Filter { input: agg_plan, predicate: bound })?;
        }

        // Final projection computing the select expressions.
        let mut exprs = Vec::new();
        for item in &post_agg_items {
            exprs.push(self.bind_post_agg(
                item,
                scope,
                placeholders,
                &group_bound,
                &group_cols,
                &pending,
                group_len,
                &having_placeholder_cols,
            )?);
        }
        dedup_names(&mut names);
        let plan = LogicalPlan::new(RelOp::Project {
            input: agg_plan,
            exprs,
            names: names.clone(),
        })?;
        Ok((plan, names))
    }

    /// Register every aggregate call appearing in `expr`.
    fn collect_aggs(
        &self,
        expr: &AstExpr,
        scope: &Scope,
        placeholders: &[usize],
        input_arity: usize,
        pending: &mut Vec<PendingAgg>,
    ) -> IcResult<()> {
        if let AstExpr::AggCall { func, distinct, arg } = expr {
            let func = agg_func_of(func, *distinct)?;
            let arg = arg
                .as_ref()
                .map(|a| self.bind_scalar(a, scope, placeholders, input_arity))
                .transpose()?;
            let p = PendingAgg { func, arg };
            if !pending.contains(&p) {
                pending.push(p);
            }
            return Ok(());
        }
        for child in ast_children(expr) {
            self.collect_aggs(child, scope, placeholders, input_arity, pending)?;
        }
        Ok(())
    }

    /// Bind an expression over the aggregate's output: group expressions
    /// map to group columns, aggregate calls to aggregate columns,
    /// `$having` placeholders to attached scalar-subquery columns.
    #[allow(clippy::too_many_arguments)]
    fn bind_post_agg(
        &self,
        expr: &AstExpr,
        scope: &Scope,
        placeholders: &[usize],
        group_bound: &[Expr],
        group_cols: &[usize],
        pending: &[PendingAgg],
        group_len: usize,
        having_cols: &[usize],
    ) -> IcResult<Expr> {
        // Aggregate call?
        if let AstExpr::AggCall { func, distinct, arg } = expr {
            let func = agg_func_of(func, *distinct)?;
            let arg = arg
                .as_ref()
                .map(|a| self.bind_scalar(a, scope, placeholders, usize::MAX))
                .transpose()?;
            let p = PendingAgg { func, arg };
            let idx = pending
                .iter()
                .position(|x| *x == p)
                .ok_or_else(|| IcError::Bind("aggregate not collected".into()))?;
            return Ok(Expr::col(group_len + idx));
        }
        // $sq placeholder from a HAVING scalar subquery?
        if let AstExpr::Column { qualifier: Some(q), name } = expr {
            if q == "$sq" {
                let idx: usize = name
                    .parse()
                    .map_err(|_| IcError::Bind("bad scalar placeholder".into()))?;
                if let Some(&col) = having_cols.get(idx) {
                    return Ok(Expr::col(col));
                }
            }
        }
        // Whole expression equals a group expression?
        if !expr.contains_aggregate() {
            if let Ok(bound) = self.bind_scalar(expr, scope, placeholders, usize::MAX) {
                // Simple column matching a group input column.
                if let Expr::Col(c) = &bound {
                    if let Some(pos) = group_cols.iter().position(|g| g == c) {
                        return Ok(Expr::col(pos));
                    }
                }
                if let Some(pos) = group_bound.iter().position(|g| *g == bound) {
                    return Ok(Expr::col(pos));
                }
                // Constant expressions pass through.
                if bound.columns().is_empty() {
                    return Ok(bound);
                }
            }
        }
        // Otherwise recurse structurally.
        let rebind = |e: &AstExpr| {
            self.bind_post_agg(e, scope, placeholders, group_bound, group_cols, pending, group_len, having_cols)
        };
        match expr {
            AstExpr::Binary { op, left, right } => {
                Ok(Expr::binary(*op, rebind(left)?, rebind(right)?))
            }
            AstExpr::Not(e) => Ok(Expr::Not(Box::new(rebind(e)?))),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(rebind(expr)?),
                negated: *negated,
            }),
            AstExpr::Case { whens, else_ } => Ok(Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, v)| Ok((rebind(c)?, rebind(v)?)))
                    .collect::<IcResult<_>>()?,
                else_: Box::new(match else_ {
                    Some(e) => rebind(e)?,
                    None => Expr::Lit(Datum::Null),
                }),
            }),
            other => Err(IcError::Bind(format!(
                "expression must appear in GROUP BY or be an aggregate: {other:?}"
            ))),
        }
    }

    // ------------------------------------------------------------- DML

    fn resolve_dml_table(&self, name: &str) -> IcResult<TableDef> {
        let id = self
            .catalog
            .table_by_name(name)
            .ok_or_else(|| IcError::Bind(format!("unknown table '{name}'")))?;
        self.catalog.table_def(id).ok_or_else(|| {
            IcError::Internal(format!("catalog resolved '{name}' to {id:?} without a definition"))
        })
    }

    fn dml_scope(def: &TableDef) -> Scope {
        let names: Vec<String> = def.schema.fields().iter().map(|f| f.name.clone()).collect();
        let mut scope = Scope::default();
        scope.add_table(&def.name, &names);
        scope
    }

    /// Coerce a constant to a column's declared type (the small lattice
    /// INSERT needs: exact match, NULL anywhere, INT widening to DOUBLE,
    /// and date-shaped strings into DATE columns).
    fn coerce_to_column(value: Datum, want: DataType, col: &str) -> IcResult<Datum> {
        if value.is_null() {
            return Ok(value);
        }
        match (value.data_type(), want) {
            (Some(have), want) if have == want => Ok(value),
            (Some(DataType::Int), DataType::Double) => match value {
                Datum::Int(i) => Ok(Datum::Double(i as f64)),
                _ => Err(IcError::Internal("int datum of non-int shape".into())),
            },
            (Some(DataType::Str), DataType::Date) => match &value {
                Datum::Str(s) => dates::parse_date(s).map(Datum::Date).ok_or_else(|| {
                    IcError::Bind(format!("cannot coerce '{s}' to DATE for column '{col}'"))
                }),
                _ => Err(IcError::Internal("str datum of non-str shape".into())),
            },
            (have, want) => Err(IcError::Bind(format!(
                "type mismatch for column '{col}': expected {want:?}, got {have:?}"
            ))),
        }
    }

    fn bind_insert(&self, stmt: &InsertStmt) -> IcResult<BoundDml> {
        let def = self.resolve_dml_table(&stmt.table)?;
        let arity = def.schema.arity();
        let positions: Vec<usize> = if stmt.columns.is_empty() {
            (0..arity).collect()
        } else {
            let mut seen = vec![false; arity];
            let mut pos = Vec::with_capacity(stmt.columns.len());
            for c in &stmt.columns {
                let i = def.schema.index_of(c).ok_or_else(|| {
                    IcError::Bind(format!("unknown column '{c}' in table '{}'", def.name))
                })?;
                if seen[i] {
                    return Err(IcError::Bind(format!("column '{c}' listed twice in INSERT")));
                }
                seen[i] = true;
                pos.push(i);
            }
            pos
        };
        // Key columns must be supplied: a row without its distribution key
        // cannot be routed, and a row without its primary key cannot be
        // upserted deterministically.
        for &k in &def.primary_key {
            if !positions.contains(&k) {
                return Err(IcError::Bind(format!(
                    "INSERT must supply primary-key column '{}'",
                    def.schema.field(k).name
                )));
            }
        }
        let empty_scope = Scope::default();
        let mut rows = Vec::with_capacity(stmt.values.len());
        for tuple in &stmt.values {
            if tuple.len() != positions.len() {
                return Err(IcError::Bind(format!(
                    "INSERT expects {} value(s) per row, got {}",
                    positions.len(),
                    tuple.len()
                )));
            }
            let mut row = vec![Datum::Null; arity];
            for (expr, &i) in tuple.iter().zip(&positions) {
                let bound = self.bind_scalar(expr, &empty_scope, &[], 0)?;
                let Expr::Lit(value) = bound else {
                    return Err(IcError::Bind(
                        "INSERT values must be constant expressions".into(),
                    ));
                };
                row[i] = Self::coerce_to_column(
                    value,
                    def.schema.field(i).dtype,
                    &def.schema.field(i).name,
                )?;
            }
            rows.push(Row(row));
        }
        Ok(BoundDml { table: def.id, op: WriteOp::Insert { rows } })
    }

    fn bind_update(&self, stmt: &UpdateStmt) -> IcResult<BoundDml> {
        let def = self.resolve_dml_table(&stmt.table)?;
        let scope = Self::dml_scope(&def);
        let key_cols: &[usize] = match &def.distribution {
            TableDistribution::HashPartitioned { key_cols } => key_cols,
            TableDistribution::Replicated => &[],
        };
        let mut assignments = Vec::with_capacity(stmt.sets.len());
        let mut assigned = vec![false; def.schema.arity()];
        for (name, expr) in &stmt.sets {
            let col = scope.resolve(&None, name)?;
            if assigned[col] {
                return Err(IcError::Bind(format!("column '{name}' assigned twice in UPDATE")));
            }
            assigned[col] = true;
            if def.primary_key.contains(&col) || key_cols.contains(&col) {
                // Updating a key would move the row across partitions /
                // change its identity — Ignite rejects this too.
                return Err(IcError::Unsupported(format!(
                    "cannot UPDATE key column '{name}'"
                )));
            }
            let bound = self.bind_scalar(expr, &scope, &[], def.schema.arity())?;
            if let Expr::Lit(v) = &bound {
                let coerced = Self::coerce_to_column(
                    v.clone(),
                    def.schema.field(col).dtype,
                    &def.schema.field(col).name,
                )?;
                assignments.push((col, Expr::Lit(coerced)));
            } else {
                assignments.push((col, bound));
            }
        }
        let predicate =
            stmt.predicate.as_ref().map(|p| self.bind_scalar(p, &scope, &[], def.schema.arity()))
                .transpose()?;
        Ok(BoundDml { table: def.id, op: WriteOp::Update { assignments, predicate } })
    }

    fn bind_delete(&self, stmt: &DeleteStmt) -> IcResult<BoundDml> {
        let def = self.resolve_dml_table(&stmt.table)?;
        let scope = Self::dml_scope(&def);
        let predicate =
            stmt.predicate.as_ref().map(|p| self.bind_scalar(p, &scope, &[], def.schema.arity()))
                .transpose()?;
        Ok(BoundDml { table: def.id, op: WriteOp::Delete { predicate } })
    }

    // ------------------------------------------------------------- scalars

    /// Bind a scalar expression over `scope`. `plan_arity` is the arity of
    /// the plan the expression will run against (scalar-subquery
    /// placeholder columns live at `placeholders[i]`).
    fn bind_scalar(
        &self,
        expr: &AstExpr,
        scope: &Scope,
        placeholders: &[usize],
        plan_arity: usize,
    ) -> IcResult<Expr> {
        let _ = plan_arity;
        let e = self.bind_scalar_inner(expr, scope, placeholders)?;
        Ok(fold_constants(e))
    }

    fn bind_scalar_inner(
        &self,
        expr: &AstExpr,
        scope: &Scope,
        placeholders: &[usize],
    ) -> IcResult<Expr> {
        let bind = |e: &AstExpr| self.bind_scalar_inner(e, scope, placeholders);
        match expr {
            AstExpr::Column { qualifier, name } => {
                if qualifier.as_deref() == Some("$sq") {
                    let idx: usize = name
                        .parse()
                        .map_err(|_| IcError::Bind("bad scalar placeholder".into()))?;
                    let col = placeholders
                        .get(idx)
                        .copied()
                        .ok_or_else(|| IcError::Bind("unknown scalar placeholder".into()))?;
                    return Ok(Expr::col(col));
                }
                Ok(Expr::col(scope.resolve(qualifier, name)?))
            }
            AstExpr::IntLit(v) => Ok(Expr::lit(*v)),
            AstExpr::NumberLit(v) => Ok(Expr::lit(*v)),
            AstExpr::StringLit(s) => Ok(Expr::Lit(Datum::str(s))),
            AstExpr::DateLit(s) => {
                let d = dates::parse_date(s)
                    .ok_or_else(|| IcError::Bind(format!("invalid date literal '{s}'")))?;
                Ok(Expr::Lit(Datum::Date(d)))
            }
            AstExpr::IntervalLit { .. } => Err(IcError::Bind(
                "intervals are only valid in date arithmetic".into(),
            )),
            AstExpr::Binary { op, left, right } => {
                // Date ± interval folding.
                if matches!(op, BinOp::Add | BinOp::Sub) {
                    if let AstExpr::IntervalLit { value, unit } = right.as_ref() {
                        let base = bind(left)?;
                        let signed = if *op == BinOp::Sub { -value } else { *value };
                        return bind_interval_arith(base, signed, *unit);
                    }
                    if let AstExpr::IntervalLit { value, unit } = left.as_ref() {
                        if *op == BinOp::Add {
                            let base = bind(right)?;
                            return bind_interval_arith(base, *value, *unit);
                        }
                    }
                }
                Ok(Expr::binary(*op, bind(left)?, bind(right)?))
            }
            AstExpr::Not(e) => Ok(Expr::Not(Box::new(bind(e)?))),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(bind(expr)?),
                negated: *negated,
            }),
            AstExpr::Like { expr, pattern, negated } => Ok(Expr::Like {
                expr: Box::new(bind(expr)?),
                pattern: Box::new(bind(pattern)?),
                negated: *negated,
            }),
            AstExpr::Between { expr, low, high, negated } => {
                let e = bind(expr)?;
                let range = Expr::and(
                    Expr::binary(BinOp::Ge, e.clone(), bind(low)?),
                    Expr::binary(BinOp::Le, e, bind(high)?),
                );
                Ok(if *negated { Expr::Not(Box::new(range)) } else { range })
            }
            AstExpr::InList { expr, list, negated } => Ok(Expr::InList {
                expr: Box::new(bind(expr)?),
                list: list.iter().map(bind).collect::<IcResult<_>>()?,
                negated: *negated,
            }),
            AstExpr::Case { whens, else_ } => Ok(Expr::Case {
                whens: whens
                    .iter()
                    .map(|(c, v)| Ok((bind(c)?, bind(v)?)))
                    .collect::<IcResult<_>>()?,
                else_: Box::new(match else_ {
                    Some(e) => bind(e)?,
                    None => Expr::Lit(Datum::Null),
                }),
            }),
            AstExpr::Extract { field, expr } => {
                let kind = match field.as_str() {
                    "year" => FuncKind::ExtractYear,
                    "month" => FuncKind::ExtractMonth,
                    other => {
                        return Err(IcError::Unsupported(format!("EXTRACT({other}) not supported")))
                    }
                };
                Ok(Expr::Func { kind, args: vec![bind(expr)?] })
            }
            AstExpr::Substring { expr, start, len } => Ok(Expr::Func {
                kind: FuncKind::Substring,
                args: vec![bind(expr)?, bind(start)?, bind(len)?],
            }),
            AstExpr::Func { name, args } => match name.as_str() {
                "abs" if args.len() == 1 => Ok(Expr::Func {
                    kind: FuncKind::Abs,
                    args: vec![bind(&args[0])?],
                }),
                other => Err(IcError::Unsupported(format!("function '{other}' not supported"))),
            },
            AstExpr::AggCall { .. } => Err(IcError::Bind(
                "aggregate calls are only valid in SELECT/HAVING of a grouped query".into(),
            )),
            AstExpr::Exists { .. } | AstExpr::InSubquery { .. } | AstExpr::ScalarSubquery(_) => {
                Err(IcError::Unsupported(
                    "subquery in an unsupported position (only top-level WHERE/HAVING conjuncts)"
                        .into(),
                ))
            }
        }
    }
}

// ------------------------------------------------------------------ helpers

fn agg_func_of(name: &str, distinct: bool) -> IcResult<AggFunc> {
    Ok(match (name, distinct) {
        ("count", false) => AggFunc::Count,
        ("count", true) => AggFunc::CountDistinct,
        ("sum", false) => AggFunc::Sum,
        ("avg", false) => AggFunc::Avg,
        ("min", _) => AggFunc::Min,
        ("max", _) => AggFunc::Max,
        (other, true) => {
            return Err(IcError::Unsupported(format!("{other}(DISTINCT) not supported")))
        }
        (other, _) => return Err(IcError::Bind(format!("unknown aggregate '{other}'"))),
    })
}

/// COUNT(*) has no argument — normalize at collection time.
impl PendingAgg {
    #[allow(dead_code)]
    fn is_count_star(&self) -> bool {
        matches!(self.func, AggFunc::Count | AggFunc::CountStar) && self.arg.is_none()
    }
}

fn bind_interval_arith(base: Expr, value: i64, unit: IntervalUnit) -> IcResult<Expr> {
    match unit {
        IntervalUnit::Day => {
            if let Expr::Lit(Datum::Date(d)) = base {
                return Ok(Expr::Lit(Datum::Date(d + value as i32)));
            }
            // Dates compare numerically with ints, so plain addition works.
            Ok(Expr::binary(BinOp::Add, base, Expr::lit(value)))
        }
        IntervalUnit::Month | IntervalUnit::Year => {
            let months = if unit == IntervalUnit::Year { value * 12 } else { value };
            if let Expr::Lit(Datum::Date(d)) = base {
                return Ok(Expr::Lit(Datum::Date(dates::add_months(d, months as i32))));
            }
            Ok(Expr::Func {
                kind: FuncKind::AddMonths,
                args: vec![base, Expr::lit(months)],
            })
        }
    }
}

/// Evaluate column-free subexpressions to literals.
fn fold_constants(e: Expr) -> Expr {
    e.transform(&|node| {
        if matches!(node, Expr::Lit(_)) {
            return None;
        }
        if node.columns().is_empty() {
            if let Ok(v) = node.eval(&Row(vec![])) {
                return Some(Expr::Lit(v));
            }
        }
        None
    })
}

fn split_ast_conjuncts(e: &AstExpr) -> Vec<&AstExpr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a AstExpr, out: &mut Vec<&'a AstExpr>) {
        if let AstExpr::Binary { op: BinOp::And, left, right } = e {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(e, &mut out);
    out
}

fn ast_children(e: &AstExpr) -> Vec<&AstExpr> {
    match e {
        AstExpr::Binary { left, right, .. } => vec![left, right],
        AstExpr::Not(x) | AstExpr::IsNull { expr: x, .. } => vec![x],
        AstExpr::Like { expr, pattern, .. } => vec![expr, pattern],
        AstExpr::Between { expr, low, high, .. } => vec![expr, low, high],
        AstExpr::InList { expr, list, .. } => {
            let mut v = vec![expr.as_ref()];
            v.extend(list.iter());
            v
        }
        AstExpr::Case { whens, else_ } => {
            let mut v = Vec::new();
            for (c, val) in whens {
                v.push(c);
                v.push(val);
            }
            if let Some(e) = else_ {
                v.push(e);
            }
            v
        }
        AstExpr::Extract { expr, .. } => vec![expr],
        AstExpr::Substring { expr, start, len } => vec![expr, start, len],
        AstExpr::Func { args, .. } => args.iter().collect(),
        AstExpr::AggCall { arg: Some(a), .. } => vec![a],
        _ => vec![],
    }
}

fn ast_contains_scalar_subquery(e: &AstExpr) -> bool {
    if matches!(e, AstExpr::ScalarSubquery(_)) {
        return true;
    }
    ast_children(e).iter().any(|c| ast_contains_scalar_subquery(c))
}

fn ast_contains_subquery(e: &AstExpr) -> bool {
    if matches!(
        e,
        AstExpr::ScalarSubquery(_) | AstExpr::Exists { .. } | AstExpr::InSubquery { .. }
    ) {
        return true;
    }
    ast_children(e).iter().any(|c| ast_contains_subquery(c))
}

/// Replace each scalar subquery with a `$sq.N` placeholder column.
fn extract_scalar_subqueries(e: AstExpr) -> (AstExpr, Vec<Query>) {
    let mut queries = Vec::new();
    let out = replace_scalars(e, &mut queries);
    (out, queries)
}

fn replace_scalars(e: AstExpr, queries: &mut Vec<Query>) -> AstExpr {
    match e {
        AstExpr::ScalarSubquery(q) => {
            let idx = queries.len();
            queries.push(*q);
            AstExpr::Column { qualifier: Some("$sq".into()), name: idx.to_string() }
        }
        AstExpr::Binary { op, left, right } => AstExpr::Binary {
            op,
            left: Box::new(replace_scalars(*left, queries)),
            right: Box::new(replace_scalars(*right, queries)),
        },
        AstExpr::Not(x) => AstExpr::Not(Box::new(replace_scalars(*x, queries))),
        AstExpr::Between { expr, low, high, negated } => AstExpr::Between {
            expr: Box::new(replace_scalars(*expr, queries)),
            low: Box::new(replace_scalars(*low, queries)),
            high: Box::new(replace_scalars(*high, queries)),
            negated,
        },
        other => other,
    }
}

fn default_name(expr: &AstExpr, idx: usize) -> String {
    match expr {
        AstExpr::Column { name, .. } => name.clone(),
        AstExpr::AggCall { func, .. } => format!("{func}_{idx}"),
        _ => format!("expr{idx}"),
    }
}

fn dedup_names(names: &mut [String]) {
    let mut seen: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for n in names.iter_mut() {
        let key = n.to_ascii_lowercase();
        let count = seen.entry(key).or_insert(0);
        if *count > 0 {
            *n = format!("{n}_{count}");
        }
        *count += 1;
    }
}

// Re-export for core's DDL handling.
pub fn data_type_of(sql_type: &str) -> IcResult<DataType> {
    Ok(match sql_type.to_ascii_lowercase().as_str() {
        "int" | "integer" | "bigint" | "smallint" | "tinyint" => DataType::Int,
        "double" | "float" | "real" | "decimal" | "numeric" => DataType::Double,
        "varchar" | "char" | "text" | "string" => DataType::Str,
        "date" | "timestamp" => DataType::Date,
        "boolean" | "bool" => DataType::Bool,
        other => return Err(IcError::Unsupported(format!("SQL type '{other}'"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;
    use ic_common::{Field, Schema};
    use ic_net::Topology;
    use ic_storage::TableDistribution;

    fn catalog() -> Arc<Catalog> {
        let cat = Catalog::new(Topology::new(2));
        let t = |name: &str, cols: &[(&str, DataType)]| {
            let schema =
                Schema::new(cols.iter().map(|(n, t)| Field::new(*n, *t)).collect());
            cat.create_table(
                name,
                schema,
                vec![0],
                TableDistribution::HashPartitioned { key_cols: vec![0] },
            )
            .unwrap()
        };
        t("orders", &[("o_orderkey", DataType::Int), ("o_custkey", DataType::Int), ("o_orderdate", DataType::Date), ("o_totalprice", DataType::Double)]);
        t("lineitem", &[("l_orderkey", DataType::Int), ("l_partkey", DataType::Int), ("l_quantity", DataType::Double), ("l_price", DataType::Double)]);
        t("part", &[("p_partkey", DataType::Int), ("p_name", DataType::Str), ("p_size", DataType::Int)]);
        cat
    }

    fn bind(sql: &str) -> IcResult<Bound> {
        let cat = catalog();
        match parse_sql(sql)? {
            Statement::Query(q) => bind_statement(&q, &cat),
            other => panic!("expected query, got {other:?}"),
        }
    }

    fn explain(sql: &str) -> String {
        ic_plan::explain::explain_logical(&bind(sql).unwrap().plan)
    }

    #[test]
    fn simple_projection_and_filter() {
        let b = bind("SELECT o_orderkey, o_totalprice * 2 AS dbl FROM orders WHERE o_custkey = 7")
            .unwrap();
        assert_eq!(b.output_names, vec!["o_orderkey", "dbl"]);
        let text = ic_plan::explain::explain_logical(&b.plan);
        assert!(text.contains("Project"));
        assert!(text.contains("Filter"));
        assert!(text.contains("Scan(orders)"));
    }

    #[test]
    fn qualified_and_ambiguous_columns() {
        assert!(bind("SELECT o.o_orderkey FROM orders o").is_ok());
        assert!(bind("SELECT nope FROM orders").is_err());
        // same table twice: unqualified pk is ambiguous
        let err = bind("SELECT o_orderkey FROM orders a, orders b").unwrap_err();
        assert!(matches!(err, IcError::Bind(m) if m.contains("ambiguous")));
    }

    #[test]
    fn comma_join_builds_cross_joins() {
        let text = explain(
            "SELECT o_orderkey FROM orders, lineitem WHERE o_orderkey = l_orderkey",
        );
        assert!(text.contains("Join[inner"), "{text}");
    }

    #[test]
    fn date_interval_folds_to_literal() {
        let b = bind("SELECT o_orderkey FROM orders WHERE o_orderdate < date '1995-01-01' + interval '3' month").unwrap();
        let text = ic_plan::explain::explain_logical(&b.plan);
        assert!(text.contains("1995-04-01"), "{text}");
    }

    #[test]
    fn aggregates_with_group() {
        let b = bind(
            "SELECT o_custkey, sum(o_totalprice) AS rev, count(*) FROM orders GROUP BY o_custkey HAVING sum(o_totalprice) > 100 ORDER BY rev DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(b.output_names, vec!["o_custkey", "rev", "count_2"]);
        let text = ic_plan::explain::explain_logical(&b.plan);
        assert!(text.contains("Aggregate"), "{text}");
        assert!(text.contains("Limit"), "{text}");
        assert!(text.contains("Sort"), "{text}");
    }

    #[test]
    fn shared_agg_deduplicated() {
        // sum(o_totalprice) used twice should produce one aggregate call.
        let b = bind(
            "SELECT sum(o_totalprice) / count(*) AS a, sum(o_totalprice) AS b FROM orders",
        )
        .unwrap();
        fn find_agg(p: &LogicalPlan) -> Option<usize> {
            if let RelOp::Aggregate { aggs, .. } = &p.op {
                return Some(aggs.len());
            }
            p.children().iter().find_map(|c| find_agg(c))
        }
        assert_eq!(find_agg(&b.plan), Some(2));
    }

    #[test]
    fn exists_becomes_semi_join() {
        let text = explain(
            "SELECT o_orderkey FROM orders WHERE EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey AND l_quantity > 5)",
        );
        assert!(text.contains("Join[semi, correlate"), "{text}");
        // The local predicate stays inside the subquery side.
        assert!(text.contains("Filter"), "{text}");
    }

    #[test]
    fn not_exists_becomes_anti_join() {
        let text = explain(
            "SELECT o_orderkey FROM orders WHERE NOT EXISTS (SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)",
        );
        assert!(text.contains("Join[anti, correlate"), "{text}");
    }

    #[test]
    fn in_subquery_semi_join() {
        let text = explain(
            "SELECT p_name FROM part WHERE p_partkey IN (SELECT l_partkey FROM lineitem WHERE l_quantity > 10)",
        );
        assert!(text.contains("Join[semi, correlate"), "{text}");
    }

    #[test]
    fn uncorrelated_scalar_subquery_cross_join() {
        let text = explain(
            "SELECT o_orderkey FROM orders WHERE o_totalprice > (SELECT avg(o_totalprice) FROM orders)",
        );
        assert!(text.contains("Join[inner, correlate"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn correlated_scalar_aggregate_q17_shape() {
        let text = explain(
            "SELECT l_orderkey FROM lineitem, part WHERE p_partkey = l_partkey AND l_quantity < (SELECT avg(l_quantity) FROM lineitem WHERE l_partkey = p_partkey)",
        );
        // Aggregate grouped by the correlation key, joined back in.
        assert!(text.contains("Join[inner, correlate"), "{text}");
        assert!(text.contains("Aggregate[group=[1]"), "{text}");
    }

    #[test]
    fn q20_style_double_nesting_unsupported() {
        let err = bind(
            "SELECT p_name FROM part WHERE p_partkey IN (SELECT l_partkey FROM lineitem WHERE l_quantity > (SELECT avg(l_quantity) FROM lineitem WHERE l_partkey = p_partkey))",
        )
        .unwrap_err();
        assert!(matches!(err, IcError::Unsupported(_)), "{err}");
    }

    #[test]
    fn distinct_groups_all_columns() {
        let b = bind("SELECT DISTINCT o_custkey FROM orders").unwrap();
        let text = ic_plan::explain::explain_logical(&b.plan);
        assert!(text.contains("Aggregate[group=[0], 0 aggs"), "{text}");
    }

    #[test]
    fn order_by_ordinal_and_alias() {
        assert!(bind("SELECT o_custkey, o_totalprice AS p FROM orders ORDER BY 2 DESC, p").is_ok());
        assert!(bind("SELECT o_custkey FROM orders ORDER BY missing").is_err());
    }

    #[test]
    fn derived_table_binding() {
        let b = bind(
            "SELECT big_cust, total FROM (SELECT o_custkey AS big_cust, sum(o_totalprice) AS total FROM orders GROUP BY o_custkey) t WHERE total > 50",
        )
        .unwrap();
        assert_eq!(b.output_names, vec!["big_cust", "total"]);
    }

    #[test]
    fn case_when_binds() {
        let b = bind(
            "SELECT sum(CASE WHEN p_name LIKE 'PROMO%' THEN p_size ELSE 0 END) FROM part",
        )
        .unwrap();
        let text = ic_plan::explain::explain_logical(&b.plan);
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn group_by_expression_pre_projects() {
        let b = bind(
            "SELECT extract(year from o_orderdate) AS y, count(*) FROM orders GROUP BY extract(year from o_orderdate)",
        )
        .unwrap();
        assert_eq!(b.output_names, vec!["y", "count_1"]);
        let text = ic_plan::explain::explain_logical(&b.plan);
        // pre-project computing the group expr, then aggregate
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("Aggregate"), "{text}");
    }

    #[test]
    fn select_star() {
        let b = bind("SELECT * FROM part").unwrap();
        assert_eq!(b.output_names.len(), 3);
        let b = bind("SELECT p.* FROM part p, orders o WHERE p_partkey = o_orderkey").unwrap();
        assert_eq!(b.output_names.len(), 3);
    }

    #[test]
    fn between_desugars() {
        let b = bind("SELECT p_name FROM part WHERE p_size BETWEEN 1 AND 5").unwrap();
        let text = ic_plan::explain::explain_logical(&b.plan);
        assert!(text.contains(">=") && text.contains("<="), "{text}");
    }

    #[test]
    fn type_mapping() {
        assert_eq!(data_type_of("BIGINT").unwrap(), DataType::Int);
        assert_eq!(data_type_of("decimal").unwrap(), DataType::Double);
        assert_eq!(data_type_of("VARCHAR").unwrap(), DataType::Str);
        assert!(data_type_of("blob").is_err());
    }

    fn bind_dml_sql(sql: &str) -> IcResult<BoundDml> {
        bind_dml(&parse_sql(sql)?, &catalog())
    }

    #[test]
    fn insert_binds_rows_in_column_list_order() {
        let b = bind_dml_sql(
            "INSERT INTO part (p_size, p_partkey, p_name) VALUES (9, 1, 'bolt')",
        )
        .unwrap();
        let ic_storage::WriteOp::Insert { rows } = &b.op else {
            panic!("expected insert op")
        };
        // Values land at schema positions, not list positions.
        assert_eq!(rows[0].0[0], Datum::Int(1));
        assert_eq!(rows[0].0[2], Datum::Int(9));
    }

    #[test]
    fn insert_coerces_int_literal_to_double_column() {
        let b = bind_dml_sql(
            "INSERT INTO orders (o_orderkey, o_custkey, o_orderdate, o_totalprice) \
             VALUES (1, 2, DATE '1995-01-01', 10)",
        )
        .unwrap();
        let ic_storage::WriteOp::Insert { rows } = &b.op else {
            panic!("expected insert op")
        };
        assert_eq!(rows[0].0[3], Datum::Double(10.0));
    }

    #[test]
    fn insert_without_primary_key_rejected() {
        let err = bind_dml_sql("INSERT INTO part (p_name) VALUES ('bolt')").unwrap_err();
        assert!(matches!(err, IcError::Bind(_)), "{err:?}");
        let err =
            bind_dml_sql("INSERT INTO part (p_partkey, p_partkey) VALUES (1, 1)").unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
        let err = bind_dml_sql("INSERT INTO part (p_partkey, p_name) VALUES (1)").unwrap_err();
        assert!(err.to_string().contains("value(s) per row"), "{err}");
    }

    #[test]
    fn update_key_column_rejected() {
        let err = bind_dml_sql("UPDATE part SET p_partkey = 2 WHERE p_size = 1").unwrap_err();
        assert!(matches!(err, IcError::Unsupported(_)), "{err:?}");
        let b = bind_dml_sql("UPDATE part SET p_size = p_size + 1 WHERE p_partkey = 1").unwrap();
        let ic_storage::WriteOp::Update { assignments, predicate } = &b.op else {
            panic!("expected update op")
        };
        assert_eq!(assignments.len(), 1);
        assert!(predicate.is_some());
    }

    #[test]
    fn delete_predicate_binds_over_table_scope() {
        let b = bind_dml_sql("DELETE FROM lineitem WHERE l_quantity > 5").unwrap();
        let ic_storage::WriteOp::Delete { predicate } = &b.op else {
            panic!("expected delete op")
        };
        assert!(predicate.is_some());
        let err = bind_dml_sql("DELETE FROM lineitem WHERE no_such_col = 1").unwrap_err();
        assert!(matches!(err, IcError::Bind(_)), "{err:?}");
    }
}
