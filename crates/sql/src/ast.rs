//! Abstract syntax tree for the supported SQL dialect.

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    /// EXPLAIN SELECT … — show the optimized physical plan.
    Explain(Query),
    /// EXPLAIN ANALYZE SELECT … — execute the query and show the plan
    /// annotated with observed per-operator actuals.
    ExplainAnalyze(Query),
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    /// INSERT INTO t [(cols)] VALUES (…), …
    Insert(InsertStmt),
    /// UPDATE t SET col = expr, … [WHERE pred]
    Update(UpdateStmt),
    /// DELETE FROM t [WHERE pred]
    Delete(DeleteStmt),
}

/// INSERT INTO name [(columns)] VALUES (exprs), …
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    /// Explicit column list; empty = full table-schema order.
    pub columns: Vec<String>,
    /// One expression row per VALUES tuple.
    pub values: Vec<Vec<AstExpr>>,
}

/// UPDATE name SET col = expr, … [WHERE pred]
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub sets: Vec<(String, AstExpr)>,
    pub predicate: Option<AstExpr>,
}

/// DELETE FROM name [WHERE pred]
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub predicate: Option<AstExpr>,
}

/// CREATE TABLE name (col type, ..., PRIMARY KEY (cols))
/// [PARTITION BY HASH (cols) | REPLICATED]
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<(String, String)>,
    pub primary_key: Vec<String>,
    /// None → partition by primary key (Ignite's default affinity).
    pub partition_by: Option<Vec<String>>,
    pub replicated: bool,
}

/// CREATE INDEX name ON table (cols)
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
}

/// A SELECT query (possibly nested as a derived table or subquery).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<u64>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: AstExpr, alias: Option<String> },
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `name [alias]`
    Table { name: String, alias: Option<String> },
    /// `(SELECT ...) [AS] alias`
    Derived { query: Box<Query>, alias: String },
    /// `left [LEFT] JOIN right ON cond`
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: AstJoinKind,
        on: AstExpr,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstJoinKind {
    Inner,
    Left,
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: AstExpr,
    pub desc: bool,
}

/// Binary operators at the AST level (same set as the runtime).
pub use ic_common::BinOp;

/// Interval units for date arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    Day,
    Month,
    Year,
}

/// Unresolved scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Possibly-qualified column reference: `[qualifier.]name`.
    Column { qualifier: Option<String>, name: String },
    NumberLit(f64),
    IntLit(i64),
    StringLit(String),
    DateLit(String),
    /// INTERVAL 'n' UNIT
    IntervalLit { value: i64, unit: IntervalUnit },
    Binary { op: BinOp, left: Box<AstExpr>, right: Box<AstExpr> },
    Not(Box<AstExpr>),
    IsNull { expr: Box<AstExpr>, negated: bool },
    Like { expr: Box<AstExpr>, pattern: Box<AstExpr>, negated: bool },
    Between { expr: Box<AstExpr>, low: Box<AstExpr>, high: Box<AstExpr>, negated: bool },
    InList { expr: Box<AstExpr>, list: Vec<AstExpr>, negated: bool },
    InSubquery { expr: Box<AstExpr>, query: Box<Query>, negated: bool },
    Exists { query: Box<Query>, negated: bool },
    ScalarSubquery(Box<Query>),
    Case {
        whens: Vec<(AstExpr, AstExpr)>,
        else_: Option<Box<AstExpr>>,
    },
    /// Aggregate call: COUNT/SUM/AVG/MIN/MAX, `arg == None` for COUNT(*).
    AggCall { func: String, distinct: bool, arg: Option<Box<AstExpr>> },
    /// EXTRACT(YEAR|MONTH FROM expr)
    Extract { field: String, expr: Box<AstExpr> },
    /// SUBSTRING(expr FROM start FOR len)
    Substring { expr: Box<AstExpr>, start: Box<AstExpr>, len: Box<AstExpr> },
    /// Other function calls (cast helpers etc.).
    Func { name: String, args: Vec<AstExpr> },
}

impl AstExpr {
    pub fn binary(op: BinOp, l: AstExpr, r: AstExpr) -> AstExpr {
        AstExpr::Binary { op, left: Box::new(l), right: Box::new(r) }
    }

    /// Does this expression (sub)tree contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            AstExpr::AggCall { .. } => true,
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            AstExpr::Not(e) | AstExpr::IsNull { expr: e, .. } => e.contains_aggregate(),
            AstExpr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            AstExpr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            AstExpr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            AstExpr::Case { whens, else_ } => {
                whens.iter().any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            AstExpr::Extract { expr, .. } => expr.contains_aggregate(),
            AstExpr::Substring { expr, start, len } => {
                expr.contains_aggregate() || start.contains_aggregate() || len.contains_aggregate()
            }
            AstExpr::Func { args, .. } => args.iter().any(|e| e.contains_aggregate()),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = AstExpr::AggCall { func: "sum".into(), distinct: false, arg: None };
        let e = AstExpr::binary(
            BinOp::Mul,
            AstExpr::IntLit(100),
            AstExpr::binary(BinOp::Div, agg.clone(), agg),
        );
        assert!(e.contains_aggregate());
        let plain = AstExpr::Column { qualifier: None, name: "x".into() };
        assert!(!plain.contains_aggregate());
    }
}
