//! The full benchmark dialect parses and binds: all 22 TPC-H and 13 SSB
//! query texts go through lexer → parser → binder against their real
//! schemas, pinning the SQL surface the paper's workload needs.

use ic_common::IcError;
use ic_net::Topology;
use ic_sql::ast::Statement;
use ic_sql::{bind_statement, data_type_of, parse_sql};
use ic_storage::{Catalog, TableDistribution};
use std::sync::Arc;

/// Build a catalog directly from DDL text (mirrors ic-core's DDL handling
/// without depending on it).
fn catalog_from_ddl(ddl: &[&str]) -> Arc<Catalog> {
    let cat = Catalog::new(Topology::new(2));
    for stmt in ddl {
        match parse_sql(stmt).unwrap() {
            Statement::CreateTable(ct) => {
                let fields: Vec<ic_common::Field> = ct
                    .columns
                    .iter()
                    .map(|(n, t)| ic_common::Field::new(n.clone(), data_type_of(t).unwrap()))
                    .collect();
                let schema = ic_common::Schema::new(fields);
                let pk: Vec<usize> =
                    ct.primary_key.iter().map(|c| schema.index_of(c).unwrap()).collect();
                let dist = if ct.replicated {
                    TableDistribution::Replicated
                } else {
                    let keys = ct
                        .partition_by
                        .as_ref()
                        .map(|cols| cols.iter().map(|c| schema.index_of(c).unwrap()).collect())
                        .unwrap_or_else(|| pk.clone());
                    TableDistribution::HashPartitioned { key_cols: keys }
                };
                cat.create_table(&ct.name, schema, pk, dist).unwrap();
            }
            other => panic!("expected CREATE TABLE, got {other:?}"),
        }
    }
    cat
}

#[test]
fn all_tpch_queries_parse_and_bind() {
    let cat = catalog_from_ddl(ic_benchdata::tpch::DDL);
    for q in 1..=22usize {
        let sql = ic_benchdata::tpch::query(q);
        let parsed = parse_sql(&sql);
        if q == 15 {
            // CREATE VIEW — unsupported, as in the paper.
            assert!(matches!(parsed, Err(IcError::Unsupported(_))), "Q15 should be unsupported");
            continue;
        }
        let Statement::Query(ast) = parsed.unwrap_or_else(|e| panic!("Q{q} parse: {e}")) else {
            panic!("Q{q}: expected a query");
        };
        let bound = bind_statement(&ast, &cat).unwrap_or_else(|e| panic!("Q{q} bind: {e}"));
        assert!(bound.plan.schema.arity() > 0, "Q{q} output schema");
        assert!(!bound.output_names.is_empty(), "Q{q} output names");
    }
}

#[test]
fn all_randomized_tpch_queries_bind() {
    use rand::SeedableRng;
    let cat = catalog_from_ddl(ic_benchdata::tpch::DDL);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for seed_round in 0..4 {
        for q in 1..=22usize {
            if ic_benchdata::tpch::EXCLUDED_UNSUPPORTED.contains(&q) {
                continue;
            }
            let sql = ic_benchdata::tpch::query_randomized(q, &mut rng);
            let Statement::Query(ast) = parse_sql(&sql).unwrap_or_else(|e| panic!("Q{q}: {e}"))
            else {
                panic!("Q{q}")
            };
            bind_statement(&ast, &cat)
                .unwrap_or_else(|e| panic!("round {seed_round} Q{q} bind: {e}\n{sql}"));
        }
    }
}

#[test]
fn all_ssb_queries_parse_and_bind() {
    let cat = catalog_from_ddl(ic_benchdata::ssb::DDL);
    for (id, sql) in ic_benchdata::ssb::QUERIES {
        let Statement::Query(ast) = parse_sql(sql).unwrap_or_else(|e| panic!("{id}: {e}")) else {
            panic!("{id}: expected query");
        };
        let bound = bind_statement(&ast, &cat).unwrap_or_else(|e| panic!("{id} bind: {e}"));
        assert!(bound.plan.schema.arity() >= 1, "{id}");
    }
}

#[test]
fn index_ddl_matches_schemas() {
    // Every index DDL statement references existing tables/columns.
    for (ddl, index_ddl) in [
        (ic_benchdata::tpch::DDL, ic_benchdata::tpch::INDEX_DDL),
        (ic_benchdata::ssb::DDL, ic_benchdata::ssb::INDEX_DDL),
    ] {
        let cat = catalog_from_ddl(ddl);
        for stmt in index_ddl {
            let Statement::CreateIndex(ci) = parse_sql(stmt).unwrap() else {
                panic!("expected CREATE INDEX: {stmt}");
            };
            let table = cat
                .table_by_name(&ci.table)
                .unwrap_or_else(|| panic!("unknown table in {stmt}"));
            let def = cat.table_def(table).unwrap();
            for col in &ci.columns {
                assert!(def.schema.index_of(col).is_some(), "unknown column {col} in {stmt}");
            }
        }
    }
}

#[test]
fn explain_statement_parses() {
    let Statement::Explain(q) = parse_sql("EXPLAIN SELECT 1 FROM part").unwrap() else {
        panic!("expected EXPLAIN");
    };
    assert_eq!(q.select.len(), 1);
}

#[test]
fn explain_analyze_statement_parses() {
    let Statement::ExplainAnalyze(q) =
        parse_sql("EXPLAIN ANALYZE SELECT 1 FROM part").unwrap() else {
        panic!("expected EXPLAIN ANALYZE");
    };
    assert_eq!(q.select.len(), 1);
    // ANALYZE is only a keyword after EXPLAIN; elsewhere it stays an ident.
    assert!(parse_sql("SELECT analyze FROM part").is_ok());
}
