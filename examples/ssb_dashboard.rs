//! Star Schema Benchmark demo (§6.4): load SSB and run query sets one and
//! three — the data-warehouse drill-downs the paper evaluates — on IC and
//! IC+M, printing the response-time multiplier per query.
//!
//! ```sh
//! cargo run --release --example ssb_dashboard [scale_factor]
//! ```

use ignite_calcite_rs::benchdata::ssb;
use ignite_calcite_rs::{Cluster, ClusterConfig, SystemVariant};

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    println!("Loading SSB at scale factor {sf}…");
    let baseline = Cluster::new(ClusterConfig {
        sites: 4,
        variant: SystemVariant::IC,
        ..ClusterConfig::default()
    });
    for ddl in ssb::DDL.iter().chain(ssb::INDEX_DDL) {
        baseline.run(ddl).expect("DDL");
    }
    for table in ssb::generate(sf, 42) {
        println!("  {}: {} rows", table.name, table.rows.len());
        baseline.insert(table.name, table.rows).unwrap();
    }
    baseline.analyze_all().unwrap();
    let improved = baseline.with_variant(SystemVariant::ICPlusM);

    println!("\n{:<6} {:>12} {:>12} {:>10}", "query", "IC (ms)", "IC+M (ms)", "multiplier");
    for (id, sql) in ssb::QUERIES.iter().filter(|(id, _)| id.starts_with("Q1") || id.starts_with("Q3")) {
        let a = baseline.query(sql);
        let b = improved.query(sql);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                let (ta, tb) = (a.total_time().as_secs_f64(), b.total_time().as_secs_f64());
                println!(
                    "{id:<6} {:>12.1} {:>12.1} {:>9.2}x",
                    ta * 1000.0,
                    tb * 1000.0,
                    ta / tb.max(1e-9)
                );
            }
            (a, b) => println!(
                "{id:<6} {:>12} {:>12}",
                a.map(|_| "ok").unwrap_or("FAIL"),
                b.map(|_| "ok").unwrap_or("FAIL")
            ),
        }
    }
    println!("\n(QS2/QS4 are excluded as in the paper's §6.4: their search spaces");
    println!(" exceed the planner's limits)");
}
