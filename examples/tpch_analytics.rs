//! TPC-H analytics demo: load the warehouse at a small scale factor and
//! run a representative slice of the paper's workload — the pricing
//! summary (Q1), the shipping-priority report (Q3), and the promotion
//! effect (Q14) — comparing the baseline and improved planners.
//!
//! ```sh
//! cargo run --release --example tpch_analytics [scale_factor]
//! ```

use ignite_calcite_rs::benchdata::tpch;
use ignite_calcite_rs::{Cluster, ClusterConfig, SystemVariant};

fn main() {
    let sf: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0.01);
    println!("Loading TPC-H at scale factor {sf}…");
    let baseline = Cluster::new(ClusterConfig {
        sites: 4,
        variant: SystemVariant::IC,
        ..ClusterConfig::default()
    });
    for ddl in tpch::DDL.iter().chain(tpch::INDEX_DDL) {
        baseline.run(ddl).expect("DDL");
    }
    for table in tpch::generate(sf, 42) {
        println!("  {}: {} rows", table.name, table.rows.len());
        baseline.insert(table.name, table.rows).unwrap();
    }
    baseline.analyze_all().unwrap();
    let improved = baseline.with_variant(SystemVariant::ICPlus);

    for q in [1usize, 3, 14] {
        let sql = tpch::query(q);
        println!("\n─── TPC-H Q{q} ───");
        for (label, cluster) in [("IC ", &baseline), ("IC+", &improved)] {
            match cluster.query(&sql) {
                Ok(r) => {
                    println!("{label}: {} rows in {:?}", r.rows.len(), r.total_time());
                    if q == 1 {
                        // Q1's summary is small enough to print.
                        for line in r.to_table().lines().take(5) {
                            println!("   {line}");
                        }
                    }
                }
                Err(e) => println!("{label}: {e}"),
            }
        }
    }
}
