//! Distributed join strategies (§5.1): build a star schema with one large
//! partitioned fact table and small dimensions, then show how the
//! §5.1.1 fully-distributed (broadcast) mapping and the §5.1.2 hash join
//! change the plan and the simulated network traffic.
//!
//! ```sh
//! cargo run --release --example distributed_joins
//! ```

use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};

fn load(cluster: &Cluster) {
    cluster
        .run(
            "CREATE TABLE fact (f_id BIGINT, f_dim BIGINT, f_val DOUBLE, \
             PRIMARY KEY (f_id))",
        )
        .unwrap();
    cluster
        .run("CREATE TABLE dim (d_id BIGINT, d_name VARCHAR, PRIMARY KEY (d_id))")
        .unwrap();
    let fact: Vec<Row> = (0..200_000)
        .map(|i| Row(vec![Datum::Int(i), Datum::Int(i % 200), Datum::Double((i % 1000) as f64)]))
        .collect();
    let dim: Vec<Row> =
        (0..200).map(|i| Row(vec![Datum::Int(i), Datum::str(format!("dim-{i}"))])).collect();
    cluster.insert("fact", fact).unwrap();
    cluster.insert("dim", dim).unwrap();
    cluster.analyze_all().unwrap();
}

fn main() {
    // The join key (f_dim) is NOT the fact table's partition key, so the
    // baseline must ship the large fact table; the improved system
    // broadcasts the small dimension instead.
    let sql = "SELECT d_name, sum(f_val) AS total FROM fact, dim \
               WHERE f_dim = d_id GROUP BY d_name ORDER BY total DESC LIMIT 5";

    // A deliberately slower (50 MB/s) link makes data-shipping costs easy
    // to see at this laptop scale.
    let network = ignite_calcite_rs::NetworkConfig {
        bandwidth_bytes_per_sec: 50_000_000,
        ..Default::default()
    };
    let baseline = Cluster::new(ClusterConfig {
        sites: 8,
        variant: SystemVariant::IC,
        network,
        ..ClusterConfig::default()
    });
    load(&baseline);
    let improved = baseline.with_variant(SystemVariant::ICPlus);

    for (label, cluster) in [("IC (baseline)", &baseline), ("IC+ (improved)", &improved)] {
        println!("─── {label} ───");
        println!("{}", cluster.explain(sql).unwrap());
        match cluster.query(sql) {
            Ok(r) => println!(
                "{} rows in {:?}; shipped {} KiB in {} messages\n",
                r.rows.len(),
                r.total_time(),
                r.stats.net_bytes / 1024,
                r.stats.net_messages,
            ),
            Err(e) => println!("failed: {e}\n"),
        }
    }
    println!(
        "The improved plan keeps the 200k-row fact table in place and broadcasts\n\
         the 200-row dimension (§5.1.1), replacing the baseline's full reshuffle."
    );
}
