//! Quickstart: create a cluster, define a schema, load rows, and run the
//! paper's running example (Figure 1, Query A) on all three system
//! variants.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};

fn main() {
    for variant in SystemVariant::all() {
        let cluster = Cluster::new(ClusterConfig {
            sites: 4,
            variant,
            ..ClusterConfig::default()
        });

        // Figure 1's schema: employee(id, name), sales(sale_id, emp_id, amount).
        cluster
            .run("CREATE TABLE employee (id BIGINT, name VARCHAR, PRIMARY KEY (id))")
            .expect("create employee");
        cluster
            .run(
                "CREATE TABLE sales (sale_id BIGINT, emp_id BIGINT, amount DOUBLE, \
                 PRIMARY KEY (sale_id))",
            )
            .expect("create sales");

        let employees: Vec<Row> = (0..1000)
            .map(|i| Row(vec![Datum::Int(i), Datum::str(format!("employee-{i}"))]))
            .collect();
        let sales: Vec<Row> = (0..20_000)
            .map(|i| {
                Row(vec![Datum::Int(i), Datum::Int(i % 1000), Datum::Double((i % 500) as f64)])
            })
            .collect();
        cluster.insert("employee", employees).unwrap();
        cluster.insert("sales", sales).unwrap();
        cluster.analyze_all().unwrap();

        // Query A from Figure 1.
        let sql = "SELECT * FROM employee INNER JOIN sales \
                   ON employee.id = sales.emp_id WHERE employee.id = 10";
        let result = cluster.query(sql).expect("query A");
        println!(
            "[{}] Query A: {} rows in {:?} ({} fragments, {} threads, {} net msgs)",
            variant.label(),
            result.rows.len(),
            result.total_time(),
            result.stats.fragments,
            result.stats.threads,
            result.stats.net_messages,
        );

        // And its physical plan — compare how the variants differ.
        println!("{}", cluster.explain(sql).unwrap());
    }
}
