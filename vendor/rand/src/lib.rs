//! Minimal std-only shim with the `rand` surface this workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen_range,
//! gen_bool, gen_ratio}` over integer/float ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic for a given seed,
//! which is all the data generators and tests rely on (they never pin
//! absolute values from the upstream rand stream).

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `gen_range` can sample from: `Range`/`RangeInclusive` over the
/// integer and float types the workspace uses.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        start + rng.unit_f64() * (end - start)
    }
}

pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool;
}

pub mod rngs {
    use super::{Rng, SampleRange, SeedableRng};

    /// xoshiro256++ generator; statistical quality is irrelevant here beyond
    /// "spreads benchmark data", determinism per seed is what matters.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform in [0, 1).
        pub(crate) fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as upstream rand does for small seeds.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            range.sample(self)
        }

        fn gen_bool(&mut self, p: f64) -> bool {
            self.unit_f64() < p
        }

        fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
            assert!(denominator > 0 && numerator <= denominator);
            self.next_u64() % (denominator as u64) < numerator as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<i64> = (0..8).map(|_| c.gen_range(0i64..1_000_000)).collect();
        let mut d = StdRng::seed_from_u64(42);
        let other: Vec<i64> = (0..8).map(|_| d.gen_range(0i64..1_000_000)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1usize..=5);
            assert!((1..=5).contains(&w));
            let f = r.gen_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&f));
        }
    }

    #[test]
    fn ratio_and_bool_are_plausible() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_ratio(1, 10)).count();
        assert!(hits > 700 && hits < 1300, "gen_ratio(1,10) hit {hits}/10000");
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!(heads > 4500 && heads < 5500, "gen_bool(0.5) hit {heads}/10000");
    }
}
