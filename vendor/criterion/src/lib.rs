//! Minimal std-only shim with the `criterion` surface this workspace uses:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `group.sample_size`, `bench_function` / `bench_with_input`, and
//! `BenchmarkId`. The runner measures wall-clock per iteration and prints
//! mean/min over `sample_size` samples — no statistics engine, but the same
//! bench sources compile and produce comparable numbers offline.

use std::fmt::Display;
use std::time::Instant;

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure given to `bench_function`; `iter` times the body.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_size: usize,
}

impl Bencher<'_> {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup, then `sample_size` timed samples of one call each —
        // these benches wrap whole queries, so per-call timing is stable.
        let _ = routine();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed().as_secs_f64());
            drop(out);
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&mut self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher { samples: &mut samples, sample_size: self.sample_size };
        f(&mut bencher);
        let (mean, min) = summarize(&samples);
        println!(
            "{}/{}: mean {:.3} ms, min {:.3} ms ({} samples)",
            self.name,
            id,
            mean * 1e3,
            min * 1e3,
            samples.len()
        );
        self.criterion.ran += 1;
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        self.run_one(&id.to_string(), f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

fn summarize(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    (mean, min)
}

#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, criterion: self }
    }

    pub fn bench_function(
        &mut self,
        id: impl Display,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run_one(&name, f);
        self
    }

    pub fn final_summary(&self) {
        println!("criterion (vendored shim): {} benchmarks run", self.ran);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            g.bench_with_input(BenchmarkId::new("scale", 7), &7u64, |b, &n| {
                b.iter(|| n * 2)
            });
            g.finish();
        }
        assert_eq!(c.ran, 2);
    }
}
