//! Minimal std-only shim with the `bytes` surface this workspace uses:
//! `BytesMut` as a growable encode buffer implementing `BufMut`'s
//! little-endian put methods, `freeze()` into an immutable cheaply-cloneable
//! `Bytes`, and `clear`/`reserve` so encoders can reuse their allocation
//! across batches.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable byte buffer. Cloning shares the underlying allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

/// Append-oriented write methods. Only the little-endian subset the wire
/// format uses is provided.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_slice(&mut self, v: &[u8]);

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// Growable byte buffer used while encoding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Drop the contents but keep the allocation for reuse.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.buf))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_and_freeze() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u32_le(0xaabbccdd);
        b.put_i64_le(-2);
        b.put_f64_le(1.5);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 8);
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[1..5], &0xaabbccddu32.to_le_bytes());
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut b = BytesMut::with_capacity(64);
        b.put_slice(&[0u8; 48]);
        let cap = b.capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap);
    }
}
