//! Minimal std-only shim with the `parking_lot` lock API used by this
//! workspace: `Mutex::lock`, `RwLock::read`/`write`, none of which return
//! poison results. Backed by `std::sync` with poison recovery so a panicking
//! holder does not wedge the cluster threads that share the lock.
//!
//! Debug builds additionally run a **lock-order detector**: every thread
//! tracks its currently-held guards, each acquisition while other locks are
//! held records `held -> acquired` edges in a process-global acquisition
//! graph, and an acquisition that would close a cycle (the classic ABBA
//! inversion) panics immediately with both locks' names — turning a
//! probabilistic deadlock hang into a deterministic test failure. Lock
//! identity is per-instance (lazily assigned ids), so independent instances
//! never alias; use [`Mutex::named`] / [`RwLock::named`] to get readable
//! names in the panic message. Release builds compile all of this away.

use std::sync::{self, PoisonError};

#[cfg(debug_assertions)]
mod order {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Mutex as StdMutex, OnceLock, PoisonError};

    /// Per-lock-instance identity for the order detector.
    #[derive(Debug)]
    pub struct LockMeta {
        name: Option<&'static str>,
        /// Lazily-assigned unique id; 0 = not yet acquired.
        id: AtomicUsize,
    }

    impl LockMeta {
        pub const fn new(name: Option<&'static str>) -> LockMeta {
            LockMeta { name, id: AtomicUsize::new(0) }
        }
    }

    impl Default for LockMeta {
        fn default() -> LockMeta {
            LockMeta::new(None)
        }
    }

    #[derive(Default)]
    struct Graph {
        /// `from -> to` acquisition orders observed so far.
        edges: HashMap<usize, Vec<usize>>,
        /// Diagnostic names for named locks.
        names: HashMap<usize, &'static str>,
    }

    static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();

    fn graph() -> &'static StdMutex<Graph> {
        GRAPH.get_or_init(StdMutex::default)
    }

    thread_local! {
        /// Lock ids this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII record of one held lock; dropping pops it from the thread's
    /// held set.
    pub struct HeldToken {
        id: usize,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut v = h.borrow_mut();
                if let Some(pos) = v.iter().rposition(|&x| x == self.id) {
                    v.remove(pos);
                }
            });
        }
    }

    fn id_of(meta: &LockMeta) -> usize {
        let id = meta.id.load(Ordering::Relaxed);
        if id != 0 {
            return id;
        }
        static NEXT: AtomicUsize = AtomicUsize::new(1);
        let fresh = NEXT.fetch_add(1, Ordering::Relaxed);
        match meta.id.compare_exchange(0, fresh, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                if let Some(name) = meta.name {
                    let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
                    g.names.insert(fresh, name);
                }
                fresh
            }
            Err(existing) => existing,
        }
    }

    /// Is `to` reachable from `from` in the acquisition graph?
    fn reaches(g: &Graph, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if let Some(nexts) = g.edges.get(&n) {
                for &nx in nexts {
                    if !seen.contains(&nx) {
                        seen.push(nx);
                        stack.push(nx);
                    }
                }
            }
        }
        false
    }

    fn display(g: &Graph, id: usize) -> String {
        match g.names.get(&id) {
            Some(n) => format!("'{n}'"),
            None => format!("lock#{id}"),
        }
    }

    /// Record an acquisition: check for an order inversion against every
    /// lock this thread already holds, add the new edges, and push the lock
    /// onto the thread's held set.
    pub fn acquire(meta: &LockMeta) -> HeldToken {
        let id = id_of(meta);
        let held: Vec<usize> = HELD.with(|h| h.borrow().clone());
        if !held.is_empty() {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            for &h in &held {
                if h == id {
                    continue; // reentrant same-instance (shared read locks)
                }
                if reaches(&g, id, h) {
                    let a = display(&g, h);
                    let b = display(&g, id);
                    drop(g);
                    panic!(
                        "lock-order inversion: acquiring {b} while holding {a}, but {b} -> {a} \
                         was already observed on another path; this is a potential ABBA deadlock"
                    );
                }
                let tos = g.edges.entry(h).or_default();
                if !tos.contains(&id) {
                    tos.push(id);
                }
            }
        }
        HELD.with(|h| h.borrow_mut().push(id));
        HeldToken { id }
    }
}

#[cfg(debug_assertions)]
use order::LockMeta;

/// RAII guard for [`Mutex`]; releases the lock (and, in debug builds, pops
/// the thread's held-lock record) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: sync::MutexGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: order::HeldToken,
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: order::HeldToken,
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
    #[cfg(debug_assertions)]
    _token: order::HeldToken,
}

macro_rules! impl_guard_deref {
    ($guard:ident) => {
        impl<T: ?Sized> std::ops::Deref for $guard<'_, T> {
            type Target = T;
            fn deref(&self) -> &T {
                &self.guard
            }
        }
        impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for $guard<'_, T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                (**self).fmt(f)
            }
        }
    };
}

impl_guard_deref!(MutexGuard);
impl_guard_deref!(RwLockReadGuard);
impl_guard_deref!(RwLockWriteGuard);

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(debug_assertions)]
    meta: LockMeta,
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(debug_assertions)]
            meta: LockMeta::new(None),
            inner: sync::Mutex::new(value),
        }
    }

    /// A mutex with a diagnostic name shown by the debug-build lock-order
    /// detector when it reports an inversion.
    pub const fn named(value: T, name: &'static str) -> Self {
        let _ = name;
        Mutex {
            #[cfg(debug_assertions)]
            meta: LockMeta::new(Some(name)),
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::acquire(&self.meta);
        MutexGuard {
            guard: self.inner.lock().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(debug_assertions)]
    meta: LockMeta,
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(debug_assertions)]
            meta: LockMeta::new(None),
            inner: sync::RwLock::new(value),
        }
    }

    /// An rwlock with a diagnostic name shown by the debug-build lock-order
    /// detector when it reports an inversion.
    pub const fn named(value: T, name: &'static str) -> Self {
        let _ = name;
        RwLock {
            #[cfg(debug_assertions)]
            meta: LockMeta::new(Some(name)),
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::acquire(&self.meta);
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        let token = order::acquire(&self.meta);
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
            #[cfg(debug_assertions)]
            _token: token,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn consistent_lock_order_is_fine() {
        let a = Arc::new(Mutex::named(1u32, "order-test-a"));
        let b = Arc::new(Mutex::named(2u32, "order-test-b"));
        for _ in 0..3 {
            let (a2, b2) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let ga = a2.lock();
                let gb = b2.lock();
                assert_eq!(*ga + *gb, 3);
            })
            .join()
            .expect("consistent order must not trip the detector");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn abba_inversion_panics_with_both_names() {
        let a = Arc::new(Mutex::named(0u32, "inversion-a"));
        let b = Arc::new(Mutex::named(0u32, "inversion-b"));
        // Establish a -> b on one thread (sequentially: no real deadlock).
        {
            let (a2, b2) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            })
            .join()
            .unwrap();
        }
        // The reverse order must panic deterministically.
        let err = std::thread::spawn(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        })
        .join()
        .expect_err("inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("inversion-a"), "{msg}");
        assert!(msg.contains("inversion-b"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn transitive_inversion_detected() {
        let a = Arc::new(Mutex::named(0u32, "chain-a"));
        let b = Arc::new(Mutex::named(0u32, "chain-b"));
        let c = Arc::new(Mutex::named(0u32, "chain-c"));
        // a -> b, then b -> c.
        {
            let (a2, b2) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            })
            .join()
            .unwrap();
            let (b2, c2) = (b.clone(), c.clone());
            std::thread::spawn(move || {
                let _gb = b2.lock();
                let _gc = c2.lock();
            })
            .join()
            .unwrap();
        }
        // c -> a closes a 3-cycle through the graph.
        let err = std::thread::spawn(move || {
            let _gc = c.lock();
            let _ga = a.lock();
        })
        .join()
        .expect_err("transitive inversion must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock-order inversion"), "{msg}");
    }

    #[cfg(debug_assertions)]
    #[test]
    fn distinct_instances_do_not_alias() {
        // Two unrelated pairs locked in opposite per-pair orders: fine,
        // because identity is per-instance.
        let p1 = (Arc::new(Mutex::new(0u32)), Arc::new(Mutex::new(0u32)));
        let _g1 = p1.0.lock();
        let _g2 = p1.1.lock();
        drop((_g1, _g2));
        let p2 = (Arc::new(Mutex::new(0u32)), Arc::new(Mutex::new(0u32)));
        let _g3 = p2.1.lock();
        let _g4 = p2.0.lock();
    }
}
