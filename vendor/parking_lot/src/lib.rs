//! Minimal std-only shim with the `parking_lot` lock API used by this
//! workspace: `Mutex::lock`, `RwLock::read`/`write`, none of which return
//! poison results. Backed by `std::sync` with poison recovery so a panicking
//! holder does not wedge the cluster threads that share the lock.

use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
