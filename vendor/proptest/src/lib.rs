//! Minimal std-only shim with the `proptest` surface this workspace uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` macros, the `Strategy`
//! trait with `prop_map` / `prop_filter` / `prop_recursive`, `Just`,
//! `any::<T>()` for the primitive types the tests sample, range strategies,
//! tuple strategies, and `collection::vec`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and the deterministic per-test seed, which is enough to
//! replay (seeds derive only from the test name and case index). Case count
//! defaults to 256 and honours `PROPTEST_CASES`, like upstream.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    /// Constructor-shaped mirror of upstream's `TestCaseError`. The shim's
    /// test bodies return `Result<(), String>`, so `fail` produces the
    /// `String` directly — call sites written against upstream
    /// (`return Err(TestCaseError::fail(msg))`) compile unchanged.
    pub struct TestCaseError;

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> String {
            msg.into()
        }
        pub fn reject(msg: impl Into<String>) -> String {
            msg.into()
        }
    }

    /// Configuration accepted by `#![proptest_config(...)]`. Only `cases`
    /// is honoured; the struct-update `.. ProptestConfig::default()` idiom
    /// works as upstream.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases, max_shrink_iters: 0 }
        }
    }

    /// Deterministic per-case generator: seeded from the test name and case
    /// index only, so failures replay without persistence files.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
        }

        pub fn next_u64(&mut self) -> u64 {
            // splitmix64
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// A generator of values of one type. Everything composable in this shim is
/// a `Strategy`; combinators erase to [`ArcStrategy`] immediately, trading
/// the upstream zero-cost tower for simplicity.
pub trait Strategy {
    type Value: 'static;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U: 'static, F>(self, f: F) -> ArcStrategy<U>
    where
        Self: Sized + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        let inner = self;
        ArcStrategy::new(move |rng| f(inner.generate(rng)))
    }

    fn prop_filter<F>(self, _whence: &'static str, pred: F) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        let inner = self;
        ArcStrategy::new(move |rng| {
            for _ in 0..10_000 {
                let v = inner.generate(rng);
                if pred(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 10000 consecutive values ({_whence})");
        })
    }

    /// Build recursive structures: apply `recurse` up to `depth` times on
    /// top of `self` as the leaf strategy. `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(ArcStrategy<Self::Value>) -> S,
    {
        let leaf = self.erased();
        let mut tiers: Vec<ArcStrategy<Self::Value>> = vec![leaf];
        for _ in 0..depth {
            let prev = tiers.last().unwrap().clone();
            tiers.push(recurse(prev).erased());
        }
        // Pick a tier per generated value so shallow and deep shapes both
        // occur, like upstream's probabilistic depth control.
        ArcStrategy::new(move |rng| {
            let tier = rng.below(tiers.len() as u64) as usize;
            tiers[tier].generate(rng)
        })
    }

    fn erased(self) -> ArcStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let inner = self;
        ArcStrategy::new(move |rng| inner.generate(rng))
    }
}

/// Type-erased, cheaply cloneable strategy. Not `Send`; the `proptest!`
/// macro runs everything on the test thread.
pub struct ArcStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for ArcStrategy<T> {
    fn clone(&self) -> Self {
        ArcStrategy { gen_fn: Rc::clone(&self.gen_fn) }
    }
}

impl<T: 'static> ArcStrategy<T> {
    pub fn new(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
        ArcStrategy { gen_fn: Rc::new(f) }
    }

    /// Uniform choice between already-erased strategies (`prop_oneof!`).
    pub fn union(arms: Vec<ArcStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        ArcStrategy::new(move |rng| {
            let pick = rng.below(arms.len() as u64) as usize;
            arms[pick].generate(rng)
        })
    }
}

impl<T: 'static> Strategy for ArcStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()` for the primitive types the workspace samples.
pub trait Arbitrary: Sized + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mix of "interesting" and uniform values; upstream's f64 domain
        // includes infinities and NaN, which tests filter when unwanted.
        match rng.below(8) {
            0 => 0.0,
            1 => -1.5,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// String strategies from regex-like patterns, as in upstream proptest's
/// `impl Strategy for &str`. Supports the `[class]{lo,hi}` shape (char
/// classes of literals and `a-z` style ranges) that this workspace uses;
/// anything fancier panics with a clear message.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        (0..n).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

/// Parse `[class]{lo,hi}` into (class characters, lo, hi).
fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i] as u32, class[i + 2] as u32);
            if a > b {
                return None;
            }
            chars.extend((a..=b).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match counts.split_once(',') {
        Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    if lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

pub mod collection {
    use super::{ArcStrategy, Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Size specifications accepted by `collection::vec`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty size range");
            start + rng.below((end - start + 1) as u64) as usize
        }
    }

    pub fn vec<S, R>(element: S, size: R) -> ArcStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        R: SizeRange + 'static,
    {
        ArcStrategy::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }

    pub fn hash_set<S, R>(
        element: S,
        size: R,
    ) -> ArcStrategy<std::collections::HashSet<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: std::hash::Hash + Eq,
        R: SizeRange + 'static,
    {
        // Like upstream, the size bound is a target, not a guarantee:
        // duplicate draws simply leave the set smaller.
        ArcStrategy::new(move |rng| {
            let n = size.pick(rng);
            (0..n).map(|_| element.generate(rng)).collect()
        })
    }
}

pub mod bool {
    use super::{Any, Strategy, TestRng};

    /// Strategy yielding either boolean, mirroring `proptest::bool::ANY`.
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: BoolAny = BoolAny;

    // Keep the `Any` import referenced so the module mirrors upstream shape.
    #[allow(dead_code)]
    type _Unused = Any<bool>;
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{any, collection, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof,
        proptest, ArcStrategy, Just, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond), format_args!($($fmt)*), file!(), line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), format_args!($($fmt)*),
                l, r, file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), l, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` ({})\n  both: {:?}\n at {}:{}",
                stringify!($left), stringify!($right), format_args!($($fmt)*),
                l, file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::ArcStrategy::union(vec![
            $($crate::Strategy::erased($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed (deterministic seed: name+case):\n{}",
                        case + 1, config.cases, stringify!($name), message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tree {
        Leaf(i64),
        Node(Box<Tree>, Box<Tree>),
    }

    fn depth(t: &Tree) -> u32 {
        match t {
            Tree::Leaf(_) => 0,
            Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(a in 0i64..10, pair in (5usize..8, any::<bool>())) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..8).contains(&pair.0));
        }

        #[test]
        fn vec_lengths(v in collection::vec(0i32..100, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|x| (0..100).contains(x)));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(-1i64), (0i64..5).prop_map(|x| x * 2)]) {
            prop_assert!(v == -1 || (v % 2 == 0 && (0..10).contains(&v)));
        }

        #[test]
        fn filter_excludes(v in (0i64..100).prop_filter("evens only", |x| x % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn recursion_bounded(t in Just(Tree::Leaf(0)).prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        })) {
            prop_assert!(depth(&t) <= 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::for_case("x", 3);
        let mut b = crate::test_runner::TestRng::for_case("x", 3);
        let s = (0i64..1_000_000, any::<u64>());
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}
