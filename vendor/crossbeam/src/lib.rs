//! Minimal std-only shim with the `crossbeam::channel` surface this
//! workspace uses: `bounded`, cloneable `Sender`, `Receiver::recv` /
//! `recv_timeout`, and the matching error enums. Backed by
//! `std::sync::mpsc::sync_channel`, which has the same bounded,
//! block-on-full semantics the network layer relies on for backpressure.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_timeout() {
            let (tx, rx) = bounded(2);
            tx.send(7i64).unwrap();
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn sender_clones_share_channel() {
            let (tx, rx) = bounded(4);
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }
    }
}
