//! Chaos tests for the write path and elastic topology.
//!
//! The acceptance bar for online DML: with `backups = 1` and a seeded fault
//! plan that permanently kills a site **mid-stream of acknowledged writes**,
//!
//! * zero acknowledged writes are lost (promotion picks the
//!   highest-version live replica, which confirmed every ack),
//! * readers never observe a torn multi-row batch (snapshot stores commit
//!   all-or-nothing), and
//! * a repair pass returns every partition to the full replication factor,
//!
//! and the whole scenario replays identically from the same seed.

use ignite_calcite_rs::{
    Cluster, ClusterConfig, Datum, FaultPlan, NetworkConfig, SiteId, SystemVariant,
};
use std::collections::BTreeMap;
use std::time::Duration;

const BATCH: i64 = 5;
const BATCHES: i64 = 60;
const SEED: u64 = 4242;
/// Logical tick at which site 2 dies — early enough that most of the write
/// stream happens after it (the mid-stream kill the tentpole demands).
const CRASH_TICK: u64 = 25;

fn dml_cluster() -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        sites: 4,
        backups: 1,
        variant: SystemVariant::ICPlus,
        network: NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(30)),
        max_retries: 4,
        ..ClusterConfig::test_default()
    });
    cluster
        .run("CREATE TABLE kv (k BIGINT, v BIGINT, grp BIGINT, PRIMARY KEY (k))")
        .unwrap();
    cluster
}

/// Everything a determinism comparison needs from one scenario run: the
/// acked reference map, the final table contents, and the total failover
/// retries spent.
type ScenarioOutcome = (BTreeMap<i64, i64>, Vec<(i64, i64, i64)>, u32);

/// One full scenario run: stream acknowledged multi-row insert batches while
/// the fault plan kills site 2, interleaving reads.
fn run_scenario() -> ScenarioOutcome {
    let cluster = dml_cluster();
    cluster.install_faults(FaultPlan::new(SEED).crash(SiteId(2), CRASH_TICK));
    let mut acked: BTreeMap<i64, i64> = BTreeMap::new();
    let mut retries = 0u32;
    for batch in 0..BATCHES {
        let values: Vec<String> = (0..BATCH)
            .map(|j| {
                let k = batch * BATCH + j;
                format!("({k}, {}, {batch})", k * 10)
            })
            .collect();
        let sql = format!("INSERT INTO kv (k, v, grp) VALUES {}", values.join(", "));
        let r = cluster.dml(&sql).unwrap_or_else(|e| {
            panic!("write batch {batch} must eventually ack through repair: {e}")
        });
        retries += r.retries;
        for j in 0..BATCH {
            let k = batch * BATCH + j;
            acked.insert(k, k * 10);
        }
        // Interleaved torn-read probe: a batch shares one `grp` value and
        // commits per partition all-or-nothing; since rows of one batch can
        // span partitions, the invariant a reader may rely on is per
        // (grp, partition) atomicity — the aggregate count per grp over the
        // *acked* batches must be exactly BATCH.
        if batch % 10 == 9 {
            let q = cluster
                .query("SELECT grp, count(*) AS c FROM kv GROUP BY grp ORDER BY grp")
                .unwrap();
            for row in &q.rows {
                let c = row.0[1].as_int().unwrap();
                assert_eq!(c, BATCH, "torn batch visible for grp {:?}", row.0[0]);
            }
        }
    }
    // Repair to full replication factor, then verify nothing acked was lost.
    cluster.repair();
    let q = cluster.query("SELECT k, v, grp FROM kv ORDER BY k").unwrap();
    let rows: Vec<(i64, i64, i64)> = q
        .rows
        .iter()
        .map(|r| {
            (
                r.0[0].as_int().unwrap(),
                r.0[1].as_int().unwrap(),
                r.0[2].as_int().unwrap(),
            )
        })
        .collect();
    // Structural invariants before the cluster is dropped.
    let down = cluster.network().liveness().down_sites();
    assert!(down.contains(&SiteId(2)), "the seeded crash must have fired");
    let map = cluster.catalog().membership().snapshot();
    let data = cluster
        .catalog()
        .table_data(cluster.catalog().table_by_name("kv").unwrap())
        .unwrap();
    for p in 0..map.num_partitions() {
        let live: Vec<SiteId> =
            map.owners_of(p).iter().copied().filter(|s| !down.contains(s)).collect();
        assert!(
            live.len() >= 2,
            "partition {p} not back to full replication factor: {:?}",
            map.owners_of(p)
        );
        assert!(
            !down.contains(&map.primary_of(p)),
            "partition {p} primary still dead after repair"
        );
        // Every live replica converged to the same store.
        let stores: Vec<_> = live.iter().map(|&s| data.replica(p, s).unwrap()).collect();
        for s in &stores[1..] {
            assert_eq!(s.version, stores[0].version, "partition {p} replica version skew");
            assert_eq!(s.rows.len(), stores[0].rows.len(), "partition {p} replica row skew");
        }
    }
    (acked, rows, retries)
}

#[test]
fn killing_a_site_mid_stream_loses_no_acknowledged_write() {
    let (acked, rows, retries) = run_scenario();
    assert_eq!(acked.len() as i64, BATCH * BATCHES);
    assert_eq!(rows.len(), acked.len(), "acked rows lost or duplicated");
    for (k, v, _grp) in &rows {
        assert_eq!(acked.get(k), Some(v), "acked write k={k} corrupted");
    }
    assert!(retries >= 1, "the crash should have forced at least one failover retry");
}

/// The same seed replays the identical scenario: same acked set, same final
/// table contents, same retry spend.
#[test]
fn chaos_write_scenario_is_deterministic() {
    let a = run_scenario();
    let b = run_scenario();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// Concurrent snapshot readers during a live write stream never see a torn
/// batch inside one partition: a scan pinned to a single partition's store
/// observes whole committed versions only.
#[test]
fn readers_see_whole_batches_only() {
    let cluster = dml_cluster();
    let catalog = cluster.catalog().clone();
    let id = catalog.table_by_name("kv").unwrap();
    let data = catalog.table_data(id).unwrap();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let reader = {
        let data = data.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for p in 0..data.num_partitions() {
                    let store = data.store(p);
                    // Parallel columns always agree, and no row carries a
                    // version newer than its store: the snapshot is a
                    // committed prefix, never a torn write.
                    assert_eq!(store.rows.len(), store.row_versions.len());
                    assert!(store.row_versions.iter().all(|&v| v <= store.version));
                    observed += 1;
                }
            }
            observed
        })
    };
    for batch in 0..40i64 {
        let values: Vec<String> = (0..BATCH)
            .map(|j| format!("({}, {j}, {batch})", batch * BATCH + j))
            .collect();
        cluster
            .dml(&format!("INSERT INTO kv (k, v, grp) VALUES {}", values.join(", ")))
            .unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let observed = reader.join().unwrap();
    assert!(observed > 0);
    assert_eq!(
        cluster.query("SELECT count(*) FROM kv").unwrap().rows[0].0[0],
        Datum::Int(40 * BATCH)
    );
}
