//! End-to-end TPC-H correctness: every runnable query executes on all
//! three system variants and produces identical results; selected queries
//! are verified against brute-force computations over the generated rows.

use ignite_calcite_rs::benchdata::tpch;
use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};
use std::time::Duration;

const SF: f64 = 0.002;

fn clusters() -> (Cluster, Cluster, Cluster) {
    let base = Cluster::new(ClusterConfig {
        sites: 4,
        variant: SystemVariant::IC,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(60)),
        planner_budget: None,
        memory_limit_rows: 20_000_000,
        ..ClusterConfig::default()
    });
    for ddl in tpch::DDL.iter().chain(tpch::INDEX_DDL) {
        base.run(ddl).unwrap();
    }
    for t in tpch::generate(SF, 42) {
        base.insert(t.name, t.rows).unwrap();
    }
    base.analyze_all().unwrap();
    let plus = base.with_variant(SystemVariant::ICPlus);
    let plus_m = base.with_variant(SystemVariant::ICPlusM);
    (base, plus, plus_m)
}

/// Sort rows deterministically (doubles at full precision), then compare
/// pairwise with a relative tolerance on doubles — different plans
/// accumulate floating-point sums in different orders, and fixed-decimal
/// string rounding can flip on exact half-way values.
fn assert_rows_close(a: &[Row], b: &[Row], label: &str) {
    fn key(r: &Row) -> String {
        r.0.iter()
            .map(|d| match d {
                Datum::Double(f) => format!("{f:.6}"),
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join("|")
    }
    assert_eq!(a.len(), b.len(), "{label}: row count");
    let mut sa: Vec<&Row> = a.iter().collect();
    let mut sb: Vec<&Row> = b.iter().collect();
    sa.sort_by_key(|r| key(r));
    sb.sort_by_key(|r| key(r));
    for (ra, rb) in sa.iter().zip(&sb) {
        assert_eq!(ra.arity(), rb.arity(), "{label}: arity");
        for (da, db) in ra.0.iter().zip(&rb.0) {
            match (da, db) {
                (Datum::Double(x), Datum::Double(y)) => {
                    let tol = 1e-6 * x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= tol, "{label}: {x} vs {y}\n{ra:?}\n{rb:?}");
                }
                _ => assert_eq!(da, db, "{label}:\n{ra:?}\n{rb:?}"),
            }
        }
    }
}

/// All 20 runnable queries agree between IC+ and IC+M (and IC where it
/// finishes).
#[test]
fn variants_agree_on_all_queries() {
    let (ic, plus, plus_m) = clusters();
    for q in 1..=22 {
        if tpch::EXCLUDED_UNSUPPORTED.contains(&q) {
            continue;
        }
        let sql = tpch::query(q);
        let a = plus.query(&sql).unwrap_or_else(|e| panic!("IC+ Q{q}: {e}"));
        let b = plus_m.query(&sql).unwrap_or_else(|e| panic!("IC+M Q{q}: {e}"));
        assert_rows_close(&a.rows, &b.rows, &format!("Q{q}: IC+ vs IC+M"));
        // The baseline is slow on several queries; compare only when it
        // completes within the (generous) limit.
        if let Ok(c) = ic.query(&sql) {
            assert_rows_close(&a.rows, &c.rows, &format!("Q{q}: IC+ vs IC"));
        }
    }
}

/// Q15 fails with Unsupported on every variant — the paper's finding that
/// Ignite+Calcite does not support SQL views.
#[test]
fn q15_views_unsupported() {
    let (ic, plus, _) = clusters();
    for cluster in [&ic, &plus] {
        let err = cluster.query(&tpch::query(15)).unwrap_err();
        assert!(matches!(err, ignite_calcite_rs::IcError::Unsupported(_)), "{err}");
    }
}

/// Q6 (pure scan-filter-aggregate) verified against a brute-force
/// computation over the generated lineitem rows.
#[test]
fn q6_matches_brute_force() {
    let (_, plus, _) = clusters();
    let data = tpch::generate(SF, 42);
    let lineitem = &data.iter().find(|t| t.name == "lineitem").unwrap().rows;
    let lo = ignite_calcite_rs::common::dates::to_epoch_days(1994, 1, 1);
    let hi = ignite_calcite_rs::common::dates::to_epoch_days(1995, 1, 1);
    let mut expected = 0.0f64;
    for r in lineitem {
        let shipdate = match r.0[10] {
            Datum::Date(d) => d,
            _ => unreachable!(),
        };
        let qty = r.0[4].as_double().unwrap();
        let price = r.0[5].as_double().unwrap();
        let disc = r.0[6].as_double().unwrap();
        // Bounds computed with the same f64 arithmetic the query uses
        // (0.06 - 0.01 and 0.06 + 0.01 are not exactly 0.05/0.07).
        let (lo_d, hi_d) = (0.06 - 0.01, 0.06 + 0.01);
        if shipdate >= lo && shipdate < hi && disc >= lo_d && disc <= hi_d && qty < 24.0 {
            expected += price * disc;
        }
    }
    let got = plus.query(&tpch::query(6)).unwrap();
    assert_eq!(got.rows.len(), 1);
    let v = got.rows[0].0[0].as_double().unwrap_or(0.0);
    assert!(
        (v - expected).abs() < 0.01 * expected.abs().max(1.0),
        "Q6: got {v}, expected {expected}"
    );
}

/// Q1's grouped sums verified against brute force.
#[test]
fn q1_matches_brute_force() {
    let (_, plus, _) = clusters();
    let data = tpch::generate(SF, 42);
    let lineitem = &data.iter().find(|t| t.name == "lineitem").unwrap().rows;
    let cutoff = ignite_calcite_rs::common::dates::to_epoch_days(1998, 12, 1) - 90;
    let mut groups: std::collections::BTreeMap<(String, String), (f64, i64)> =
        std::collections::BTreeMap::new();
    for r in lineitem {
        let shipdate = match r.0[10] {
            Datum::Date(d) => d,
            _ => unreachable!(),
        };
        if shipdate <= cutoff {
            let key = (
                r.0[8].as_str().unwrap().to_string(),
                r.0[9].as_str().unwrap().to_string(),
            );
            let e = groups.entry(key).or_insert((0.0, 0));
            e.0 += r.0[4].as_double().unwrap(); // sum(l_quantity)
            e.1 += 1; // count(*)
        }
    }
    let got = plus.query(&tpch::query(1)).unwrap();
    assert_eq!(got.rows.len(), groups.len(), "group count");
    for row in &got.rows {
        let key = (
            row.0[0].as_str().unwrap().to_string(),
            row.0[1].as_str().unwrap().to_string(),
        );
        let (sum_qty, count) = groups[&key];
        assert!((row.0[2].as_double().unwrap() - sum_qty).abs() < 1e-6, "{key:?} sum_qty");
        assert_eq!(row.0[9].as_int().unwrap(), count, "{key:?} count");
    }
}

/// ORDER BY + LIMIT results are correctly ordered.
#[test]
fn ordering_respected() {
    let (_, plus, plus_m) = clusters();
    for cluster in [&plus, &plus_m] {
        let r = cluster.query(&tpch::query(3)).unwrap();
        assert!(r.rows.len() <= 10);
        // revenue desc, o_orderdate asc
        for w in r.rows.windows(2) {
            let (a, b) = (
                w[0].0[1].as_double().unwrap(),
                w[1].0[1].as_double().unwrap(),
            );
            assert!(a >= b - 1e-9, "Q3 revenue ordering: {a} then {b}");
        }
    }
}

/// The multithreaded variant spawns more execution threads for eligible
/// plans.
#[test]
fn multithreading_uses_more_threads() {
    let (_, plus, plus_m) = clusters();
    let sql = tpch::query(1);
    let a = plus.query(&sql).unwrap();
    let b = plus_m.query(&sql).unwrap();
    assert!(
        b.stats.threads > a.stats.threads,
        "IC+M should use more threads ({} vs {})",
        b.stats.threads,
        a.stats.threads
    );
}
