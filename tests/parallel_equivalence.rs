//! Property-based morsel-parallel vs single-thread equivalence: randomized
//! SQL over a synthetic NULL-heavy schema must produce identical result
//! multisets with the worker pool disabled (`worker_threads = 0`, the
//! pre-morsel sequential runtime) and with multi-lane pools over tiny
//! morsels (`worker_threads = 3`, `morsel_rows = 128` — every scan splits
//! into several morsels per site, so lanes, work stealing, shared-table
//! probes, per-lane partial aggregates and the sorted-run merge all
//! actually engage). Filters run ahead of joins/aggregates in these plans,
//! so the parallel operators see batches carrying selection vectors, not
//! just dense inputs.

use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

struct Fixture {
    sequential: Cluster,
    parallel: Cluster,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let sequential = Cluster::new(ClusterConfig {
            sites: 3,
            variant: SystemVariant::ICPlus,
            network: ignite_calcite_rs::NetworkConfig::instant(),
            exec_timeout: Some(Duration::from_secs(30)),
            memory_limit_rows: 20_000_000,
            worker_threads: 0,
            ..ClusterConfig::test_default()
        });
        sequential
            .run("CREATE TABLE a (a1 BIGINT, a2 BIGINT, a3 DOUBLE, PRIMARY KEY (a1))")
            .unwrap();
        sequential
            .run("CREATE TABLE b (b1 BIGINT, b2 BIGINT, b3 VARCHAR, PRIMARY KEY (b1))")
            .unwrap();
        sequential
            .run("CREATE TABLE c (c1 BIGINT, c2 VARCHAR, PRIMARY KEY (c1)) REPLICATED")
            .unwrap();
        let a: Vec<Row> = (0..900)
            .map(|i| {
                Row(vec![
                    Datum::Int(i),
                    if i % 13 == 0 { Datum::Null } else { Datum::Int(i % 37) },
                    if i % 11 == 0 { Datum::Null } else { Datum::Double((i % 97) as f64 / 3.0) },
                ])
            })
            .collect();
        let b: Vec<Row> = (0..400)
            .map(|i| {
                Row(vec![
                    Datum::Int(i),
                    Datum::Int(i % 37),
                    Datum::str(format!("tag{}", i % 5)),
                ])
            })
            .collect();
        let c: Vec<Row> =
            (0..37).map(|i| Row(vec![Datum::Int(i), Datum::str(format!("c{}", i % 3))])).collect();
        sequential.insert("a", a).unwrap();
        sequential.insert("b", b).unwrap();
        sequential.insert("c", c).unwrap();
        sequential.analyze_all().unwrap();
        let parallel = sequential.with_worker_threads(3, 128);
        Fixture { sequential, parallel }
    })
}

/// Canonical multiset form: order-insensitive, doubles rounded so the
/// reassociated partial-aggregate merge order can't flip low bits.
fn canon(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.0.iter()
                .map(|d| match d {
                    Datum::Double(f) => format!("{f:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

fn assert_same(f: &Fixture, sql: &str) {
    let seq = f.sequential.query(sql).unwrap();
    let par = f.parallel.query(sql).unwrap();
    assert_eq!(canon(&seq.rows), canon(&par.rows), "sequential vs parallel: {sql}");
}

fn predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..40).prop_map(|v| format!("a.a2 > {v}")),
        (0i64..40).prop_map(|v| format!("b.b2 <= {v}")),
        (0i64..5).prop_map(|v| format!("b.b3 = 'tag{v}'")),
        (0i64..90).prop_map(|v| format!("a.a3 < {v}")),
        Just("a.a3 IS NOT NULL".to_string()),
        Just("a.a2 IS NULL".to_string()),
        (0i64..37).prop_map(|v| format!("(a.a2 = {v} OR b.b2 > 20)")),
    ]
}

fn agg() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("count(*)".to_string()),
        Just("sum(a.a3)".to_string()),
        Just("min(b.b1)".to_string()),
        Just("max(a.a1)".to_string()),
        Just("avg(a.a3)".to_string()),
        Just("count(a.a3)".to_string()),
        Just("count(distinct b.b3)".to_string()),
    ]
}

/// Guard against the parallel path silently falling back to sequential:
/// a plain scan query on the multi-lane cluster must dispatch morsels
/// (the equivalence tests above would pass vacuously otherwise).
#[test]
fn parallel_path_engages() {
    let f = fixture();
    let dispatched =
        ic_common::obs::MetricsRegistry::global().counter("exec.morsel.dispatched");
    let before = dispatched.get();
    f.parallel.query("SELECT a.a1 FROM a WHERE a.a1 >= 0").unwrap();
    assert!(
        dispatched.get() > before,
        "multi-lane cluster executed without dispatching a single morsel"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Scan → filter → project fragments (the streaming-lane path: no post
    /// chain, lanes push straight into the exchange/rowset sink).
    #[test]
    fn scan_filter_project(lo in 0i64..500, hi in 500i64..900) {
        let sql = format!(
            "SELECT a.a1, a.a3 FROM a WHERE a.a1 >= {lo} AND a.a1 < {hi} AND a.a3 IS NOT NULL"
        );
        assert_same(fixture(), &sql);
    }

    /// Grouped aggregates over joins: shared-table parallel probe feeding
    /// per-lane partial aggregates, merged at the drain barrier (and the
    /// unsplittable COUNT DISTINCT path when the generator picks it).
    #[test]
    fn join_group_aggregate(preds in proptest::collection::vec(predicate(), 0..3),
                            a in agg()) {
        let mut sql =
            format!("SELECT c.c2, {a} FROM a, b, c WHERE a.a2 = b.b2 AND a.a2 = c.c1");
        for p in &preds {
            sql += &format!(" AND {p}");
        }
        sql += " GROUP BY c.c2";
        assert_same(fixture(), &sql);
    }

    /// Global (ungrouped) aggregates — the empty-group merge path.
    #[test]
    fn global_aggregate(a in agg(), preds in proptest::collection::vec(predicate(), 0..2)) {
        let mut sql = format!("SELECT {a} FROM a, b WHERE a.a2 = b.b2");
        for p in &preds {
            sql += &format!(" AND {p}");
        }
        assert_same(fixture(), &sql);
    }

    /// ORDER BY + LIMIT above a parallel region: lanes pre-sort their
    /// share, the driver k-way merges the runs, and the limit cuts the
    /// merged stream — result must match the sequential sort exactly
    /// (ORDER BY a1 is a total order, so even row order is deterministic).
    #[test]
    fn sort_limit(lim in 1usize..40, desc in proptest::bool::ANY) {
        let dir = if desc { "DESC" } else { "ASC" };
        let sql = format!(
            "SELECT a.a1, a.a2 FROM a WHERE a.a3 IS NOT NULL ORDER BY a.a1 {dir} LIMIT {lim}"
        );
        let f = fixture();
        let seq = f.sequential.query(&sql).unwrap();
        let par = f.parallel.query(&sql).unwrap();
        // Ordered comparison: the merge must preserve the sort order.
        prop_assert_eq!(
            format!("{:?}", seq.rows), format!("{:?}", par.rows),
            "ordered sequential vs parallel: {}", sql
        );
    }
}
