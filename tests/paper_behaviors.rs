//! Integration tests pinning the *behavioural* claims of the paper: which
//! plans each variant produces, which failures the baseline exhibits, and
//! how the §4/§5 mechanisms show up end-to-end.

use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};
use std::time::Duration;

fn star_cluster(variant: SystemVariant) -> Cluster {
    let c = Cluster::new(ClusterConfig {
        sites: 4,
        variant,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(20)),
        planner_budget: None,
        memory_limit_rows: 20_000_000,
        ..ClusterConfig::default()
    });
    c.run("CREATE TABLE fact (f_id BIGINT, f_dim BIGINT, f_other BIGINT, f_val DOUBLE, PRIMARY KEY (f_id))")
        .unwrap();
    c.run("CREATE TABLE dim (d_id BIGINT, d_name VARCHAR, PRIMARY KEY (d_id))").unwrap();
    c.run("CREATE TABLE tiny (t_id BIGINT, t_tag VARCHAR, PRIMARY KEY (t_id)) REPLICATED")
        .unwrap();
    let fact: Vec<Row> = (0..20_000)
        .map(|i| {
            Row(vec![
                Datum::Int(i),
                Datum::Int(i % 50),
                Datum::Int(i % 7),
                Datum::Double((i % 100) as f64),
            ])
        })
        .collect();
    let dim: Vec<Row> =
        (0..50).map(|i| Row(vec![Datum::Int(i), Datum::str(format!("d{i}"))])).collect();
    let tiny: Vec<Row> =
        (0..7).map(|i| Row(vec![Datum::Int(i), Datum::str(format!("t{i}"))])).collect();
    c.insert("fact", fact).unwrap();
    c.insert("dim", dim).unwrap();
    c.insert("tiny", tiny).unwrap();
    c.analyze_all().unwrap();
    c
}

/// §5.1.2: the improved planner hash-joins equi joins; the baseline has no
/// hash join operator at all.
#[test]
fn hash_join_only_in_improved_plans() {
    let sql = "SELECT count(*) FROM fact, dim WHERE f_dim = d_id";
    let base = star_cluster(SystemVariant::IC);
    let plus = base.with_variant(SystemVariant::ICPlus);
    assert!(!base.explain(sql).unwrap().contains("HashJoin"));
    assert!(plus.explain(sql).unwrap().contains("HashJoin"));
    // Same answer regardless.
    assert_eq!(
        base.query(sql).unwrap().rows,
        plus.query(sql).unwrap().rows
    );
}

/// §5.1.1: with the broadcast mapping, the big partitioned table is not
/// exchanged; the baseline ships it (an exchange sits below the join on
/// the fact side or the join runs at a single site).
#[test]
fn broadcast_mapping_keeps_fact_local() {
    let sql = "SELECT count(*) FROM fact, dim WHERE f_dim = d_id";
    let plus = star_cluster(SystemVariant::ICPlus);
    let explain = plus.explain(sql).unwrap();
    // The fact scan must not sit under an exchange-to-single.
    let fact_line = explain.lines().find(|l| l.contains("TableScan(fact)")).unwrap();
    assert!(fact_line.contains("dist=hash"), "{explain}");
    // The join itself runs distributed.
    let join_line = explain
        .lines()
        .find(|l| l.contains("Join"))
        .unwrap_or("");
    assert!(join_line.contains("dist=hash"), "{explain}");
}

/// §4.2 + §5.3: every variant computes the same aggregate over a
/// replicated × partitioned × partitioned 3-way join.
#[test]
fn three_way_join_agree() {
    let sql = "SELECT t_tag, count(*) AS c, sum(f_val) AS s \
               FROM fact, dim, tiny WHERE f_dim = d_id AND f_other = t_id \
               GROUP BY t_tag ORDER BY t_tag";
    let base = star_cluster(SystemVariant::IC);
    let mut reference: Option<Vec<Row>> = None;
    for v in SystemVariant::all() {
        let c = base.with_variant(v);
        let rows = c.query(sql).unwrap().rows;
        assert_eq!(rows.len(), 7, "{v:?}");
        match &reference {
            None => reference = Some(rows),
            Some(r) => assert_eq!(*r, rows, "{v:?}"),
        }
    }
}

/// §4.3: an adversarial many-join query exhausts the baseline's
/// single-phase exploration budget (a planning failure, like the paper's
/// Q2/Q5/Q9) while the two-phase pipeline plans it by conditionally
/// disabling the reordering rules.
#[test]
fn planner_budget_failure_baseline_only() {
    let mk = |variant| {
        let c = Cluster::new(ClusterConfig {
            sites: 2,
            variant,
            network: ignite_calcite_rs::NetworkConfig::instant(),
            exec_timeout: Some(Duration::from_secs(20)),
            planner_budget: Some(800),
            memory_limit_rows: 20_000_000,
            ..ClusterConfig::default()
        });
        c.run("CREATE TABLE t0 (a BIGINT, b BIGINT, PRIMARY KEY (a))").unwrap();
        for i in 1..8 {
            c.run(&format!("CREATE TABLE t{i} (a BIGINT, b BIGINT, PRIMARY KEY (a))")).unwrap();
        }
        for i in 0..8 {
            let rows: Vec<Row> =
                (0..50).map(|k| Row(vec![Datum::Int(k), Datum::Int(k % 10)])).collect();
            c.insert(&format!("t{i}"), rows).unwrap();
        }
        c.analyze_all().unwrap();
        c
    };
    let sql = "SELECT count(*) FROM t0, t1, t2, t3, t4, t5, t6, t7 \
               WHERE t0.b = t1.a AND t1.b = t2.a AND t2.b = t3.a AND t3.b = t4.a \
               AND t4.b = t5.a AND t5.b = t6.a AND t6.b = t7.a";
    let base = mk(SystemVariant::IC);
    let err = base.query(sql).unwrap_err();
    assert!(err.is_planner_failure(), "expected planning failure, got {err}");
    let plus = mk(SystemVariant::ICPlus);
    let r = plus.query(sql).unwrap();
    assert!(r.reorder_disabled, "conditional §4.3 phase should be active");
    assert_eq!(r.rows.len(), 1);
}

/// §5.3: IC+M produces identical results with more threads on
/// distributed-computation queries, and skips multithreading for
/// reduction-heavy fragments.
#[test]
fn variant_fragments_behaviour() {
    let base = star_cluster(SystemVariant::ICPlus);
    let m = base.with_variant(SystemVariant::ICPlusM);
    let sql = "SELECT f_other, sum(f_val) AS s FROM fact, dim WHERE f_dim = d_id \
               GROUP BY f_other ORDER BY f_other";
    let a = base.query(sql).unwrap();
    let b = m.query(sql).unwrap();
    assert_eq!(a.rows, b.rows);
    assert!(b.stats.threads >= a.stats.threads);
}

/// Network traffic telemetry: broadcast-side shipping in IC+ moves less
/// data than the baseline's reshuffle of the large table.
#[test]
fn improved_ships_less_data() {
    let sql = "SELECT count(*) FROM fact, dim WHERE f_dim = d_id";
    let base = star_cluster(SystemVariant::IC);
    let plus = base.with_variant(SystemVariant::ICPlus);
    let a = base.query(sql).unwrap();
    let b = plus.query(sql).unwrap();
    assert!(
        b.stats.net_bytes < a.stats.net_bytes,
        "IC+ shipped {} bytes, IC shipped {}",
        b.stats.net_bytes,
        a.stats.net_bytes
    );
}

/// §5.2: the join-condition simplification lets IC+ avoid the baseline's
/// nested-loop execution for OR-of-ANDs predicates with a common
/// equi-join condition (the Q19 pattern).
#[test]
fn q19_pattern_simplification() {
    let sql = "SELECT count(*) FROM fact, dim WHERE \
               (f_dim = d_id AND f_val > 90 AND d_name LIKE 'd1%') OR \
               (f_dim = d_id AND f_val < 5 AND d_name LIKE 'd2%')";
    let base = star_cluster(SystemVariant::IC);
    let plus = base.with_variant(SystemVariant::ICPlus);
    let base_plan = base.explain(sql).unwrap();
    let plus_plan = plus.explain(sql).unwrap();
    // Baseline: no equi keys extractable -> nested loop join.
    assert!(base_plan.contains("NestedLoopJoin"), "{base_plan}");
    // Improved: common f_dim = d_id extracted -> hash join available.
    assert!(plus_plan.contains("HashJoin"), "{plus_plan}");
    assert_eq!(base.query(sql).unwrap().rows, plus.query(sql).unwrap().rows);
}
