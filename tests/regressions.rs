//! Replay every minimized fuzz reproducer under `tests/regressions/`.
//!
//! Each `.fix` file is a self-contained scenario — schema, cluster shape,
//! fault schedule, SQL — distilled from a differential-fuzzing failure
//! (see `crates/fuzz`). Replaying them through the full oracle battery on
//! every `cargo test` keeps fixed bugs fixed; a red fixture prints its
//! governing seed and path so `ic-fuzz --replay-fixture` reproduces it
//! standalone.

use ic_fuzz::{Env, Fixture};
use std::path::PathBuf;

#[test]
fn all_regression_fixtures_replay_green() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/regressions");
    let mut paths: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", dir.display()))
        .filter_map(|entry| {
            let p = entry.expect("readable dir entry").path();
            (p.extension().is_some_and(|x| x == "fix")).then_some(p)
        })
        .collect();
    paths.sort();
    assert!(
        paths.len() >= 2,
        "expected at least 2 regression fixtures in {}, found {}",
        dir.display(),
        paths.len()
    );

    let mut env = Env::new();
    for path in &paths {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let fixture = Fixture::parse(&text)
            .unwrap_or_else(|e| panic!("bad fixture {}: {e}", path.display()));
        let outcome = fixture
            .replay(&mut env)
            .unwrap_or_else(|e| panic!("fixture {} did not replay: {e}", path.display()));
        if let Some(d) = &outcome.disagreement {
            panic!(
                "regression fixture {} (seed {}) failed — replay with \
                 `cargo run -p ic-fuzz -- --replay-fixture {}`:\n{d}",
                path.display(),
                fixture.seed,
                path.display()
            );
        }
    }
}

/// DML-fuzz regressions: the governing seeds whose minimized streams
/// exposed real write-path bugs, replayed through the write-aware oracle
/// on every `cargo test` so the fixes stay fixed.
///
/// * seed 57 — a retried multi-partition DELETE legally undercounts
///   `rows_affected` (per-partition-batch atomicity); pinned the oracle's
///   retry-aware count semantics.
/// * seed 59 — a DELETE acked while its only surviving copy sat on a
///   site about to die (degraded replication window), then a stale
///   revived replica resurrected the deleted row; fixed by the
///   replication floor (no ack below `min(backups+1, live_members)`
///   confirmed copies) and resync-or-demote at every down→alive
///   transition.
#[test]
fn dml_regression_seeds_replay_green() {
    use ic_fuzz::{run_dml_scenario, DmlScenario};
    for seed in [57u64, 59] {
        let outcome = run_dml_scenario(&DmlScenario::from_seed(seed));
        if let Some(d) = &outcome.disagreement {
            panic!(
                "DML regression seed {seed} failed — replay with \
                 `cargo run -p ic-fuzz -- --dml-replay {seed}`:\n{d}"
            );
        }
    }
}
