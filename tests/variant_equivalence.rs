//! Property-based cross-variant equivalence: randomized SQL queries over a
//! synthetic schema must produce identical result multisets on IC, IC+
//! and IC+M — the three variants differ only in plan choice, never in
//! semantics.

use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};
use proptest::prelude::*;
use std::sync::OnceLock;
use std::time::Duration;

struct Fixture {
    ic: Cluster,
    plus: Cluster,
    plus_m: Cluster,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ic = Cluster::new(ClusterConfig {
            sites: 3,
            variant: SystemVariant::IC,
            network: ignite_calcite_rs::NetworkConfig::instant(),
            exec_timeout: Some(Duration::from_secs(30)),
            planner_budget: None,
        memory_limit_rows: 20_000_000,
            ..ClusterConfig::default()
        });
        ic.run("CREATE TABLE a (a1 BIGINT, a2 BIGINT, a3 DOUBLE, PRIMARY KEY (a1))").unwrap();
        ic.run("CREATE TABLE b (b1 BIGINT, b2 BIGINT, b3 VARCHAR, PRIMARY KEY (b1))").unwrap();
        ic.run("CREATE TABLE c (c1 BIGINT, c2 VARCHAR, PRIMARY KEY (c1)) REPLICATED").unwrap();
        ic.run("CREATE INDEX ix_a2 ON a (a2)").unwrap();
        let a: Vec<Row> = (0..600)
            .map(|i| {
                Row(vec![
                    Datum::Int(i),
                    Datum::Int(i % 37),
                    if i % 11 == 0 { Datum::Null } else { Datum::Double((i % 97) as f64 / 3.0) },
                ])
            })
            .collect();
        let b: Vec<Row> = (0..250)
            .map(|i| {
                Row(vec![
                    Datum::Int(i),
                    Datum::Int(i % 37),
                    Datum::str(format!("tag{}", i % 5)),
                ])
            })
            .collect();
        let c: Vec<Row> =
            (0..37).map(|i| Row(vec![Datum::Int(i), Datum::str(format!("c{}", i % 3))])).collect();
        ic.insert("a", a).unwrap();
        ic.insert("b", b).unwrap();
        ic.insert("c", c).unwrap();
        ic.analyze_all().unwrap();
        let plus = ic.with_variant(SystemVariant::ICPlus);
        let plus_m = ic.with_variant(SystemVariant::ICPlusM);
        Fixture { ic, plus, plus_m }
    })
}

fn canon(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.0.iter()
                .map(|d| match d {
                    Datum::Double(f) => format!("{f:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

/// Random predicate fragments that are valid over (a ⋈ b ⋈ c).
fn predicate() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..40).prop_map(|v| format!("a.a2 > {v}")),
        (0i64..40).prop_map(|v| format!("b.b2 <= {v}")),
        (0i64..5).prop_map(|v| format!("b.b3 = 'tag{v}'")),
        (0i64..90).prop_map(|v| format!("a.a3 < {v}")),
        Just("a.a3 IS NOT NULL".to_string()),
        Just("c.c2 LIKE 'c1%'".to_string()),
        (0i64..37).prop_map(|v| format!("(a.a2 = {v} OR b.b2 > 20)")),
    ]
}

fn agg() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("count(*)".to_string()),
        Just("sum(a.a3)".to_string()),
        Just("min(b.b1)".to_string()),
        Just("max(a.a1)".to_string()),
        Just("avg(a.a3)".to_string()),
        Just("count(a.a3)".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Join + filter + aggregate queries return identical multisets on all
    /// three variants.
    #[test]
    fn equivalence_grouped(preds in proptest::collection::vec(predicate(), 0..3),
                           a in agg()) {
        let mut sql = format!(
            "SELECT c.c2, {a} FROM a, b, c WHERE a.a2 = b.b2 AND a.a2 = c.c1"
        );
        for p in &preds {
            sql += &format!(" AND {p}");
        }
        sql += " GROUP BY c.c2";
        let f = fixture();
        let r_ic = f.ic.query(&sql).unwrap();
        let r_plus = f.plus.query(&sql).unwrap();
        let r_m = f.plus_m.query(&sql).unwrap();
        prop_assert_eq!(canon(&r_ic.rows), canon(&r_plus.rows), "IC vs IC+: {}", sql);
        prop_assert_eq!(canon(&r_plus.rows), canon(&r_m.rows), "IC+ vs IC+M: {}", sql);
    }

    /// Non-aggregate projections agree too (row multisets).
    #[test]
    fn equivalence_select(preds in proptest::collection::vec(predicate(), 1..3)) {
        let mut sql =
            "SELECT a.a1, b.b1, b.b3 FROM a, b, c WHERE a.a2 = b.b2 AND b.b2 = c.c1".to_string();
        for p in &preds {
            sql += &format!(" AND {p}");
        }
        let f = fixture();
        let r_ic = f.ic.query(&sql).unwrap();
        let r_plus = f.plus.query(&sql).unwrap();
        let r_m = f.plus_m.query(&sql).unwrap();
        prop_assert_eq!(canon(&r_ic.rows), canon(&r_plus.rows), "IC vs IC+: {}", sql);
        prop_assert_eq!(canon(&r_plus.rows), canon(&r_m.rows), "IC+ vs IC+M: {}", sql);
    }

    /// Semi/anti joins from EXISTS / NOT EXISTS agree across variants.
    #[test]
    fn equivalence_exists(v in 0i64..30, negate in proptest::bool::ANY) {
        let not = if negate { "NOT " } else { "" };
        let sql = format!(
            "SELECT a.a1 FROM a WHERE {not}EXISTS \
             (SELECT 1 FROM b WHERE b.b2 = a.a2 AND b.b1 > {v})"
        );
        let f = fixture();
        let r_ic = f.ic.query(&sql).unwrap();
        let r_plus = f.plus.query(&sql).unwrap();
        let r_m = f.plus_m.query(&sql).unwrap();
        prop_assert_eq!(canon(&r_ic.rows), canon(&r_plus.rows), "IC vs IC+: {}", sql);
        prop_assert_eq!(canon(&r_plus.rows), canon(&r_m.rows), "IC+ vs IC+M: {}", sql);
    }
}
