//! End-to-end SSB correctness: query sets 1 and 3 agree across variants
//! and Q1.1 matches a brute-force computation.

use ignite_calcite_rs::benchdata::ssb;
use ignite_calcite_rs::{Cluster, ClusterConfig, Datum, Row, SystemVariant};
use std::time::Duration;

const SF: f64 = 0.002;

fn cluster(variant: SystemVariant) -> Cluster {
    let c = Cluster::new(ClusterConfig {
        sites: 4,
        variant,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(60)),
        planner_budget: None,
        memory_limit_rows: 20_000_000,
        ..ClusterConfig::default()
    });
    for ddl in ssb::DDL.iter().chain(ssb::INDEX_DDL) {
        c.run(ddl).unwrap();
    }
    for t in ssb::generate(SF, 42) {
        c.insert(t.name, t.rows).unwrap();
    }
    c.analyze_all().unwrap();
    c
}

fn canon(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| {
            r.0.iter()
                .map(|d| match d {
                    Datum::Double(f) => format!("{f:.2}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    out.sort();
    out
}

#[test]
fn qs1_and_qs3_agree_across_variants() {
    let base = cluster(SystemVariant::IC);
    let plus_m = base.with_variant(SystemVariant::ICPlusM);
    for (id, sql) in ssb::QUERIES
        .iter()
        .filter(|(id, _)| id.starts_with("Q1") || id.starts_with("Q3"))
    {
        let a = base.query(sql).unwrap_or_else(|e| panic!("IC {id}: {e}"));
        let b = plus_m.query(sql).unwrap_or_else(|e| panic!("IC+M {id}: {e}"));
        assert_eq!(canon(&a.rows), canon(&b.rows), "{id}");
    }
}

#[test]
fn q11_matches_brute_force() {
    let c = cluster(SystemVariant::ICPlusM);
    let data = ssb::generate(SF, 42);
    let lineorder = &data.iter().find(|t| t.name == "lineorder").unwrap().rows;
    // Q1.1: sum(lo_extendedprice * lo_discount) where orderdate year =
    // 1993, discount in 1..=3, quantity < 25.
    let expected: f64 = lineorder
        .iter()
        .filter(|r| {
            let orderdate = r.0[5].as_int().unwrap();
            let discount = r.0[11].as_int().unwrap();
            let qty = r.0[8].as_int().unwrap();
            orderdate / 10_000 == 1993 && (1..=3).contains(&discount) && qty < 25
        })
        .map(|r| r.0[9].as_double().unwrap() * r.0[11].as_int().unwrap() as f64)
        .sum();
    let got = c.query(ssb::query("Q1.1").unwrap()).unwrap();
    let v = got.rows[0].0[0].as_double().unwrap_or(0.0);
    assert!(
        (v - expected).abs() < 0.01 * expected.abs().max(1.0),
        "Q1.1: got {v}, expected {expected}"
    );
}

#[test]
fn q31_group_keys_are_asia_nations() {
    let c = cluster(SystemVariant::ICPlus);
    let got = c.query(ssb::query("Q3.1").unwrap()).unwrap();
    let asia: Vec<&str> = ignite_calcite_rs::benchdata::text::NATIONS
        .iter()
        .filter(|(_, r)| *r == 2)
        .map(|(n, _)| *n)
        .collect();
    assert!(!got.rows.is_empty());
    for r in &got.rows {
        assert!(asia.contains(&r.0[0].as_str().unwrap()), "{r:?}");
        assert!(asia.contains(&r.0[1].as_str().unwrap()), "{r:?}");
        let year = r.0[2].as_int().unwrap();
        assert!((1992..=1997).contains(&year));
    }
}
