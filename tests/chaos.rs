//! Chaos integration tests: TPC-H under deterministic fault injection.
//!
//! The acceptance bar for the failover subsystem: with `backups = 1` and a
//! seeded fault plan that permanently kills one of 4 sites, every
//! previously-passing TPC-H smoke query still returns correct results via
//! retry + failover, and the same seed reproduces the identical fault
//! schedule across runs.

use ignite_calcite_rs::benchdata::tpch;
use ignite_calcite_rs::{
    Cluster, ClusterConfig, Datum, FaultPlan, IcError, Row, SiteId, SystemVariant,
};
use std::time::Duration;

const SF: f64 = 0.002;

fn chaos_cluster(backups: usize) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        sites: 4,
        backups,
        variant: SystemVariant::ICPlus,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(60)),
        memory_limit_rows: 20_000_000,
        ..ClusterConfig::default()
    });
    for ddl in tpch::DDL.iter().chain(tpch::INDEX_DDL) {
        cluster.run(ddl).unwrap();
    }
    for t in tpch::generate(SF, 42) {
        cluster.insert(t.name, t.rows).unwrap();
    }
    cluster.analyze_all().unwrap();
    cluster
}

fn runnable_queries() -> Vec<usize> {
    (1..=22).filter(|q| !tpch::EXCLUDED_UNSUPPORTED.contains(q)).collect()
}

/// Sort rows deterministically, then compare pairwise with a relative
/// tolerance on doubles: a 3-survivor execution accumulates floating-point
/// sums in a different order than the 4-site baseline.
fn assert_rows_close(a: &[Row], b: &[Row], label: &str) {
    fn key(r: &Row) -> String {
        r.0.iter()
            .map(|d| match d {
                Datum::Double(f) => format!("{f:.6}"),
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join("|")
    }
    assert_eq!(a.len(), b.len(), "{label}: row count");
    let mut sa: Vec<&Row> = a.iter().collect();
    let mut sb: Vec<&Row> = b.iter().collect();
    sa.sort_by_key(|r| key(r));
    sb.sort_by_key(|r| key(r));
    for (ra, rb) in sa.iter().zip(&sb) {
        assert_eq!(ra.arity(), rb.arity(), "{label}: arity");
        for (da, db) in ra.0.iter().zip(&rb.0) {
            match (da, db) {
                (Datum::Double(x), Datum::Double(y)) => {
                    let tol = 1e-6 * x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= tol, "{label}: {x} vs {y}\n{ra:?}\n{rb:?}");
                }
                _ => assert_eq!(da, db, "{label}:\n{ra:?}\n{rb:?}"),
            }
        }
    }
}

/// With `backups = 1`, a 4-site cluster answers every runnable TPC-H
/// query with one site marked dead, and the answers match the healthy
/// baseline.
#[test]
fn all_queries_survive_dead_site_with_backups() {
    let cluster = chaos_cluster(1);
    let mut baselines = Vec::new();
    for q in runnable_queries() {
        let r = cluster
            .query(&tpch::query(q))
            .unwrap_or_else(|e| panic!("healthy baseline Q{q}: {e}"));
        baselines.push((q, r.rows));
    }
    cluster.kill_site(2);
    for (q, baseline_rows) in &baselines {
        let r = cluster
            .query(&tpch::query(*q))
            .unwrap_or_else(|e| panic!("Q{q} with site2 dead: {e}"));
        assert_rows_close(baseline_rows, &r.rows, &format!("Q{q} failover"));
    }
}

/// A seeded fault plan that permanently kills site 3 mid-run: the
/// in-flight query recovers via retry + replan, every query matches the
/// healthy baseline, and the identical seed produces the identical fault
/// schedule and results on a second, independent run.
#[test]
fn seeded_mid_run_crash_recovers_and_replays() {
    const SEED: u64 = 4242;
    // Crash from tick 1: site 3 is alive at planning time, so the first
    // query's exchanges are guaranteed to hit the dead site mid-run.
    let plan = || FaultPlan::new(SEED).crash(SiteId(3), 1);
    assert_eq!(plan(), plan(), "same seed must build the same plan");
    assert_eq!(plan().timeline(), plan().timeline());

    let healthy = chaos_cluster(1);
    let queries = runnable_queries();
    let mut baselines = Vec::new();
    for q in &queries {
        baselines.push(healthy.query(&tpch::query(*q)).unwrap().rows);
    }

    type Run = (Vec<Vec<Row>>, u32, Vec<(SiteId, ignite_calcite_rs::SiteState)>);
    let mut runs: Vec<Run> = Vec::new();
    for _ in 0..2 {
        let cluster = chaos_cluster(1);
        cluster.install_faults(plan());
        let mut rows_per_query = Vec::new();
        let mut total_retries = 0;
        for q in &queries {
            let r = cluster
                .query(&tpch::query(*q))
                .unwrap_or_else(|e| panic!("Q{q} under seeded crash: {e}"));
            total_retries += r.retries;
            rows_per_query.push(r.rows);
        }
        runs.push((rows_per_query, total_retries, cluster.network().liveness().snapshot()));
    }

    for (rows_per_query, total_retries, liveness) in &runs {
        // The first query runs into the crash and must have failed over.
        assert!(*total_retries >= 1, "expected at least one failover retry");
        // Site 3 ends the run permanently dead.
        assert!(
            liveness
                .iter()
                .any(|(s, st)| *s == SiteId(3) && *st == ignite_calcite_rs::SiteState::Dead),
            "site3 should be dead: {liveness:?}"
        );
        for ((q, rows), baseline) in queries.iter().zip(rows_per_query).zip(&baselines) {
            assert_rows_close(baseline, rows, &format!("Q{q} under seeded crash"));
        }
    }
    // Replay: the two identically-seeded runs agree exactly.
    assert_eq!(runs[0].1, runs[1].1, "retry counts diverged between replays");
    assert_eq!(runs[0].2, runs[1].2, "liveness diverged between replays");
    for ((q, a), b) in queries.iter().zip(&runs[0].0).zip(&runs[1].0) {
        assert_rows_close(a, b, &format!("Q{q} replay"));
    }
}

/// Without backups, a dead site's partitions are lost: the failover loop
/// retries, then surfaces the whole failure chain.
#[test]
fn no_backups_exhausts_retries() {
    let cluster = chaos_cluster(0);
    cluster.kill_site(1);
    let err = cluster.query(&tpch::query(6)).unwrap_err();
    match err {
        IcError::RetriesExhausted { attempts, chain } => {
            assert!(attempts >= 1);
            assert_eq!(chain.len() as u32, attempts);
            assert!(chain.iter().all(|c| c.contains("unavailable")), "{chain:?}");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}
