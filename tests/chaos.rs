//! Chaos integration tests: TPC-H under deterministic fault injection.
//!
//! The acceptance bar for the failover subsystem: with `backups = 1` and a
//! seeded fault plan that permanently kills one of 4 sites, every
//! previously-passing TPC-H smoke query still returns correct results via
//! retry + failover, and the same seed reproduces the identical fault
//! schedule across runs.

use ignite_calcite_rs::benchdata::tpch;
use ignite_calcite_rs::{
    Cluster, ClusterConfig, Datum, FaultPlan, GovernorConfig, IcError, Row, SiteId, SystemVariant,
};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const SF: f64 = 0.002;

fn chaos_cluster(backups: usize) -> Cluster {
    let cluster = Cluster::new(ClusterConfig {
        sites: 4,
        backups,
        variant: SystemVariant::ICPlus,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(60)),
        memory_limit_rows: 20_000_000,
        ..ClusterConfig::default()
    });
    for ddl in tpch::DDL.iter().chain(tpch::INDEX_DDL) {
        cluster.run(ddl).unwrap();
    }
    for t in tpch::generate(SF, 42) {
        cluster.insert(t.name, t.rows).unwrap();
    }
    cluster.analyze_all().unwrap();
    cluster
}

fn runnable_queries() -> Vec<usize> {
    (1..=22).filter(|q| !tpch::EXCLUDED_UNSUPPORTED.contains(q)).collect()
}

/// Sort rows deterministically, then compare pairwise with a relative
/// tolerance on doubles: a 3-survivor execution accumulates floating-point
/// sums in a different order than the 4-site baseline.
fn assert_rows_close(a: &[Row], b: &[Row], label: &str) {
    fn key(r: &Row) -> String {
        r.0.iter()
            .map(|d| match d {
                Datum::Double(f) => format!("{f:.6}"),
                other => other.to_string(),
            })
            .collect::<Vec<_>>()
            .join("|")
    }
    assert_eq!(a.len(), b.len(), "{label}: row count");
    let mut sa: Vec<&Row> = a.iter().collect();
    let mut sb: Vec<&Row> = b.iter().collect();
    sa.sort_by_key(|r| key(r));
    sb.sort_by_key(|r| key(r));
    for (ra, rb) in sa.iter().zip(&sb) {
        assert_eq!(ra.arity(), rb.arity(), "{label}: arity");
        for (da, db) in ra.0.iter().zip(&rb.0) {
            match (da, db) {
                (Datum::Double(x), Datum::Double(y)) => {
                    let tol = 1e-6 * x.abs().max(y.abs()).max(1.0);
                    assert!((x - y).abs() <= tol, "{label}: {x} vs {y}\n{ra:?}\n{rb:?}");
                }
                _ => assert_eq!(da, db, "{label}:\n{ra:?}\n{rb:?}"),
            }
        }
    }
}

/// With `backups = 1`, a 4-site cluster answers every runnable TPC-H
/// query with one site marked dead, and the answers match the healthy
/// baseline.
#[test]
fn all_queries_survive_dead_site_with_backups() {
    let cluster = chaos_cluster(1);
    let mut baselines = Vec::new();
    for q in runnable_queries() {
        let r = cluster
            .query(&tpch::query(q))
            .unwrap_or_else(|e| panic!("healthy baseline Q{q}: {e}"));
        baselines.push((q, r.rows));
    }
    cluster.kill_site(2);
    for (q, baseline_rows) in &baselines {
        let r = cluster
            .query(&tpch::query(*q))
            .unwrap_or_else(|e| panic!("Q{q} with site2 dead: {e}"));
        assert_rows_close(baseline_rows, &r.rows, &format!("Q{q} failover"));
    }
}

/// A seeded fault plan that permanently kills site 3 mid-run: the
/// in-flight query recovers via retry + replan, every query matches the
/// healthy baseline, and the identical seed produces the identical fault
/// schedule and results on a second, independent run.
#[test]
fn seeded_mid_run_crash_recovers_and_replays() {
    const SEED: u64 = 4242;
    // Crash from tick 1: site 3 is alive at planning time, so the first
    // query's exchanges are guaranteed to hit the dead site mid-run.
    let plan = || FaultPlan::new(SEED).crash(SiteId(3), 1);
    assert_eq!(plan(), plan(), "same seed must build the same plan");
    assert_eq!(plan().timeline(), plan().timeline());

    let healthy = chaos_cluster(1);
    let queries = runnable_queries();
    let mut baselines = Vec::new();
    for q in &queries {
        baselines.push(healthy.query(&tpch::query(*q)).unwrap().rows);
    }

    type Run = (Vec<Vec<Row>>, u32, Vec<(SiteId, ignite_calcite_rs::SiteState)>);
    let mut runs: Vec<Run> = Vec::new();
    for _ in 0..2 {
        let cluster = chaos_cluster(1);
        cluster.install_faults(plan());
        let mut rows_per_query = Vec::new();
        let mut total_retries = 0;
        let mut max_peak_buffered = 0u64;
        for q in &queries {
            let r = cluster
                .query(&tpch::query(*q))
                .unwrap_or_else(|e| panic!("Q{q} under seeded crash (fault seed {SEED}): {e}"));
            // QueryStats mirrors the result-level retry count, reports the
            // lease's buffered-cell high-water mark, and shows no queue
            // wait for this uncontended single client.
            assert_eq!(r.stats.retries, r.retries, "Q{q}: stats.retries out of sync");
            assert_eq!(r.stats.queue_wait, Duration::ZERO, "Q{q}: unexpected queue wait");
            max_peak_buffered = max_peak_buffered.max(r.stats.peak_buffered_rows);
            total_retries += r.retries;
            rows_per_query.push(r.rows);
        }
        assert!(
            max_peak_buffered > 0,
            "at least one TPC-H query buffers operator state, so some lease peak must be nonzero"
        );
        runs.push((rows_per_query, total_retries, cluster.network().liveness().snapshot()));
    }

    for (rows_per_query, total_retries, liveness) in &runs {
        // The first query runs into the crash and must have failed over.
        assert!(*total_retries >= 1, "expected at least one failover retry");
        // Site 3 ends the run permanently dead.
        assert!(
            liveness
                .iter()
                .any(|(s, st)| *s == SiteId(3) && *st == ignite_calcite_rs::SiteState::Dead),
            "site3 should be dead: {liveness:?}"
        );
        for ((q, rows), baseline) in queries.iter().zip(rows_per_query).zip(&baselines) {
            assert_rows_close(baseline, rows, &format!("Q{q} under seeded crash (seed {SEED})"));
        }
    }
    // Replay: the two identically-seeded runs agree exactly.
    assert_eq!(runs[0].1, runs[1].1, "retry counts diverged between replays of seed {SEED}");
    assert_eq!(runs[0].2, runs[1].2, "liveness diverged between replays of seed {SEED}");
    for ((q, a), b) in queries.iter().zip(&runs[0].0).zip(&runs[1].0) {
        assert_rows_close(a, b, &format!("Q{q} replay (seed {SEED})"));
    }
}

/// A traced query that crashes mid-run and fails over records *both*
/// attempts: the trace carries one span per attempt, an `attempt.failed`
/// instant event for the lost one, and still validates as a well-formed
/// span tree.
#[test]
fn failed_over_query_trace_records_both_attempts() {
    const SEED: u64 = 77;
    let cluster = chaos_cluster(1);
    // Crash from tick 1 so attempt 0 plans against a live site 3 and dies
    // mid-run; attempt 1 replans around the dead site and succeeds.
    cluster.install_faults(FaultPlan::new(SEED).crash(SiteId(3), 1));
    let (result, trace) = cluster.query_traced(0, "SELECT count(*) FROM lineitem");
    let result = result
        .unwrap_or_else(|e| panic!("failover should recover the query (fault seed {SEED}): {e}"));
    assert!(result.retries >= 1, "query must have failed over at least once (fault seed {SEED})");

    trace.validate().expect("well-formed span tree despite the mid-run crash");
    let spans = trace.spans();
    let attempt_spans = spans.iter().filter(|s| s.cat == "attempt").count();
    assert!(
        attempt_spans >= 2,
        "both the failed and the recovered attempt must be traced, got {attempt_spans}"
    );
    assert!(
        trace.events().iter().any(|e| e.name == "attempt.failed"),
        "the lost attempt must leave an attempt.failed event"
    );
    // One per-operator stats table per attempt, and the last (successful)
    // attempt's root operator emitted the single count(*) row.
    let attempts = trace.attempts();
    assert!(attempts.len() >= 2, "one stats table per attempt, got {}", attempts.len());
    assert_eq!(attempts.last().unwrap().rows(0), result.rows.len() as u64);
}

/// Without backups, a dead site's partitions are lost: the failover loop
/// retries, then surfaces the whole failure chain.
#[test]
fn no_backups_exhausts_retries() {
    let cluster = chaos_cluster(0);
    cluster.kill_site(1);
    let err = cluster.query(&tpch::query(6)).unwrap_err();
    match err {
        IcError::RetriesExhausted { attempts, chain } => {
            assert!(attempts >= 1);
            assert_eq!(chain.len() as u32, attempts);
            assert!(chain.iter().all(|c| c.contains("unavailable")), "{chain:?}");
        }
        other => panic!("expected RetriesExhausted, got {other}"),
    }
}

/// Governor × fault interaction: eight clients slam a cluster with one
/// admission slot and a one-deep queue while a seeded fault plan crashes a
/// site mid-run. Shed queries get the retryable [`IcError::Overloaded`],
/// admitted queries survive the crash via failover, every successful
/// answer is correct, and the memory pool balances back to zero.
#[test]
fn governor_sheds_queued_queries_during_site_crash() {
    const CLIENTS: usize = 8;
    let cluster = Cluster::new(ClusterConfig {
        sites: 4,
        backups: 1,
        variant: SystemVariant::ICPlus,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(60)),
        governor: GovernorConfig {
            max_concurrent: 1,
            max_queue: 1,
            ..GovernorConfig::test_default()
        },
        ..ClusterConfig::default()
    });
    for ddl in tpch::DDL.iter().chain(tpch::INDEX_DDL) {
        cluster.run(ddl).unwrap();
    }
    for t in tpch::generate(SF, 42) {
        cluster.insert(t.name, t.rows).unwrap();
    }
    cluster.analyze_all().unwrap();
    let baseline = cluster.query(&tpch::query(6)).unwrap().rows;
    // Crash site 3 from tick 1: whichever query runs first hits it mid-run
    // while the other clients are queued or being shed.
    const SEED: u64 = 99;
    cluster.install_faults(FaultPlan::new(SEED).crash(SiteId(3), 1));

    let cluster = Arc::new(cluster);
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let cluster = Arc::clone(&cluster);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                cluster.query_as(client as u64, &tpch::query(6))
            })
        })
        .collect();

    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut total_retries = 0u32;
    let mut saw_queue_wait = false;
    for h in handles {
        match h.join().expect("client thread panicked") {
            Ok(r) => {
                assert_rows_close(&baseline, &r.rows, &format!("Q6 under overload + crash (seed {SEED})"));
                assert_eq!(r.stats.retries, r.retries);
                saw_queue_wait |= r.stats.queue_wait > Duration::ZERO;
                total_retries += r.retries;
                ok += 1;
            }
            Err(e @ IcError::Overloaded { .. }) => {
                assert!(e.is_retryable(), "shed queries must be client-retryable: {e}");
                assert!(!e.is_failover_retryable());
                shed += 1;
            }
            Err(other) => panic!("expected success or Overloaded (fault seed {SEED}), got {other}"),
        }
    }
    assert_eq!(ok + shed, CLIENTS);
    // One slot + one queue entry: at least the runner and the queued query
    // succeed; the rest are shed (timing may let a straggler in).
    assert!(ok >= 2, "runner + queued query should complete, got {ok}");
    assert!(shed >= 1, "with {CLIENTS} simultaneous clients, some must be shed");
    assert!(saw_queue_wait, "the queued query should report a nonzero queue wait");
    assert!(total_retries >= 1, "the in-flight query should fail over past the crash");

    let stats = cluster.governor().stats();
    assert_eq!(stats.shed as usize, shed);
    assert_eq!(stats.admitted as usize, ok + 1, "baseline + successful clients");
    assert!(stats.queued >= 1);
    assert!(stats.peak_concurrent <= 1, "admission must bound concurrency");
    assert_eq!(stats.pool_in_use, 0, "pool must leak no budget after the run");
    assert_eq!(cluster.governor().pool().active_leases(), 0);
}

/// Memory-governance end to end: with the pool held hostage by a hog
/// lease, a query is revoked (deterministically — the hog never unwinds,
/// so the starved query self-revokes after its grant timeout), surfaces
/// the retryable [`IcError::ResourcesRevoked`], and succeeds with correct
/// results once the pressure is gone. No budget leaks either way.
#[test]
fn revoked_query_is_retryable_and_leaks_no_budget() {
    let cluster = Cluster::new(ClusterConfig {
        sites: 2,
        variant: SystemVariant::ICPlus,
        network: ignite_calcite_rs::NetworkConfig::instant(),
        exec_timeout: Some(Duration::from_secs(60)),
        governor: GovernorConfig {
            // Chunk-aligned so the hog lease below can drain it exactly.
            pool_budget_cells: 64 * ignite_calcite_rs::common::LEASE_CHUNK_CELLS,
            grant_timeout: Duration::from_millis(50),
            ..GovernorConfig::test_default()
        },
        ..ClusterConfig::default()
    });
    cluster.run("CREATE TABLE t (a BIGINT, b BIGINT, PRIMARY KEY (a))").unwrap();
    let rows: Vec<Row> = (0..2000).map(|i| Row(vec![Datum::Int(i), Datum::Int(i % 50)])).collect();
    cluster.insert("t", rows).unwrap();
    cluster.analyze_all().unwrap();
    let sql = "SELECT count(*) FROM t x, t y WHERE x.b = y.b";
    let baseline = cluster.query(sql).unwrap().rows.clone();

    let pool = cluster.governor().pool().clone();
    let hog = pool.lease(u64::MAX);
    hog.reserve(pool.capacity()).unwrap();

    // The query's first buffer reservation finds the pool empty, marks the
    // hog (largest lease) for revocation, then self-revokes when the hog
    // fails to unwind within the grant timeout.
    let err = cluster.query(sql).unwrap_err();
    assert!(matches!(err, IcError::ResourcesRevoked { .. }), "{err}");
    assert!(err.is_retryable());
    assert!(!err.is_failover_retryable());
    assert!(hog.is_revoked(), "the hog lease must be picked as the revocation victim");
    assert!(cluster.governor().stats().revoked >= 2, "hog + self-revoked query lease");

    // Client-style retry after the pressure clears: correct result.
    drop(hog);
    let retry = cluster.query(sql).unwrap();
    assert_eq!(retry.rows, baseline);
    assert!(retry.stats.peak_buffered_rows > 0);
    assert_eq!(pool.in_use(), 0, "all leases returned their grants");
    assert_eq!(pool.active_leases(), 0);
}
